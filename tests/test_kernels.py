"""Kernel backends: registry semantics and byte equivalence everywhere.

The pluggable kernel layer (``repro.index.kernels``) claims the Myers
bit-parallel and banded (Ukkonen) backends are *byte-identical* to the
reference numpy DP — and, transitively, to the scalar
:func:`repro.text.edit_distance.edit_distance` oracle.  These tests
enforce that claim with randomized cross-backend fuzz (caps 0-8, empty
strings, multi-block queries past 64 characters, pad-boundary lengths
63/64/65), end-to-end joiner equivalence on every registered dataset
at 1/2/4 workers, registry/env resolution semantics, and the
per-backend pairs-scored accounting surfaced through ``JoinStats`` and
the serving layer.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from repro.utils.fuzz import FUZZ_ALPHABET, random_edits, random_unicode_string

from repro.core.join_config import KERNEL_BACKENDS, JoinConfig
from repro.core.joiner import EditDistanceJoiner
from repro.datagen.benchmarks.registry import dataset_names, get_dataset
from repro.index import IndexCache, IndexedJoiner
from repro.index.kernel import encode_strings
from repro.index.kernels import (
    get_backend,
    pairs_scored_snapshot,
    resolve_backend,
)
from repro.text.edit_distance import edit_distance

_SEED = 987
_CONCRETE = ("reference", "bitparallel", "banded")


def _oracle(query: str, candidates: list[str], cap: int) -> list[int]:
    """The scalar uncapped DP, clamped to the capped contract."""
    return [min(edit_distance(query, c), cap + 1) for c in candidates]


class TestRegistry:
    def test_every_declared_backend_resolves(self):
        for name in KERNEL_BACKENDS:
            assert get_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("simd9000")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("simd9000")

    def test_join_config_validates_backend(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            JoinConfig(kernel_backend="simd9000")
        assert JoinConfig(kernel_backend="banded").kernel_backend == "banded"

    def test_env_var_steers_auto_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "banded")
        assert resolve_backend(None).name == "banded"
        assert resolve_backend("auto").name == "banded"
        # An explicit choice always wins over the environment.
        assert resolve_backend("bitparallel").name == "bitparallel"

    def test_empty_env_var_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "")
        assert resolve_backend(None).name == "auto"

    def test_env_var_typo_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bitparalel")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_auto_dispatch_matches_reference(self):
        auto = get_backend("auto")
        queries = ["abc", "", "x" * 70, "y" * 64]
        candidates = ["abd", "", "x" * 69 + "z", "y" * 63]
        for cap in (0, 2, 40):
            for query in queries:
                got = auto.edit_distance_many(query, candidates, cap)
                want = _oracle(query, candidates, cap)
                assert got.tolist() == want, (query, cap)


class TestScalarOracleFuzz:
    @pytest.mark.parametrize("backend", _CONCRETE)
    def test_randomized_columns(self, backend):
        rng = random.Random(_SEED)
        kernel = get_backend(backend)
        for trial in range(25):
            max_len = rng.choice((6, 14, 63, 64, 65, 90))
            candidates = [
                random_unicode_string(rng, max_length=max_len)
                for _ in range(rng.randint(1, 60))
            ]
            candidates.append("")  # always cover the empty candidate
            base = rng.choice(candidates)
            query = random_edits(rng, base, rng.randint(0, 3))
            cap = rng.randint(0, 8)
            got = kernel.edit_distance_many(query, candidates, cap)
            assert got.dtype == np.int64
            assert got.tolist() == _oracle(query, candidates, cap), (
                backend,
                trial,
                query,
                cap,
            )

    @pytest.mark.parametrize("backend", _CONCRETE)
    def test_pad_boundary_and_multiblock_queries(self, backend):
        # Queries straddling the 64-bit word boundary exercise the
        # multi-block chaining (bitparallel) and wide rows (banded).
        rng = random.Random(_SEED + 1)
        kernel = get_backend(backend)
        for m in (63, 64, 65, 128, 130):
            query = "".join(
                rng.choice(FUZZ_ALPHABET) for _ in range(m)
            )
            candidates = [
                query,
                query[:-1],
                query + "x",
                random_edits(rng, query, 3),
                random_edits(rng, query, 9),
                query[: m // 2],
                "",
            ]
            for cap in (0, 1, 4, 8):
                got = kernel.edit_distance_many(query, candidates, cap)
                assert got.tolist() == _oracle(query, candidates, cap), (
                    backend,
                    m,
                    cap,
                )

    @pytest.mark.parametrize("backend", _CONCRETE)
    def test_empty_query_and_empty_batch(self, backend):
        kernel = get_backend(backend)
        assert kernel.edit_distance_many("", ["", "ab", "abcd"], 2).tolist() == [
            0,
            2,
            3,
        ]
        assert kernel.edit_distance_many("abc", [], 2).size == 0

    @pytest.mark.parametrize("backend", _CONCRETE)
    def test_pairs_lockstep_matches_oracle(self, backend):
        rng = random.Random(_SEED + 2)
        kernel = get_backend(backend)
        for m in (3, 17, 64, 80):
            queries = [
                "".join(rng.choice(FUZZ_ALPHABET) for _ in range(m))
                for _ in range(40)
            ]
            candidates = [
                random_edits(rng, q, rng.randint(0, 4)) for q in queries
            ]
            query_codes, _ = encode_strings(queries)
            cand_codes, cand_lengths = encode_strings(candidates)
            for cap in (0, 2, 5):
                got = kernel.edit_distance_pairs(
                    query_codes, cand_codes, cand_lengths, cap
                )
                want = [
                    min(edit_distance(q, c), cap + 1)
                    for q, c in zip(queries, candidates, strict=True)
                ]
                assert got.tolist() == want, (backend, m, cap)

    @pytest.mark.parametrize("backend", ("bitparallel", "banded"))
    def test_compaction_under_large_batches(self, backend):
        # Enough settled candidates to trip the batch-compaction path.
        rng = random.Random(_SEED + 3)
        kernel = get_backend(backend)
        query = "".join(rng.choice(FUZZ_ALPHABET) for _ in range(30))
        candidates = [random_edits(rng, query, rng.randint(0, 2)) for _ in range(300)]
        candidates += [
            random_unicode_string(rng, max_length=34, min_length=26)
            for _ in range(1500)
        ]
        for cap in (1, 3):
            got = kernel.edit_distance_many(query, candidates, cap)
            assert got.tolist() == _oracle(query, candidates, cap), cap


class TestJoinerEquivalence:
    """Forcing each backend must leave every join surface byte-identical."""

    @pytest.mark.parametrize("backend", ("bitparallel", "banded"))
    @pytest.mark.parametrize("name", dataset_names())
    def test_backends_match_brute_on_dataset(self, backend, name):
        rng = random.Random(_SEED + 4)
        tables = get_dataset(name, seed=0, scale=0.05)
        brute = EditDistanceJoiner(JoinConfig())
        config = JoinConfig(kernel_backend=backend)
        for table in tables:
            targets = list(table.targets)
            probes = [
                random_edits(rng, t, rng.randint(0, 2))
                for t in targets[: max(4, len(targets) // 3)]
            ]
            joiner = IndexedJoiner(config, cache=IndexCache())
            assert joiner.join_many(probes, targets) == brute.join_many(
                probes, targets
            ), (backend, name, table.name)
            assert joiner.topk_many(probes, targets, k=3) == brute.topk_many(
                probes, targets, k=3
            ), (backend, name, table.name)

    @pytest.mark.parametrize("backend", ("bitparallel", "banded"))
    @pytest.mark.parametrize("n_workers", (2, 4))
    def test_workers_inherit_backend(self, backend, n_workers):
        rng = random.Random(_SEED + 5)
        targets = [
            random_unicode_string(rng, max_length=20, min_length=4) + f"#{i}"
            for i in range(240)
        ]
        probes = [random_edits(rng, t, 1) for t in targets[:40]]
        brute = EditDistanceJoiner(JoinConfig())
        joiner = IndexedJoiner(
            JoinConfig(n_workers=n_workers, kernel_backend=backend),
            cache=IndexCache(),
        )
        try:
            assert joiner.join_many(probes, targets) == brute.join_many(
                probes, targets
            )
            stats = joiner.last_join_stats
            assert stats.kernel_backend == backend
            # Worker deltas fold into the same per-backend ledger, and a
            # forced backend must be the only one that scored anything.
            scored = dict(stats.kernel_pairs)
            assert set(scored) <= {backend}
        finally:
            joiner.close()

    @pytest.mark.parametrize("backend", ("bitparallel", "banded"))
    def test_composite_keys_match_brute(self, backend):
        rng = random.Random(_SEED + 6)
        left = [
            random_unicode_string(rng, max_length=16, min_length=3)
            for _ in range(120)
        ]
        right = [
            random_unicode_string(rng, max_length=10, min_length=1)
            for _ in range(120)
        ]
        probes = [
            (random_edits(rng, left[i], 1), random_edits(rng, right[i], 1))
            for i in range(0, 120, 4)
        ]
        brute = EditDistanceJoiner(JoinConfig())
        joiner = IndexedJoiner(
            JoinConfig(kernel_backend=backend), cache=IndexCache()
        )
        assert joiner.join_composite(probes, [left, right]) == (
            brute.join_composite(probes, [left, right])
        )


class TestPairsAccounting:
    def test_join_stats_record_pairs_scored(self):
        rng = random.Random(_SEED + 7)
        targets = [
            random_unicode_string(rng, max_length=18, min_length=6) + f"#{i}"
            for i in range(150)
        ]
        probes = [random_edits(rng, t, 1) for t in targets[:25]]
        joiner = IndexedJoiner(
            JoinConfig(kernel_backend="bitparallel"), cache=IndexCache()
        )
        joiner.join_many(probes, targets)
        stats = joiner.last_join_stats
        scored = dict(stats.kernel_pairs)
        assert scored.get("bitparallel", 0) > 0
        assert stats.as_dict()["kernel_pairs"] == scored

    def test_snapshot_is_cumulative_and_resettable(self):
        before = pairs_scored_snapshot()
        get_backend("banded").edit_distance_many("abcdef", ["abcdxf"] * 7, 2)
        after = pairs_scored_snapshot()
        assert after["banded"] - before.get("banded", 0) == 7


class TestServeExport:
    def test_join_stats_snapshot_surfaces_kernel_pairs(self):
        from repro.core.pipeline import DTTPipeline
        from repro.serve import TransformService
        from repro.surrogate import PretrainedDTT
        from repro.types import ExamplePair

        examples = [
            ExamplePair("Justin Trudeau", "jtrudeau"),
            ExamplePair("Stephen Harper", "sharper"),
        ]
        targets = ["jtrudeax", "sharpex", "pmartin"] + [
            f"filler-{i:03d}" for i in range(400)
        ]
        pipeline = DTTPipeline(
            PretrainedDTT(seed=0), n_trials=3, seed=1, joiner="indexed"
        )
        with TransformService(pipeline, max_wait_ms=5.0) as service:
            service.join(["Justin Trudeau"], targets, examples)
            snapshot = service.join_stats_snapshot()
            assert snapshot["last_join"] is not None
            assert sum(snapshot["kernel_pairs_total"].values()) > 0
            text = service.metrics_text()
        assert "serve_join_kernel_pairs_" in text

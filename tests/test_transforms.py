"""Tests for transformation units and the random composer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TransformError
from repro.transforms import (
    Literal,
    Lowercase,
    Replace,
    Reverse,
    Split,
    Stacked,
    Substring,
    Transformation,
    TransformationComposer,
    Uppercase,
)

texts = st.text(alphabet="abcDEF -_.123", max_size=20)


class TestUnits:
    def test_substring(self):
        assert Substring(1, 3).apply("abcdef") == "bc"

    def test_substring_open_end(self):
        assert Substring(2, None).apply("abcdef") == "cdef"

    def test_substring_truncates(self):
        assert Substring(2, 99).apply("abc") == "c"

    def test_split_basic(self):
        assert Split("-", 1).apply("a-b-c") == "b"

    def test_split_negative_index(self):
        assert Split("-", -1).apply("a-b-c") == "c"

    def test_split_out_of_range_is_empty(self):
        assert Split("-", 5).apply("a-b") == ""

    def test_split_empty_delimiter_rejected(self):
        with pytest.raises(TransformError):
            Split("", 0)

    def test_case_units(self):
        assert Lowercase().apply("AbC") == "abc"
        assert Uppercase().apply("AbC") == "ABC"

    def test_literal_ignores_input(self):
        assert Literal("xyz").apply("whatever") == "xyz"

    def test_replace(self):
        assert Replace("/", "-").apply("a/b/c") == "a-b-c"

    def test_replace_multichar_old_rejected(self):
        with pytest.raises(TransformError):
            Replace("ab", "c")

    def test_reverse(self):
        assert Reverse().apply("Hello") == "olleH"

    def test_stacked_order(self):
        stacked = Stacked((Split(" ", 0), Uppercase()))
        assert stacked.apply("hello world") == "HELLO"

    def test_stacked_empty_rejected(self):
        with pytest.raises(TransformError):
            Stacked(())

    @given(texts)
    @settings(max_examples=60)
    def test_reverse_is_involution(self, text):
        unit = Reverse()
        assert unit.apply(unit.apply(text)) == text

    @given(texts)
    @settings(max_examples=60)
    def test_case_units_idempotent(self, text):
        lower = Lowercase()
        assert lower.apply(lower.apply(text)) == lower.apply(text)


class TestTransformation:
    def test_concatenates_unit_outputs(self):
        transformation = Transformation(
            units=(Substring(0, 2), Literal("-"), Uppercase())
        )
        assert transformation.apply("abc") == "ab-ABC"

    def test_describe_mentions_units(self):
        transformation = Transformation(units=(Lowercase(), Literal("x")))
        assert "lower" in transformation.describe()
        assert "lit" in transformation.describe()


class TestComposer:
    def test_unit_count_in_range(self):
        composer = TransformationComposer(min_units=3, max_units=6)
        rng = np.random.default_rng(0)
        for _ in range(50):
            transformation = composer.sample(rng)
            assert 3 <= len(transformation) <= 6

    def test_stack_depth_bounded(self):
        composer = TransformationComposer(max_stack_depth=3)
        rng = np.random.default_rng(1)
        for _ in range(50):
            for unit in composer.sample(rng).units:
                if isinstance(unit, Stacked):
                    assert unit.depth <= 3

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            TransformationComposer(min_units=0)
        with pytest.raises(ValueError):
            TransformationComposer(min_units=4, max_units=2)
        with pytest.raises(ValueError):
            TransformationComposer(max_stack_depth=0)

    def test_deterministic_under_seed(self):
        composer = TransformationComposer()
        a = composer.sample(np.random.default_rng(42)).describe()
        b = composer.sample(np.random.default_rng(42)).describe()
        assert a == b

    @given(texts)
    @settings(max_examples=40)
    def test_sampled_transformations_are_total(self, text):
        composer = TransformationComposer()
        rng = np.random.default_rng(7)
        for _ in range(5):
            result = composer.sample(rng).apply(text)
            assert isinstance(result, str)

"""Property/fuzz tests for the blocked-join kernel and q-gram index.

One seeded harness generates a few thousand random unicode string pairs
(half derived by a known number of edits so small distances are well
represented) and checks:

* ``edit_distance_capped`` agrees with ``edit_distance`` whenever the
  true distance is within the cap, and exceeds the cap otherwise;
* the batched numpy kernel ``edit_distance_many`` agrees with the
  scalar capped DP on every pair;
* ``QGramIndex.candidates`` is complete — every value within the cap is
  in the candidate set — for arbitrary columns with duplicates and
  empty strings.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from repro.utils.fuzz import FUZZ_ALPHABET, random_edits, random_unicode_string

from repro.index import QGramIndex, edit_distance_many, encode_strings
from repro.index.kernel import edit_distance_codes
from repro.text.edit_distance import edit_distance, edit_distance_capped

_SEED = 20260728


def _pair_stream(rng: random.Random, count: int):
    """Yield ``(a, b, cap)`` with a mix of near and far pairs."""
    for _ in range(count):
        a = random_unicode_string(rng)
        if rng.random() < 0.5:
            b = random_edits(rng, a, rng.randint(0, 4))
        else:
            b = random_unicode_string(rng)
        yield a, b, rng.randint(0, 7)


class TestCappedFuzz:
    def test_capped_agrees_with_exact(self):
        rng = random.Random(_SEED)
        for a, b, cap in _pair_stream(rng, 3000):
            exact = edit_distance(a, b)
            capped = edit_distance_capped(a, b, cap)
            if exact <= cap:
                assert capped == exact, (a, b, cap)
            else:
                assert capped > cap, (a, b, cap)


class TestBatchedKernel:
    def test_agrees_with_scalar_fuzz(self):
        rng = random.Random(_SEED + 1)
        for _ in range(150):
            query = random_unicode_string(rng)
            candidates = [
                random_edits(rng, query, rng.randint(0, 4))
                if rng.random() < 0.6
                else random_unicode_string(rng)
                for _ in range(rng.randint(1, 24))
            ]
            cap = rng.randint(0, 7)
            batched = edit_distance_many(query, candidates, cap)
            for got, candidate in zip(batched, candidates):
                scalar = edit_distance_capped(query, candidate, cap)
                expected = scalar if scalar <= cap else cap + 1
                assert got == expected, (query, candidate, cap)

    def test_empty_candidate_list(self):
        result = edit_distance_many("abc", [], 3)
        assert result.shape == (0,)
        assert result.dtype == np.int64

    def test_empty_query_and_empty_candidates(self):
        assert list(edit_distance_many("", ["", "ab", "abcd"], 3)) == [0, 2, 4]
        assert list(edit_distance_many("xy", ["", "xy"], 5)) == [2, 0]

    def test_over_cap_clamps_to_cap_plus_one(self):
        assert list(edit_distance_many("aaaa", ["zzzz", "aaab"], 2)) == [3, 1]

    def test_cap_zero(self):
        assert list(edit_distance_many("ab", ["ab", "ac"], 0)) == [0, 1]

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            edit_distance_many("a", ["b"], -1)

    def test_astral_plane_characters(self):
        # Each emoji is one code point; the kernel must not split
        # surrogates or let the pad value collide with real characters.
        assert list(edit_distance_many("\U0001F600x", ["\U0001F600x", "x"], 3)) == [0, 1]

    def test_lone_surrogates_match_scalar_path(self):
        # Lone surrogates (surrogateescape artifacts) cannot be UTF-32
        # encoded; the kernel must fall back instead of crashing, and
        # agree with the scalar DP which compares characters directly.
        probe = "alph\ud800a"
        candidates = ["alpha", "alph\ud800a", "\udc80\udc80", ""]
        got = edit_distance_many(probe, candidates, 6)
        expected = [
            min(edit_distance_capped(probe, c, 6), 7) for c in candidates
        ]
        assert list(got) == expected


class TestEncodeStrings:
    def test_shapes_and_padding(self):
        codes, lengths = encode_strings(["ab", "", "abcd"])
        assert codes.shape == (3, 4)
        assert list(lengths) == [2, 0, 4]
        assert codes[0, 0] == ord("a")
        # Padding is outside the unicode range.
        assert codes[1, 0] > 0x10FFFF

    def test_all_empty(self):
        codes, lengths = encode_strings(["", ""])
        assert codes.shape == (2, 0)
        assert list(lengths) == [0, 0]
        assert list(edit_distance_codes("ab", codes, lengths, 5)) == [2, 2]


class TestQGramIndex:
    def test_candidates_complete_fuzz(self):
        rng = random.Random(_SEED + 2)
        for _ in range(120):
            targets = [
                random_unicode_string(rng, max_length=10)
                for _ in range(rng.randint(1, 40))
            ]
            # Force duplicates and empties into the column.
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 4))]
            targets += [""] * rng.randint(0, 2)
            rng.shuffle(targets)
            index = QGramIndex(targets, q=rng.choice((2, 3)))
            query = (
                random_edits(rng, rng.choice(targets), rng.randint(0, 3))
                if rng.random() < 0.6
                else random_unicode_string(rng)
            )
            cap = rng.randint(0, 6)
            candidate_ids = set(index.candidates(query, cap).tolist())
            for vid, value in enumerate(index.values):
                if edit_distance(query, value) <= cap:
                    assert vid in candidate_ids, (query, value, cap, targets)

    def test_vacuous_bound_returns_all_length_compatible(self):
        index = QGramIndex(["ab", "abcdefgh", "x"], q=2)
        # len(query)=1 < q: the count filter is vacuous; only the
        # length filter applies.
        ids = index.candidates("z", 1)
        assert [index.values[i] for i in ids] == ["ab", "x"]

    def test_duplicates_collapse_to_one_value(self):
        index = QGramIndex(["dup", "other", "dup", "dup"], q=2)
        assert len(index) == 2
        vid = index.value_id("dup")
        assert index.rows_for(vid) == [0, 2, 3]
        assert index.first_rows[vid] == 0

    def test_value_id_exact_lookup(self):
        index = QGramIndex(["alpha", "beta"], q=2)
        assert index.value_id("beta") == 1
        assert index.value_id("gamma") is None

    def test_candidates_ascending_and_deterministic(self):
        targets = [f"row{i:03d}" for i in range(50)]
        index = QGramIndex(targets, q=2)
        ids = index.candidates("row01", 2)
        assert list(ids) == sorted(ids.tolist())
        assert list(ids) == list(index.candidates("row01", 2))

    def test_no_shared_grams_means_no_candidates(self):
        index = QGramIndex(["aaaa", "bbbb"], q=2)
        assert index.candidates("zzzz", 1).size == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QGramIndex(["a"], q=0)
        with pytest.raises(ValueError):
            QGramIndex(["a"], q=2).candidates("a", -1)

    def test_alphabet_exercises_multiple_planes(self):
        # Guard: the fuzz alphabet really covers BMP and astral planes.
        assert any(ord(ch) > 0xFFFF for ch in FUZZ_ALPHABET)
        assert any(0x7F < ord(ch) <= 0xFFFF for ch in FUZZ_ALPHABET)

"""Parallel sharded join: byte-equivalence with the serial engine.

The worker pool is a pure execution choice — for any worker count the
merged output of ``join_many`` must be **byte-identical** to the serial
engine (matches, distances, earliest-row tie-breaks, threshold
abstentions).  These tests enforce that on every registry dataset and on
adversarial shapes (skewed buckets, tiny forced-parallel batches), and
cover the shard planner, the auto-worker policy, and the ``JoinStats``
counters threaded into eval reports.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from repro.utils.fuzz import random_edits, random_unicode_string

from repro.core.join_config import JoinConfig
from repro.datagen.benchmarks.registry import dataset_names, get_dataset
from repro.index import IndexCache, IndexedJoiner, JoinStats
from repro.index.parallel import plan_shards
from repro.index.qgram import QGramIndex

_SEED = 5150
_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789 .-_/"


def _probe_mix(rng, targets, count):
    """Exact, near, far, and abstained probes — the pipeline's mix."""
    probes = []
    for _ in range(count):
        roll = rng.random()
        base = rng.choice(targets)
        if roll < 0.3:
            probes.append(base)
        elif roll < 0.7:
            probes.append(
                random_edits(rng, base, rng.randint(1, 3), alphabet=_ALPHABET)
            )
        elif roll < 0.9:
            probes.append(random_unicode_string(rng, max_length=12))
        else:
            probes.append("")
    return probes


class TestParallelEquivalence:
    @pytest.mark.parametrize("name", dataset_names())
    def test_byte_identical_on_dataset_at_1_2_4_workers(self, name):
        # One pooled column per dataset (tables concatenated) keeps the
        # worker-pool startup cost bounded while still covering every
        # dataset's value shapes.
        rng = random.Random(_SEED)
        tables = get_dataset(name, seed=0, scale=0.05)
        targets = [value for table in tables for value in table.targets]
        probes = _probe_mix(rng, targets, len(targets))
        serial = IndexedJoiner(JoinConfig(n_workers=1), cache=IndexCache())
        expected = serial.join_many(probes, targets)
        for n_workers in (1, 2, 4):
            joiner = IndexedJoiner(
                JoinConfig(n_workers=n_workers), cache=IndexCache()
            )
            assert joiner.join_many(probes, targets) == expected, (
                name,
                n_workers,
            )

    def test_thresholds_identical_under_parallelism(self):
        rng = random.Random(_SEED + 1)
        targets = [
            random_unicode_string(rng, max_length=14, min_length=4)
            for _ in range(300)
        ]
        probes = _probe_mix(rng, targets, 200)
        for config in (
            JoinConfig(max_distance=2),
            JoinConfig(normalized_threshold=0.34),
        ):
            serial = IndexedJoiner(
                replace(config, n_workers=1), cache=IndexCache()
            )
            parallel = IndexedJoiner(
                replace(config, n_workers=2), cache=IndexCache()
            )
            assert parallel.join_many(probes, targets) == serial.join_many(
                probes, targets
            ), config

    def test_skewed_single_bucket_is_split_and_identical(self):
        # Every probe shares one length: the planner must split the one
        # bucket by candidate mass instead of shipping it whole.
        rng = random.Random(_SEED + 2)
        targets = [
            random_unicode_string(
                rng, max_length=10, min_length=6, alphabet=_ALPHABET
            )
            for _ in range(500)
        ]
        probes = [
            "".join(rng.choice(_ALPHABET) for _ in range(8)) for _ in range(240)
        ]
        serial = IndexedJoiner(JoinConfig(n_workers=1), cache=IndexCache())
        parallel = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        assert parallel.join_many(probes, targets) == serial.join_many(
            probes, targets
        )
        stats = parallel.last_join_stats
        assert stats.buckets == 1
        assert stats.shards > 1
        assert sum(stats.shard_sizes) == stats.pending

    def test_forced_workers_on_tiny_batch(self):
        # An explicit n_workers engages the pool even far below the
        # auto threshold — and still matches the serial scan.
        targets = ["alpha", "beta", "gamma", "delta", "epsilon"] * 3
        probes = ["alpa", "betta", "gamm", "", "epsilon", "zzzz"]
        serial = IndexedJoiner(JoinConfig(n_workers=1), cache=IndexCache())
        parallel = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        assert parallel.join_many(probes, targets) == serial.join_many(
            probes, targets
        )
        assert parallel.last_join_stats.n_workers == 2

    def test_non_fork_start_method_with_live_threads(self, monkeypatch):
        # Forking a multi-threaded process can deadlock workers on
        # inherited locks, so the pool must fall back to a fresh-start
        # method — and stay byte-identical through it (workers rebuild
        # the index from the pickled column instead of inheriting it).
        from repro.index import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module.threading, "active_count", lambda: 2
        )
        assert parallel_module._pool_context().get_start_method() != "fork"
        targets = [f"value-{i:04d}" for i in range(300)]
        probes = [f"valu-{i:04d}" for i in range(30)] + ["value-0007", ""]
        serial = IndexedJoiner(JoinConfig(n_workers=1), cache=IndexCache())
        parallel = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        assert parallel.join_many(probes, targets) == serial.join_many(
            probes, targets
        )

    def test_exact_only_batch_skips_the_pool(self):
        # Nothing pending: every probe resolves exactly or abstains, so
        # even an explicit worker count must not spawn processes.
        targets = ["alpha", "beta", "gamma"]
        joiner = IndexedJoiner(JoinConfig(n_workers=4), cache=IndexCache())
        assert joiner.join_many(["alpha", "", "beta"], targets) == [
            ("alpha", 0),
            (None, 0),
            ("beta", 0),
        ]
        stats = joiner.last_join_stats
        assert stats.n_workers == 1
        assert stats.shards == 0


class TestPersistentPool:
    def test_pool_survives_across_calls_and_columns(self):
        # One executor serves successive join_many calls — including
        # calls against different target columns — with results still
        # byte-identical to the serial scan.
        rng = random.Random(_SEED + 10)
        columns = [
            [
                random_unicode_string(
                    rng, max_length=12, min_length=4, alphabet=_ALPHABET
                )
                for _ in range(250)
            ]
            for _ in range(2)
        ]
        serial = IndexedJoiner(JoinConfig(n_workers=1), cache=IndexCache())
        parallel = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        pools = []
        for targets in columns + columns:  # repeat: warm-pool path
            probes = _probe_mix(rng, targets, 120)
            assert parallel.join_many(probes, targets) == serial.join_many(
                probes, targets
            )
            pools.append(parallel._pool)
        assert all(pool is pools[0] for pool in pools)  # one pool, reused
        parallel.close()
        assert parallel._pool is None

    def test_close_allows_later_reuse(self):
        targets = [f"value-{i:04d}" for i in range(200)]
        probes = [f"valu-{i:04d}" for i in range(40)]
        joiner = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        first = joiner.join_many(probes, targets)
        joiner.close()
        assert joiner.join_many(probes, targets) == first  # fresh pool
        joiner.close()

    def test_context_manager_closes_pool(self):
        targets = [f"value-{i:04d}" for i in range(200)]
        probes = [f"valu-{i:04d}" for i in range(40)]
        with IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache()) as joiner:
            joiner.join_many(probes, targets)
            pool = joiner._pool
            assert pool is not None
        assert joiner._pool is None
        assert pool.closed

    def test_worker_count_change_rebuilds_pool(self):
        targets = [f"value-{i:04d}" for i in range(200)]
        probes = [f"valu-{i:04d}" for i in range(40)]
        joiner = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        expected = joiner.join_many(probes, targets)
        first_pool = joiner._pool
        joiner.n_workers = 3
        assert joiner.join_many(probes, targets) == expected
        assert joiner._pool is not first_pool
        assert first_pool.closed
        joiner.close()

    def test_fork_pool_rebuilds_when_threads_appear(self, monkeypatch):
        # A pool whose executor was fork-started while single-threaded
        # must not fork more workers once other threads exist — the
        # next call rebuilds from a fresh-start context instead.
        from repro.index import parallel as parallel_module

        targets = [f"value-{i:04d}" for i in range(220)]
        probes = [f"valu-{i:04d}" for i in range(40)]
        joiner = IndexedJoiner(JoinConfig(n_workers=2), cache=IndexCache())
        expected = joiner.join_many(probes, targets)
        pool = joiner._pool
        was_fork = pool._fork_started
        monkeypatch.setattr(
            parallel_module.threading, "active_count", lambda: 2
        )
        assert joiner.join_many(probes, targets) == expected
        if was_fork:
            # Same pool object, new (fresh-start) executor inside it.
            assert joiner._pool is pool
            assert not pool._fork_started
        joiner.close()

    def test_score_shard_fingerprint_protocol(self, monkeypatch):
        # Warm shards are fingerprint-only; an unknown fingerprint with
        # no column attached must ask for a resend, and a resolved one
        # must serve later fingerprint-only shards from the memo.
        from collections import OrderedDict

        from repro.index import adaptive_q, column_fingerprint
        from repro.index import parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_WORKER_CACHE", IndexCache())
        monkeypatch.setattr(parallel_module, "_WORKER_INDEXES", OrderedDict())
        with pytest.raises(parallel_module._ColumnNeeded) as excinfo:
            parallel_module._score_shard(7, 5, ["probe"], "fp?", None, None)
        assert excinfo.value.shard_id == 7
        column = tuple(f"value-{i:03d}" for i in range(60))
        fingerprint = column_fingerprint(column, adaptive_q(column))
        shard_id, _, _, _, kernel_pairs, vids, distances = (
            parallel_module._score_shard(
                1, 9, ["value-0070"], fingerprint, column, None
            )
        )
        assert shard_id == 1 and distances.tolist() == [1]
        assert sum(dict(kernel_pairs).values()) >= 1
        # Fingerprint-only now resolves through the memo, no column.
        shard_id, *_ = parallel_module._score_shard(
            2, 9, ["value-0080"], fingerprint, None, None
        )
        assert shard_id == 2

    def test_auto_joiner_close_reaches_delegate(self):
        from repro.index import AutoJoiner

        targets = [f"value-{i:04d}" for i in range(300)]
        probes = [f"valu-{i:04d}" for i in range(40)]
        with AutoJoiner(JoinConfig(n_workers=2), cache=IndexCache()) as joiner:
            joiner.join_many(probes, targets)
            assert joiner._indexed._pool is not None
        assert joiner._indexed._pool is None


class TestWorkerPolicy:
    def test_explicit_workers_validated(self):
        with pytest.raises(ValueError):
            IndexedJoiner(JoinConfig(n_workers=0))
        with pytest.raises(ValueError):
            IndexedJoiner(JoinConfig(parallel_threshold=-1))

    def test_auto_mode_respects_threshold_and_cpu_count(self, monkeypatch):
        joiner = IndexedJoiner(JoinConfig(parallel_threshold=100), cache=IndexCache())
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert joiner._resolve_workers(99) == 1
        assert joiner._resolve_workers(100) == 4
        monkeypatch.setattr("os.cpu_count", lambda: 64)
        assert (
            joiner._resolve_workers(100) == IndexedJoiner._MAX_AUTO_WORKERS
        )
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert joiner._resolve_workers(100) == 1

    def test_explicit_workers_bypass_threshold(self):
        joiner = IndexedJoiner(
            JoinConfig(n_workers=3, parallel_threshold=10**9),
            cache=IndexCache(),
        )
        assert joiner._resolve_workers(5) == 3
        assert joiner._resolve_workers(0) == 1


class TestShardPlanner:
    def test_plan_is_deterministic_and_partitions_buckets(self):
        rng = random.Random(_SEED + 3)
        targets = [
            random_unicode_string(rng, max_length=12, min_length=4)
            for _ in range(400)
        ]
        index = QGramIndex(targets, q=2)
        buckets = {
            6: [f"probe{i}"[:6] + str(i) for i in range(80)],
            9: ["x" * 9 for _ in range(3)],
        }
        first = plan_shards(index, buckets, n_workers=4)
        second = plan_shards(index, buckets, n_workers=4)
        assert first == second
        flattened = {
            length: [p for sl, ps in first if sl == length for p in ps]
            for length in buckets
        }
        assert flattened == buckets  # order-preserving partition

    def test_mass_splits_dense_lengths_harder(self):
        # 300 targets at length 8, 10 at length 20: the length-8 bucket
        # carries ~30x the per-probe mass and must split into more
        # shards than the sparse one despite equal probe counts.
        targets = ["a" * 4 + str(i).zfill(4) for i in range(300)]
        targets += ["b" * 16 + str(i).zfill(4) for i in range(10)]
        index = QGramIndex(targets, q=2)
        probes_dense = [f"c{i:07d}" for i in range(40)]
        probes_sparse = [f"d{i:019d}" for i in range(40)]
        shards = plan_shards(
            index, {8: probes_dense, 20: probes_sparse}, n_workers=2
        )
        dense = [ps for length, ps in shards if length == 8]
        sparse = [ps for length, ps in shards if length == 20]
        assert len(dense) > len(sparse)

    def test_empty_buckets_make_no_shards(self):
        index = QGramIndex(["abc"], q=2)
        assert plan_shards(index, {}, n_workers=4) == []


class TestJoinStatsThreading:
    def test_serial_stats_shape(self):
        joiner = IndexedJoiner(cache=IndexCache())
        targets = ["alpha", "beta", "gamma", "beta"]
        probes = ["alpha", "alpha", "betta", "", "zzz"]
        joiner.join_many(probes, targets)
        stats = joiner.last_join_stats
        assert isinstance(stats, JoinStats)
        assert stats.probes == 5
        assert stats.unique_probes == 4
        assert stats.exact_matches == 1
        assert stats.empty_probes == 1
        assert stats.pending == 2
        assert stats.n_workers == 1
        assert stats.cache_misses == 1
        as_dict = stats.as_dict()
        assert as_dict["probes"] == 5
        assert isinstance(as_dict["shard_sizes"], list)

    def test_parallel_stats_count_workers_and_disk(self, tmp_path, monkeypatch):
        rng = random.Random(_SEED + 4)
        targets = [
            random_unicode_string(rng, max_length=12, min_length=4)
            for _ in range(300)
        ]
        probes = _probe_mix(rng, targets, 150)
        joiner = IndexedJoiner(
            JoinConfig(n_workers=2), cache=IndexCache(cache_dir=tmp_path)
        )
        expected = joiner.join_many(probes, targets)
        stats = joiner.last_join_stats
        assert stats.n_workers == 2
        assert stats.shards >= 1
        assert len(stats.shard_sizes) == stats.shards
        # The parent built and persisted the index; fork-started
        # workers inherit it copy-on-write, paying no disk traffic.
        assert stats.disk_misses >= 1
        # Fresh-start pools resolve through the disk tier instead: the
        # parent hits it on its memory miss, and every shard-executing
        # worker reports its own load.
        from repro.index import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module.threading, "active_count", lambda: 2
        )
        fresh = IndexedJoiner(
            JoinConfig(n_workers=2), cache=IndexCache(cache_dir=tmp_path)
        )
        assert fresh.join_many(probes, targets) == expected
        assert fresh.last_join_stats.disk_hits >= 2

    def test_eval_report_carries_engine_and_join_stats(self):
        from repro.eval.runner import DTTJoinerAdapter, evaluate_on_table
        from repro.surrogate import PretrainedDTT

        table = get_dataset("WT", seed=0, scale=0.05)[0]
        adapter = DTTJoinerAdapter(
            PretrainedDTT(seed=0), n_trials=2, joiner="indexed"
        )
        report = evaluate_on_table(adapter, table)
        assert report.stats is not None
        assert report.stats["engine"]["prompts"] > 0
        join_stats = report.stats["join"]
        assert join_stats["probes"] == len(table.split(0.5)[1])
        assert join_stats["n_workers"] == 1  # small table stays serial

    def test_pipeline_forwards_join_config(self):
        from repro.core.pipeline import DTTPipeline
        from repro.surrogate import PretrainedDTT

        pipeline = DTTPipeline(
            PretrainedDTT(seed=0), join_config=JoinConfig(n_workers=2)
        )
        assert pipeline.joiner._indexed.n_workers == 2

"""Tests for the trainable byte-level seq2seq model and its trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.training import TrainingInstance
from repro.exceptions import ModelError
from repro.model import ByteSeq2SeqModel, DTTModelConfig, Trainer
from repro.model.config import TINY_CONFIG
from repro.model.trainer import build_training_set


class TestConfig:
    def test_defaults_are_unbalanced(self):
        config = DTTModelConfig()
        assert config.encoder_layers >= config.decoder_layers

    def test_balanced_violation_rejected(self):
        with pytest.raises(ModelError):
            DTTModelConfig(encoder_layers=1, decoder_layers=2)

    def test_head_divisibility(self):
        with pytest.raises(ModelError):
            DTTModelConfig(dim=30, n_heads=4)


class TestByteSeq2SeqModel:
    def test_prepare_batch_shapes(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = ["<sos>a<tr>A<eoe>b<tr><eos>", "<sos>cc<tr>CC<eoe>dd<tr><eos>"]
        labels = ["B", "DD"]
        input_ids, input_mask, decoder_in, targets, target_mask = (
            model.prepare_batch(prompts, labels)
        )
        assert input_ids.shape[0] == 2
        assert decoder_in.shape == targets.shape
        assert decoder_in[0, 0] == model.tokenizer.vocab.sos_id
        # First target of row 0 is 'B', last real target is <eos>.
        assert targets[0, 0] == model.tokenizer.encode_text("B")[0]

    def test_labels_truncated_to_max_output(self):
        config = DTTModelConfig(
            dim=32, n_heads=2, encoder_layers=1, decoder_layers=1,
            ffn_hidden=32, max_input_length=64, max_output_length=4,
        )
        model = ByteSeq2SeqModel(config)
        _, _, decoder_in, targets, _ = model.prepare_batch(
            ["<sos>a<tr><eos>"], ["abcdefghij"]
        )
        assert decoder_in.shape[1] <= 4

    def test_generate_returns_one_output_per_prompt(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        outputs = model.generate(["<sos>a<tr><eos>", "<sos>b<tr><eos>"])
        assert len(outputs) == 2
        assert all(isinstance(o, str) for o in outputs)

    def test_generate_empty_batch(self):
        assert ByteSeq2SeqModel(TINY_CONFIG).generate([]) == []

    def test_generate_deterministic(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompt = ["<sos>ab<tr>AB<eoe>cd<tr><eos>"]
        assert model.generate(prompt) == model.generate(prompt)

    def test_loss_decreases_with_steps(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        from repro.nn.optim import Adam

        optimizer = Adam(model.network.parameters(), 3e-3)
        prompts = ["<sos>ab<tr>AB<eoe>cd<tr><eos>"] * 4
        labels = ["CD"] * 4
        first = None
        last = None
        for _ in range(25):
            optimizer.zero_grad()
            loss = model.loss_and_backward(prompts, labels)
            optimizer.step()
            if first is None:
                first = loss
            last = loss
        assert last < first * 0.5

    def test_save_load_roundtrip(self, tmp_path):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        path = tmp_path / "model.npz"
        model.save(path)
        clone = ByteSeq2SeqModel(TINY_CONFIG)
        clone.load(path)
        prompt = ["<sos>xy<tr><eos>"]
        assert clone.generate(prompt) == model.generate(prompt)

    def test_implements_sequence_model_protocol(self):
        from repro.core.interface import SequenceModel

        assert isinstance(ByteSeq2SeqModel(TINY_CONFIG), SequenceModel)


class TestTrainer:
    def _copy_task_instances(self) -> list[TrainingInstance]:
        items = "abcdefgh"
        return [
            TrainingInstance(
                prompt=f"<sos>{a}<tr>{a}<eoe>{b}<tr>{b}<eoe>{c}<tr><eos>",
                label=c,
            )
            for a in items
            for b in items
            for c in items[:4]
            if a != b
        ]

    def test_training_reduces_loss(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        trainer = Trainer(model, learning_rate=3e-3, batch_size=32)
        report = trainer.fit(self._copy_task_instances(), epochs=3)
        assert report.epochs_run == 3
        assert report.train_losses[-1] < report.train_losses[0]

    def test_learns_copy_task(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        trainer = Trainer(model, learning_rate=3e-3, batch_size=32)
        trainer.fit(self._copy_task_instances(), epochs=8)
        outputs = model.generate(
            ["<sos>a<tr>a<eoe>b<tr>b<eoe>c<tr><eos>"]
        )
        assert outputs == ["c"]

    def test_early_stopping(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        trainer = Trainer(model, learning_rate=0.0, patience=2)
        report = trainer.fit(self._copy_task_instances()[:40], epochs=20)
        assert report.epochs_run < 20

    def test_no_instances_rejected(self):
        trainer = Trainer(ByteSeq2SeqModel(TINY_CONFIG))
        with pytest.raises(ValueError):
            trainer.fit([], epochs=1)

    def test_invalid_validation_fraction(self):
        with pytest.raises(ValueError):
            Trainer(ByteSeq2SeqModel(TINY_CONFIG), validation_fraction=1.0)

    def test_build_training_set(self):
        instances = build_training_set(n_groupings=3, seed=1)
        assert len(instances) == 12  # 3 groupings x 4 subsets
        assert all("<tr>" in inst.prompt for inst in instances)
        assert all(inst.prompt.startswith("<sos>") for inst in instances)

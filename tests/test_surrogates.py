"""Tests for the pretrained-DTT and GPT-3 surrogates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serializer import PromptSerializer
from repro.surrogate import GPT3Surrogate, PretrainedDTT, TrainingProfile
from repro.surrogate.errors import corrupt, mapping_difficulty, scrambled_copy
from repro.surrogate.profiles import DEFAULT_PROFILE, LONG_PROFILE
from repro.text.naturalness import naturalness
from repro.types import ExamplePair

_SER = PromptSerializer()


def _prompt(pairs: list[tuple[str, str]], query: str) -> str:
    return _SER.serialize([ExamplePair(s, t) for s, t in pairs], query)


class TestErrors:
    def test_mapping_difficulty_bounds(self):
        assert mapping_difficulty("abc", "abc") == 0.0
        assert mapping_difficulty("abc", "xyz") == 1.0
        assert 0.0 < mapping_difficulty("abcdef", "abcxyz") < 1.0

    def test_corrupt_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        assert corrupt("hello", 0.0, rng) == "hello"

    def test_corrupt_high_rate_changes_text(self):
        rng = np.random.default_rng(0)
        assert corrupt("hello world foo bar", 0.9, rng) != "hello world foo bar"

    def test_corrupt_deterministic_under_rng(self):
        a = corrupt("some text here", 0.3, np.random.default_rng(5))
        b = corrupt("some text here", 0.3, np.random.default_rng(5))
        assert a == b

    def test_scrambled_copy_preserves_multiset_mostly(self):
        rng = np.random.default_rng(1)
        text = "abcdefghijkl"
        scrambled = scrambled_copy(text, rng)
        assert sorted(scrambled) == sorted(text)

    def test_scrambled_copy_short_inputs(self):
        rng = np.random.default_rng(2)
        assert scrambled_copy("ab", rng) == "ab"


class TestTrainingProfile:
    def test_maturity_schedule(self):
        assert TrainingProfile(n_groupings=0).maturity == 0.0
        assert TrainingProfile(n_groupings=2000).maturity == 1.0
        assert TrainingProfile(n_groupings=10000).maturity == 1.0
        mid = TrainingProfile(n_groupings=500).maturity
        assert 0.0 < mid < 1.0

    def test_untrained_flag(self):
        assert TrainingProfile(n_groupings=0).is_untrained
        assert not DEFAULT_PROFILE.is_untrained

    def test_families_unlock_with_maturity(self):
        weak = TrainingProfile(n_groupings=100).enabled_families()
        strong = DEFAULT_PROFILE.enabled_families()
        assert weak <= strong
        assert "general" in strong
        assert "case" in strong

    def test_base_error_decreases(self):
        errors = [
            TrainingProfile(n_groupings=n).base_error
            for n in (0, 500, 1000, 2000)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_overfit_bias_after_plateau(self):
        assert DEFAULT_PROFILE.overfit_bias == 0.0
        assert TrainingProfile(n_groupings=10000).overfit_bias > 0.0

    def test_length_penalty(self):
        profile = DEFAULT_PROFILE
        assert profile.length_penalty(20, difficulty=0.5) == 0.0
        assert profile.length_penalty(60, difficulty=0.5) > 0.0
        assert LONG_PROFILE.length_penalty(60, difficulty=0.5) == 0.0
        # Harder mappings are hit harder by length generalization.
        assert profile.length_penalty(60, 0.9) > profile.length_penalty(60, 0.1)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            TrainingProfile(n_groupings=-1)
        with pytest.raises(ValueError):
            TrainingProfile(min_length=10, max_length=5)


class TestPretrainedDTT:
    def test_paper_example(self, pretrained_model):
        prompt = _prompt(
            [("Justin Trudeau", "jtrudeau"), ("Paul Martin", "pmartin")],
            "Jean Chretien",
        )
        assert pretrained_model.generate([prompt]) == ["jchretien"]

    def test_deterministic(self, pretrained_model):
        prompt = _prompt([("ab", "AB"), ("cd", "CD")], "xy")
        assert pretrained_model.generate([prompt]) == pretrained_model.generate(
            [prompt]
        )

    def test_malformed_prompt_abstains(self, pretrained_model):
        assert pretrained_model.generate(["not a prompt"]) == [""]

    def test_untrained_model_outputs_garbage(self):
        model = PretrainedDTT(profile=TrainingProfile(n_groupings=0))
        prompt = _prompt([("ab", "AB"), ("cd", "CD")], "hello world")
        output = model.generate([prompt])[0]
        assert output != "HELLO WORLD"

    def test_kb_prior_answers_some_semantic_facts(self):
        # Recalled facts still pass through the auto-regressive decoder,
        # so single trials may carry a character error; the pipeline's
        # aggregation recovers the clean answer.
        from repro.core.pipeline import DTTPipeline

        model = PretrainedDTT(fact_coverage=1.0)
        pipeline = DTTPipeline(model, seed=2)
        examples = [
            ExamplePair("France", "Paris"),
            ExamplePair("Japan", "Tokyo"),
            ExamplePair("Italy", "Rome"),
        ]
        predictions = pipeline.transform_column(["Germany"], examples)
        assert predictions[0].value == "Berlin"

    def test_kb_prior_disabled_at_zero_coverage(self):
        model = PretrainedDTT(fact_coverage=0.0)
        prompt = _prompt(
            [("France", "Paris"), ("Japan", "Tokyo")], "Germany"
        )
        assert model.generate([prompt]) != ["Berlin"]

    def test_kb_prior_never_answers_parametric_relations(self):
        model = PretrainedDTT(fact_coverage=1.0)
        kb = model.kb
        relation = kb.relation("isbn_to_author")
        subjects = sorted(relation.pairs)
        prompt = _prompt(
            [
                (subjects[0], relation.pairs[subjects[0]]),
                (subjects[1], relation.pairs[subjects[1]]),
            ],
            subjects[2],
        )
        assert model.generate([prompt]) != [relation.pairs[subjects[2]]]

    def test_name_property(self, pretrained_model):
        assert pretrained_model.name == "DTT"


class TestGPT3Surrogate:
    def test_world_knowledge(self):
        model = GPT3Surrogate(fact_coverage=1.0)
        prompt = _prompt(
            [("Alberta", "AB"), ("Ontario", "ON")], "Quebec"
        )
        # Not a US state; falls back to textual.  Use states instead:
        prompt = _prompt(
            [("Texas", "TX"), ("Ohio", "OH")], "California"
        )
        assert model.generate([prompt]) == ["CA"]

    def test_parametric_relations_hallucinate(self):
        model = GPT3Surrogate(fact_coverage=1.0)
        relation = model.kb.relation("city_to_zip")
        subjects = sorted(relation.pairs)
        prompt = _prompt(
            [
                (subjects[0], relation.pairs[subjects[0]]),
                (subjects[1], relation.pairs[subjects[1]]),
            ],
            subjects[2],
        )
        output = model.generate([prompt])[0]
        assert output != relation.pairs[subjects[2]]
        assert len(output) == 5  # plausible zip format (hallucinated)

    def test_natural_text_pattern_following(self):
        model = GPT3Surrogate(seed=3)
        prompt = _prompt(
            [("John Smith", "Smith, John"), ("Mary Jones", "Jones, Mary")],
            "Alice Brown",
        )
        assert model.generate([prompt]) == ["Brown, Alice"]

    def test_cannot_reverse(self):
        model = GPT3Surrogate()
        prompt = _prompt([("abcdef", "fedcba"), ("123456", "654321")], "qwerty")
        assert model.generate([prompt]) != ["ytrewq"]

    def test_deterministic(self):
        model = GPT3Surrogate(seed=1)
        prompt = _prompt([("ab", "xy"), ("cd", "zw")], "ef")
        assert model.generate([prompt]) == model.generate([prompt])

    def test_name_property(self):
        assert GPT3Surrogate().name == "GPT3"


class TestNaturalness:
    def test_natural_names_score_high(self):
        assert naturalness("Justin Trudeau") > 0.7

    def test_random_soup_scores_low(self):
        assert naturalness("xT!qd0@7n^=Zw*") < 0.5

    def test_digits_are_not_penalized_much(self):
        assert naturalness("780-555-1234") > 0.6

    def test_empty_string(self):
        assert naturalness("") == 1.0

    def test_range(self):
        for text in ("abc", "ABC!!!", "   ", "a1b2c3"):
            assert 0.0 <= naturalness(text) <= 1.0

"""Tests for substring/subsequence alignment."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.alignment import (
    common_substrings,
    longest_common_subsequence,
    longest_common_substring,
)

letters = st.text(alphabet="abcde", max_size=16)


class TestLongestCommonSubstring:
    def test_basic(self):
        assert longest_common_substring("Justin Trudeau", "jtrudeau") == "rudeau"

    def test_empty_inputs(self):
        assert longest_common_substring("", "abc") == ""
        assert longest_common_substring("abc", "") == ""

    def test_no_overlap(self):
        assert longest_common_substring("abc", "xyz") == ""

    @given(letters, letters)
    @settings(max_examples=100)
    def test_result_is_substring_of_both(self, a, b):
        result = longest_common_substring(a, b)
        assert result in a and result in b

    @given(letters)
    @settings(max_examples=40)
    def test_self_match(self, a):
        assert longest_common_substring(a, a) == a


class TestLongestCommonSubsequence:
    def test_basic(self):
        assert longest_common_subsequence("abcde", "ace") == 3

    def test_empty(self):
        assert longest_common_subsequence("", "abc") == 0

    @given(letters, letters)
    @settings(max_examples=100)
    def test_at_least_substring_length(self, a, b):
        assert longest_common_subsequence(a, b) >= len(
            longest_common_substring(a, b)
        )

    @given(letters, letters)
    @settings(max_examples=60)
    def test_symmetric(self, a, b):
        assert longest_common_subsequence(a, b) == longest_common_subsequence(b, a)


class TestCommonSubstrings:
    def test_finds_maximal_matches(self):
        matches = common_substrings("abxyzcd", "xyz", min_length=2)
        assert any(m.text == "xyz" for m in matches)

    def test_respects_min_length(self):
        matches = common_substrings("ab", "ba", min_length=2)
        assert matches == []

    def test_sorted_by_length_desc(self):
        matches = common_substrings("hello world", "world hello", min_length=2)
        lengths = [m.length for m in matches]
        assert lengths == sorted(lengths, reverse=True)

    def test_offsets_are_correct(self):
        for match in common_substrings("abc def", "def abc", min_length=3):
            source = "abc def"
            target = "def abc"
            assert source[match.source_start : match.source_start + match.length] == match.text
            assert target[match.target_start : match.target_start + match.length] == match.text

"""Observability primitives and the run-manifest schema.

The metrics side enforces the scrape contract: fixed log-spaced
buckets, cumulative ``le`` semantics, callback-backed counters that
never double-count, and a Prometheus text rendering a real scraper can
parse.  The manifest side enforces the reproduction contract: key
metrics extracted under stable labels, deltas that never silently
shrink, self-describing artifact flags, and a verdict that fails on
every regression class ``reproduce_all.py`` exists to catch.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    BENCH_FLOORS,
    GATED_BENCHES,
    MANIFEST_VERSION,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    artifact_flags,
    bench_deltas,
    build_manifest,
    check_floors,
    key_metrics,
    load_manifest,
    manifest_trends,
    new_run_id,
    provenance,
    save_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_OCCUPANCY_BUCKETS,
    log_spaced_buckets,
    merge_labeled_snapshots,
)


class TestBuckets:
    def test_log_spacing(self):
        assert log_spaced_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_defaults_cover_the_service_ranges(self):
        # 100 µs up past 100 s; 1 up to 1024 rows.
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 100.0
        assert DEFAULT_OCCUPANCY_BUCKETS == tuple(
            float(2**i) for i in range(11)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            log_spaced_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            log_spaced_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            log_spaced_buckets(1.0, 2.0, 0)


class TestCounterAndGauge:
    def test_counter_monotone(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_callback_counter_reads_live_and_rejects_inc(self):
        state = {"hits": 7}
        counter = Counter("hits_total", fn=lambda: state["hits"])
        assert counter.value == 7
        state["hits"] = 9
        assert counter.value == 9
        with pytest.raises(ValueError):
            counter.inc()

    def test_gauge_set_and_callback(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        assert gauge.value == 5.0
        live = Gauge("depth_live", fn=lambda: 3)
        assert live.value == 3.0


class TestLatencyHistogram:
    def test_cumulative_le_semantics(self):
        hist = LatencyHistogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        # le=1.0 includes the observation AT the bound (Prometheus
        # semantics), le=4.0 includes everything but the overflow.
        assert [b["count"] for b in snap["buckets"]] == [2, 3, 4]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)
        assert snap["mean"] == pytest.approx(21.2)

    def test_negative_observations_clamp_to_zero(self):
        hist = LatencyHistogram("lat", buckets=(1.0,))
        hist.observe(-5.0)
        snap = hist.snapshot()
        assert snap["buckets"][0]["count"] == 1
        assert snap["sum"] == 0.0

    def test_quantile_is_bucket_coarse(self):
        hist = LatencyHistogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) == 1.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_overflow_bucket_reports_last_bound(self):
        hist = LatencyHistogram("lat", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == 2.0

    def test_empty_quantile_is_zero(self):
        assert LatencyHistogram("lat", buckets=(1.0,)).quantile(0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram("lat", buckets=(2.0, 1.0))


class TestMetricsRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry(prefix="x_")
        first = registry.counter("events_total")
        second = registry.counter("events_total")
        assert first is second
        with pytest.raises(ValueError):
            registry.gauge("events_total")

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["a_total"] == 2
        assert snap["b"] == 1.5
        assert snap["c"]["count"] == 1

    def test_prometheus_text_rendering(self):
        registry = MetricsRegistry(prefix="serve_")
        registry.counter("hits_total", "cache hits").inc(3)
        registry.gauge("depth", "queue depth").set(2.0)
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.5, 1.0))
        hist.observe(0.25)
        hist.observe(2.0)
        text = registry.render_text()
        lines = text.splitlines()
        assert "# HELP serve_hits_total cache hits" in lines
        assert "# TYPE serve_hits_total counter" in lines
        assert "serve_hits_total 3" in lines
        assert "# TYPE serve_depth gauge" in lines
        assert "serve_depth 2" in lines
        assert "# TYPE serve_lat_seconds histogram" in lines
        assert 'serve_lat_seconds_bucket{le="0.5"} 1' in lines
        assert 'serve_lat_seconds_bucket{le="1"} 1' in lines
        assert 'serve_lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "serve_lat_seconds_sum 2.25" in lines
        assert "serve_lat_seconds_count 2" in lines
        assert text.endswith("\n")


class TestProvenance:
    def test_fields_present_and_sane(self):
        prov = provenance()
        assert prov["cpu_count"] >= 1
        assert prov["cpu_affinity"] >= 1
        assert prov["python"].count(".") == 2
        assert prov["numpy"]
        assert prov["recorded_unix"] > 1.7e9

    def test_run_ids_sort_by_time_and_never_collide(self):
        early = new_run_id(now=1_700_000_000.0)
        late = new_run_id(now=1_800_000_000.0)
        assert early < late
        assert new_run_id(now=0.0) != new_run_id(now=0.0)


class TestKeyMetrics:
    def test_per_bench_extraction(self):
        generate = {"rows": [{"mode": "batched", "speedup": 3.5}]}
        assert key_metrics("generate", generate) == {
            "speedup[mode=batched]": 3.5,
            "headline": 3.5,
        }
        join_parallel = {
            "rows": [
                {"workers": 2, "speedup_vs_serial": 1.1},
                {"workers": 4, "speedup_vs_serial": 1.4},
            ],
            "disk_cache": [{"speedup": 9.0}],
        }
        metrics = key_metrics("join_parallel", join_parallel)
        assert metrics["speedup[workers=4]"] == 1.4
        assert metrics["headline"] == 1.4
        assert metrics["disk_warm_speedup"] == 9.0
        serve = {
            "rows": [{"clients": 16, "speedup_vs_serial": 2.5}],
            "warm_cache": {"speedup": 40.0},
        }
        metrics = key_metrics("serve", serve)
        assert metrics["headline"] == 2.5
        assert metrics["warm_cache_speedup"] == 40.0

    def test_unknown_bench_or_empty_report_is_a_hole_not_a_crash(self):
        assert key_metrics("nope", {"rows": [{"speedup": 2.0}]}) == {}
        assert key_metrics("generate", {}) == {}


class TestBenchDeltas:
    def test_shared_keys_produce_deltas(self):
        deltas = bench_deltas(
            {"headline": 2.0, "speedup[rows=500]": 1.5},
            {"headline": 1.6, "speedup[rows=20000]": 4.0},
        )
        assert deltas["metrics"]["headline"]["delta"] == pytest.approx(0.4)
        assert deltas["metrics"]["headline"]["ratio"] == pytest.approx(1.25)
        assert deltas["only_current"] == ["speedup[rows=500]"]
        assert deltas["only_committed"] == ["speedup[rows=20000]"]

    def test_zero_committed_value_has_null_ratio(self):
        deltas = bench_deltas({"headline": 1.0}, {"headline": 0.0})
        assert deltas["metrics"]["headline"]["ratio"] is None


class TestArtifactFlags:
    def test_starved_parallel_artifact_is_flagged(self):
        report = {
            "provenance": {"cpu_count": 1, "cpu_affinity": 1},
            "rows": [{"workers": 2}, {"workers": 4}],
        }
        flags = artifact_flags("join_parallel", report)
        assert flags == [
            "recorded_with_1_cores_for_4_workers:"
            "_parallel_speedups_measure_shard_locality_only"
        ]

    def test_well_provisioned_artifact_is_clean(self):
        report = {
            "provenance": {"cpu_count": 8, "cpu_affinity": 8},
            "rows": [{"workers": 4}],
        }
        assert artifact_flags("join_parallel", report) == []

    def test_legacy_top_level_cpu_count_is_honoured(self):
        report = {"cpu_count": 1, "rows": [{"workers": 4}]}
        assert artifact_flags("join_parallel", report)

    def test_missing_provenance_is_itself_a_flag(self):
        assert artifact_flags("generate", {}) == ["no_host_provenance"]

    def test_single_core_serve_artifact_is_flagged(self):
        report = {"provenance": {"cpu_affinity": 1}}
        assert artifact_flags("serve", report) == [
            "recorded_on_single_core_host:_client_threads_share_one_core"
        ]


def _passing_block() -> dict:
    return {
        "ran": True,
        "committed_found": True,
        "floors": {"passed": True, "detail": ""},
    }


class TestBuildManifest:
    def test_all_green_verdict_passes(self):
        benches = {name: _passing_block() for name in GATED_BENCHES}
        manifest = build_manifest("run-1", provenance(), benches, mode="smoke")
        assert manifest["verdict"] == {"passed": True, "failures": []}
        assert manifest["manifest_version"] == MANIFEST_VERSION

    def test_every_regression_class_fails_the_verdict(self):
        benches = {name: _passing_block() for name in GATED_BENCHES}
        benches["generate"]["ran"] = False
        benches["join_batch"]["committed_found"] = False
        benches["serve"]["floors"] = {"passed": False, "detail": "2x floor"}
        del benches["join_scaling"]  # absent entirely
        manifest = build_manifest("run-2", {}, benches)
        failures = manifest["verdict"]["failures"]
        assert manifest["verdict"]["passed"] is False
        assert "bench generate: did not run" in failures
        assert "bench join_scaling: did not run" in failures
        assert "bench join_batch: committed artifact missing" in failures
        assert "bench serve: floor check failed (2x floor)" in failures

    def test_save_load_round_trip(self, tmp_path):
        manifest = build_manifest(
            "run-3",
            provenance(),
            {name: _passing_block() for name in GATED_BENCHES},
            eval_rows=[{"dataset": "WT", "f1": 0.9}],
        )
        path = tmp_path / "run_manifest.json"
        save_manifest(manifest, path)
        assert load_manifest(path) == manifest

    def test_version_mismatch_refuses_to_load(self, tmp_path):
        path = tmp_path / "old.json"
        save_manifest({"manifest_version": 0}, path)
        with pytest.raises(ValueError, match="version"):
            load_manifest(path)


class TestCallbackDegradation:
    def test_raising_callback_degrades_one_series_not_the_scrape(self):
        reg = MetricsRegistry(prefix="serve_")
        reg.counter("requests_total", "handled").inc(3)

        def boom() -> float:
            raise RuntimeError("backend went away")

        reg.gauge("queue_depth", "depth", fn=boom)
        text = reg.render_text()
        # The healthy series still renders; the broken one is skipped.
        assert "serve_requests_total 3" in text
        assert "serve_queue_depth" not in text
        assert reg.callback_errors.value == 1
        # The error counter renders before the gauge raises, so the
        # increment from scrape N appears on scrape N+1 — standard
        # counter-lag semantics, not a lost sample.
        assert "obs_callback_errors_total 1" in reg.render_text()

    def test_snapshot_degrades_the_same_way(self):
        reg = MetricsRegistry()

        def boom() -> int:
            raise RuntimeError("nope")

        reg.counter("broken_total", fn=boom)
        reg.gauge("fine", "ok").set(7.0)
        snap = reg.snapshot()
        assert "broken_total" not in snap
        assert snap["fine"] == 7.0
        assert reg.callback_errors.value == 1


class TestMergeLabeledSnapshots:
    def test_empty_input_renders_empty_page(self):
        assert merge_labeled_snapshots([]) == ""

    def test_disjoint_metric_names_each_render_once(self):
        merged = merge_labeled_snapshots(
            [
                ({"worker": "0"}, {"serve_requests_total": 4}),
                ({"worker": "1"}, {"engine_batches_total": 2}),
            ]
        )
        assert '# TYPE serve_requests_total counter' in merged
        assert 'serve_requests_total{worker="0"} 4' in merged
        assert 'engine_batches_total{worker="1"} 2' in merged
        assert merged.count("# TYPE") == 2

    def test_mismatched_histogram_bounds_refuse_to_merge(self):
        def hist(le: float) -> dict:
            return {
                "buckets": [{"le": le, "count": 1}],
                "sum": 0.5,
                "count": 2,
            }

        with pytest.raises(ValueError, match="mismatched bucket"):
            merge_labeled_snapshots(
                [
                    ({"worker": "0"}, {"latency_seconds": hist(1.0)}),
                    ({"worker": "1"}, {"latency_seconds": hist(2.0)}),
                ]
            )


class TestBenchFloors:
    def test_schema_covers_every_gated_bench(self):
        assert set(BENCH_FLOORS) == set(GATED_BENCHES)

    def test_every_spec_names_a_metric_and_a_positive_floor(self):
        for specs in BENCH_FLOORS.values():
            assert specs
            for spec in specs:
                assert spec["metric"]
                assert spec["min"] > 0


class TestCheckFloors:
    def test_all_floors_held(self):
        result = check_floors("kernels", {"headline": 4.2}, cores=8)
        assert result["passed"] is True
        assert result["checked"] and not result["skipped"]

    def test_below_floor_fails_with_detail(self):
        result = check_floors("kernels", {"headline": 1.0})
        assert result["passed"] is False
        assert "1.00 < floor 3.0" in result["detail"]

    def test_min_cores_unmet_skips_instead_of_failing(self):
        # A starved host recording speedup 0.5 must not fail the gated
        # bar it could never meet — the floor is skipped with a reason.
        result = check_floors(
            "join_parallel",
            {"speedup[workers=4]": 0.5, "disk_warm_speedup": 1.2},
            cores=1,
        )
        assert result["passed"] is True
        assert any("needs >= 4 cores" in s for s in result["skipped"])

    def test_absent_metric_is_a_skip_not_a_regression(self):
        result = check_floors(
            "serve", {"speedup[clients=16]": 3.0}, cores=16
        )
        assert result["passed"] is True
        assert len(result["checked"]) == 1
        assert len(result["skipped"]) == 2

    def test_unknown_bench_checks_nothing(self):
        result = check_floors("nope", {"headline": 0.0})
        assert result["passed"] is True
        assert not result["checked"] and not result["skipped"]


class TestManifestTrends:
    @staticmethod
    def _manifest(run_id: str, mode: str, headline: float) -> dict:
        return {
            "run_id": run_id,
            "mode": mode,
            "benches": {"kernels": {"metrics": {"headline": headline}}},
        }

    def test_identical_runs_report_zero_deltas(self):
        trends = manifest_trends(
            self._manifest("b", "smoke", 4.0),
            self._manifest("a", "smoke", 4.0),
        )
        assert trends["against_run_id"] == "a"
        assert trends["against_mode"] == "smoke"
        assert trends["comparable"] is True
        row = trends["benches"]["kernels"]["metrics"]["headline"]
        assert row == {
            "current": 4.0,
            "previous": 4.0,
            "delta": 0.0,
            "ratio": 1.0,
        }

    def test_mode_mismatch_is_flagged_not_hidden(self):
        trends = manifest_trends(
            self._manifest("b", "smoke", 4.0),
            self._manifest("a", "full", 5.0),
        )
        assert trends["comparable"] is False
        row = trends["benches"]["kernels"]["metrics"]["headline"]
        assert row["delta"] == -1.0
        assert row["ratio"] == 0.8

    def test_one_sided_metrics_are_listed_not_dropped(self):
        cur = {
            "run_id": "b",
            "mode": "smoke",
            "benches": {
                "serve": {"metrics": {"warm_cache_speedup": 30.0}}
            },
        }
        prev = {
            "run_id": "a",
            "mode": "smoke",
            "benches": {
                "serve": {"metrics": {"speedup[clients=16]": 3.0}}
            },
        }
        trends = manifest_trends(cur, prev)
        block = trends["benches"]["serve"]
        assert block["metrics"] == {}
        assert block["only_current"] == ["warm_cache_speedup"]
        assert block["only_previous"] == ["speedup[clients=16]"]

"""Perf-smoke guard for the blocked join engine.

A deliberately generous wall-clock budget (the indexed join on 5k
targets typically finishes in well under a second) so genuine
regressions — e.g. the index silently degenerating to a full scan per
query, or the batched kernel falling back to scalar work — surface in
tier-1 runs without flakiness on slow machines.  Deselect with
``-m 'not slow'``.
"""

from __future__ import annotations

import random
import time

import pytest
from repro.utils.fuzz import random_edits, random_unicode_string

from repro.index import IndexedJoiner

_TARGET_ROWS = 5000
_QUERIES = 40
_BUDGET_SECONDS = 15.0


@pytest.mark.slow
def test_indexed_join_on_5k_targets_stays_within_budget():
    rng = random.Random(1234)
    targets = [
        random_unicode_string(rng, max_length=18, min_length=6)
        for _ in range(_TARGET_ROWS)
    ]
    queries = [
        random_edits(rng, rng.choice(targets), rng.randint(0, 3))
        for _ in range(_QUERIES)
    ]
    joiner = IndexedJoiner()
    started = time.perf_counter()
    for query in queries:
        matched, distance = joiner.match(query, targets)
        assert matched is not None
        assert distance <= 3 + 18  # sanity, not the point of the guard
    elapsed = time.perf_counter() - started
    assert elapsed < _BUDGET_SECONDS, (
        f"indexed join took {elapsed:.2f}s for {_QUERIES} queries over "
        f"{_TARGET_ROWS} targets (budget {_BUDGET_SECONDS}s)"
    )

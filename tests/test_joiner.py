"""Tests for the edit-distance joiner (Eq. 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join_config import JoinConfig
from repro.core.joiner import EditDistanceJoiner
from repro.exceptions import JoinError
from repro.text.edit_distance import edit_distance
from repro.types import Prediction

short = st.text(alphabet="abcdef01", min_size=1, max_size=10)


class TestMatch:
    def test_exact_match(self):
        joiner = EditDistanceJoiner()
        value, distance = joiner.match("abc", ["xyz", "abc", "abd"])
        assert value == "abc"
        assert distance == 0

    def test_closest_match_wins(self):
        joiner = EditDistanceJoiner()
        value, distance = joiner.match("jchretien", ["jtrudeau", "jchretein", "kcampbell"])
        assert value == "jchretein"
        assert distance == 2

    def test_empty_prediction_unmatched(self):
        joiner = EditDistanceJoiner()
        assert joiner.match("", ["a"]) == (None, 0)

    def test_empty_target_column_rejected(self):
        with pytest.raises(JoinError):
            EditDistanceJoiner().match("abc", [])

    def test_max_distance_rejects_far_matches(self):
        joiner = EditDistanceJoiner(JoinConfig(max_distance=1))
        value, distance = joiner.match("aaaa", ["zzzz"])
        assert value is None
        assert distance == 4

    def test_normalized_threshold(self):
        joiner = EditDistanceJoiner(JoinConfig(normalized_threshold=0.25))
        value, _ = joiner.match("abcd", ["abce"])  # distance 1/4 = 0.25: kept
        assert value == "abce"
        value, _ = joiner.match("abcd", ["abzz"])  # 2/4 = 0.5: rejected
        assert value is None

    def test_tie_prefers_earlier_target(self):
        joiner = EditDistanceJoiner()
        value, _ = joiner.match("ab", ["ac", "ad"])
        assert value == "ac"

    def test_tie_break_deterministic_after_sentinel_simplification(self):
        # Regression for the removed "cannot happen" re-scan branch: the
        # sentinel always loses to the first candidate, so a column of
        # equidistant targets must deterministically yield row 0, and a
        # single far-away target must still be returned with its true
        # distance.
        joiner = EditDistanceJoiner()
        assert joiner.match("x", ["ax", "bx", "cx", "dx"]) == ("ax", 1)
        assert joiner.match("x", ["dx", "cx", "bx", "ax"]) == ("dx", 1)
        assert joiner.match("abc", ["zzzzzz"]) == ("zzzzzz", 6)
        # Duplicates of the winner do not perturb the choice.
        assert joiner.match("x", ["ax", "ax", "bx"]) == ("ax", 1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EditDistanceJoiner(JoinConfig(max_distance=-1))
        with pytest.raises(ValueError):
            EditDistanceJoiner(JoinConfig(normalized_threshold=-0.5))

    @given(short, st.lists(short, min_size=1, max_size=8))
    @settings(max_examples=150)
    def test_agrees_with_bruteforce_argmin(self, predicted, targets):
        joiner = EditDistanceJoiner()
        value, distance = joiner.match(predicted, targets)
        best = min(edit_distance(predicted, t) for t in targets)
        assert distance == best
        assert edit_distance(predicted, value) == best


class TestMatchMany:
    def test_bounds_filtering(self):
        joiner = EditDistanceJoiner()
        matches = joiner.match_many("abc", ["abc", "abd", "azz"], lower=0, upper=1)
        assert [m[0] for m in matches] == ["abc", "abd"]

    def test_lower_bound_excludes_exact(self):
        joiner = EditDistanceJoiner()
        matches = joiner.match_many("abc", ["abc", "abd"], lower=1, upper=1)
        assert [m[0] for m in matches] == ["abd"]

    def test_sorted_by_distance(self):
        joiner = EditDistanceJoiner()
        matches = joiner.match_many("abc", ["abz", "abc"], lower=0, upper=2)
        distances = [d for _, d in matches]
        assert distances == sorted(distances)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            EditDistanceJoiner().match_many("a", ["b"], lower=2, upper=1)

    def test_empty_prediction(self):
        assert EditDistanceJoiner().match_many("", ["a"], 0, 3) == []


class TestJoin:
    def test_join_builds_results(self):
        joiner = EditDistanceJoiner()
        predictions = [
            Prediction(source="s1", value="aaa"),
            Prediction(source="s2", value=""),
        ]
        results = joiner.join(predictions, ["aaa", "bbb"], expected=["aaa", "bbb"])
        assert results[0].correct
        assert results[1].matched is None
        assert not results[1].correct

    def test_join_expected_misaligned(self):
        joiner = EditDistanceJoiner()
        with pytest.raises(JoinError):
            joiner.join([Prediction(source="s", value="v")], ["t"], expected=[])

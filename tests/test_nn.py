"""Tests for the numpy deep-learning stack: layers, attention, loss,
optimizers, serialization — including finite-difference gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, ShapeError
from repro.nn import (
    Adam,
    Dense,
    Embedding,
    LayerNorm,
    MultiHeadAttention,
    Parameter,
    SGD,
    clip_gradients,
    load_weights,
    masked_cross_entropy,
    save_weights,
)
from repro.nn.functional import gelu, gelu_backward, softmax, softmax_backward
from repro.nn.parameter import Module
from repro.nn.transformer import Seq2SeqTransformer


def _numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestFunctional:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(3, 5)))
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_stability(self):
        probs = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(probs).all()

    def test_softmax_backward_matches_numeric(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4,))
        upstream = rng.normal(size=(4,))

        def scalar() -> float:
            return float((softmax(x) * upstream).sum())

        analytic = softmax_backward(softmax(x), upstream)
        numeric = _numeric_gradient(scalar, x)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_gelu_backward_matches_numeric(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6,))
        upstream = rng.normal(size=(6,))

        def scalar() -> float:
            return float((gelu(x) * upstream).sum())

        analytic = gelu_backward(x, upstream)
        numeric = _numeric_gradient(scalar, x)
        assert np.allclose(analytic, numeric, atol=1e-6)


class TestParameter:
    def test_accumulate_shape_checked(self):
        parameter = Parameter(np.zeros((2, 2)), name="p")
        with pytest.raises(ShapeError):
            parameter.accumulate(np.zeros(3))

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(2))
        parameter.accumulate(np.ones(2))
        parameter.zero_grad()
        assert (parameter.grad == 0).all()

    def test_module_collects_nested_parameters(self):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter(np.zeros(1))

        class Outer(Module):
            def __init__(self):
                self.blocks = [Inner(), Inner()]
                self.bias = Parameter(np.zeros(2))

        outer = Outer()
        params = outer.parameters()
        assert len(params) == 3
        names = {p.name for p in params}
        assert "blocks.0.w" in names and "bias" in names

    def test_n_parameters(self):
        class M(Module):
            def __init__(self):
                self.w = Parameter(np.zeros((3, 4)))

        assert M().n_parameters == 12


class TestDense:
    def test_forward_shape(self):
        dense = Dense(4, 6, np.random.default_rng(0))
        out = dense.forward(np.zeros((2, 3, 4)))
        assert out.shape == (2, 3, 6)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(3)
        dense = Dense(3, 2, rng)
        x = rng.normal(size=(2, 3))
        upstream = rng.normal(size=(2, 2))

        def scalar() -> float:
            return float((dense.forward(x) * upstream).sum())

        scalar()
        dense.weight.zero_grad()
        dense.bias.zero_grad()
        dx = dense.backward(upstream)
        assert np.allclose(
            dense.weight.grad, _numeric_gradient(scalar, dense.weight.value), atol=1e-6
        )
        assert np.allclose(
            dense.bias.grad, _numeric_gradient(scalar, dense.bias.value), atol=1e-6
        )
        assert np.allclose(dx, _numeric_gradient(scalar, x), atol=1e-6)


class TestEmbedding:
    def test_lookup(self):
        embedding = Embedding(10, 4, np.random.default_rng(0))
        out = embedding.forward(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], embedding.table.value[1])

    def test_scatter_add_gradient(self):
        embedding = Embedding(5, 2, np.random.default_rng(1))
        ids = np.array([[0, 0, 1]])
        embedding.forward(ids)
        embedding.backward(np.ones((1, 3, 2)))
        # Token 0 used twice: accumulates gradient 2, token 1 once.
        assert np.allclose(embedding.table.grad[0], 2.0)
        assert np.allclose(embedding.table.grad[1], 1.0)
        assert np.allclose(embedding.table.grad[2], 0.0)


class TestLayerNorm:
    def test_output_is_normalized(self):
        norm = LayerNorm(8)
        out = norm.forward(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8)))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(4)
        norm = LayerNorm(5)
        x = rng.normal(size=(2, 5))
        upstream = rng.normal(size=(2, 5))

        def scalar() -> float:
            return float((norm.forward(x) * upstream).sum())

        scalar()
        norm.gain.zero_grad()
        norm.shift.zero_grad()
        dx = norm.backward(upstream)
        assert np.allclose(dx, _numeric_gradient(scalar, x), atol=1e-5)
        assert np.allclose(
            norm.gain.grad, _numeric_gradient(scalar, norm.gain.value), atol=1e-5
        )


class TestAttention:
    def test_dim_must_divide(self):
        with pytest.raises(ModelError):
            MultiHeadAttention(10, 3, np.random.default_rng(0))

    def test_self_attention_shapes(self):
        attention = MultiHeadAttention(8, 2, np.random.default_rng(0))
        out = attention.forward(np.random.default_rng(1).normal(size=(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_causal_mask_blocks_future(self):
        rng = np.random.default_rng(2)
        attention = MultiHeadAttention(8, 2, rng, causal=True)
        x = rng.normal(size=(1, 4, 8))
        base = attention.forward(x)
        # Changing a future position must not affect earlier outputs.
        x2 = x.copy()
        x2[0, 3] += 10.0
        out2 = attention.forward(x2)
        assert np.allclose(base[0, :3], out2[0, :3])

    def test_key_mask_excludes_padding(self):
        rng = np.random.default_rng(3)
        attention = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 3, 8))
        mask = np.array([[1.0, 1.0, 0.0]])
        out = attention.forward(x, key_mask=mask)
        x2 = x.copy()
        x2[0, 2] += 100.0
        out2 = attention.forward(x2, key_mask=mask)
        # Padding token's content must not leak into outputs of tokens 0-1.
        assert np.allclose(out[0, :2], out2[0, :2])

    def test_cross_attention_gradients_numeric(self):
        rng = np.random.default_rng(5)
        attention = MultiHeadAttention(4, 2, rng)
        q = rng.normal(size=(1, 2, 4))
        kv = rng.normal(size=(1, 3, 4))
        upstream = rng.normal(size=(1, 2, 4))

        def scalar() -> float:
            return float((attention.forward(q, keys_values=kv) * upstream).sum())

        scalar()
        for p in attention.parameters():
            p.zero_grad()
        dq, dkv = attention.backward(upstream)
        assert np.allclose(dq, _numeric_gradient(scalar, q), atol=1e-6)
        assert np.allclose(dkv, _numeric_gradient(scalar, kv), atol=1e-6)


class TestLoss:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 2, 3), -20.0)
        logits[0, 0, 1] = 20.0
        logits[0, 1, 2] = 20.0
        loss, grad = masked_cross_entropy(logits, np.array([[1, 2]]))
        assert loss < 1e-6
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_mask_excludes_positions(self):
        logits = np.zeros((1, 2, 3))
        targets = np.array([[0, 1]])
        full, _ = masked_cross_entropy(logits, targets)
        masked, _ = masked_cross_entropy(
            logits, targets, mask=np.array([[1.0, 0.0]])
        )
        assert full == pytest.approx(masked)  # uniform logits: same per-pos loss

    def test_all_masked(self):
        loss, grad = masked_cross_entropy(
            np.zeros((1, 1, 2)), np.array([[0]]), np.zeros((1, 1))
        )
        assert loss == 0.0
        assert (grad == 0).all()

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            masked_cross_entropy(np.zeros((1, 2, 3)), np.zeros((1, 3), dtype=int))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=(1, 2, 4))
        targets = np.array([[1, 3]])

        def scalar() -> float:
            return masked_cross_entropy(logits, targets)[0]

        _, grad = masked_cross_entropy(logits, targets)
        assert np.allclose(grad, _numeric_gradient(scalar, logits), atol=1e-6)


class TestOptimizers:
    def _quadratic_parameter(self) -> Parameter:
        return Parameter(np.array([4.0, -3.0]), name="x")

    def test_sgd_minimizes_quadratic(self):
        parameter = self._quadratic_parameter()
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            parameter.accumulate(2 * parameter.value)
            optimizer.step()
        assert np.allclose(parameter.value, 0.0, atol=1e-4)

    def test_sgd_momentum(self):
        parameter = self._quadratic_parameter()
        optimizer = SGD([parameter], learning_rate=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            parameter.accumulate(2 * parameter.value)
            optimizer.step()
        assert np.allclose(parameter.value, 0.0, atol=1e-3)

    def test_adam_minimizes_quadratic(self):
        parameter = self._quadratic_parameter()
        optimizer = Adam([parameter], learning_rate=0.3)
        for _ in range(300):
            optimizer.zero_grad()
            parameter.accumulate(2 * parameter.value)
            optimizer.step()
        assert np.allclose(parameter.value, 0.0, atol=1e-3)

    def test_clip_gradients(self):
        parameter = Parameter(np.zeros(4))
        parameter.accumulate(np.full(4, 10.0))
        norm = clip_gradients([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_clip_noop_under_norm(self):
        parameter = Parameter(np.zeros(2))
        parameter.accumulate(np.array([0.3, 0.4]))
        clip_gradients([parameter], max_norm=1.0)
        assert np.allclose(parameter.grad, [0.3, 0.4])


class TestTransformerEndToEnd:
    def test_full_gradient_check(self):
        model = Seq2SeqTransformer(
            vocab_size=12, dim=8, n_heads=2, encoder_layers=1,
            decoder_layers=1, ffn_hidden=16, max_length=8, seed=0,
        )
        rng = np.random.default_rng(7)
        inputs = rng.integers(0, 12, size=(2, 4))
        targets_in = rng.integers(0, 12, size=(2, 3))
        labels = rng.integers(0, 12, size=(2, 3))

        def scalar() -> float:
            logits = model.forward(inputs, targets_in)
            loss, _ = masked_cross_entropy(logits, labels)
            return loss

        logits = model.forward(inputs, targets_in)
        _, grad_logits = masked_cross_entropy(logits, labels)
        model.zero_grad()
        model.backward(grad_logits)
        # Spot-check a handful of parameters against finite differences.
        params = model.parameters()
        for index in (0, len(params) // 2, len(params) - 1):
            parameter = params[index]
            numeric = _numeric_gradient(scalar, parameter.value, eps=1e-5)
            assert np.allclose(parameter.grad, numeric, atol=1e-4), parameter.name

    def test_length_guard(self):
        model = Seq2SeqTransformer(vocab_size=8, max_length=4)
        with pytest.raises(ModelError):
            model.encode(np.zeros((1, 5), dtype=int))

    def test_unbalanced_requirement_is_constructible(self):
        model = Seq2SeqTransformer(
            vocab_size=8, encoder_layers=3, decoder_layers=1
        )
        assert len(model.encoder_blocks) == 3
        assert len(model.decoder_blocks) == 1


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = Seq2SeqTransformer(vocab_size=8, dim=8, n_heads=2, max_length=8)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        clone = Seq2SeqTransformer(vocab_size=8, dim=8, n_heads=2, max_length=8, seed=99)
        load_weights(clone, path)
        for a, b in zip(model.parameters(), clone.parameters()):
            assert np.array_equal(a.value, b.value)

    def test_load_shape_mismatch(self, tmp_path):
        model = Seq2SeqTransformer(vocab_size=8, dim=8, n_heads=2, max_length=8)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = Seq2SeqTransformer(vocab_size=8, dim=16, n_heads=2, max_length=8)
        with pytest.raises(ModelError):
            load_weights(other, path)

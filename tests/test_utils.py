"""Tests for seeded randomness and timing utilities."""

from __future__ import annotations

import time

from repro.utils.rng import derive_rng, derive_seed, stable_hash
from repro.utils.timing import Stopwatch


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_distinct_inputs_differ(self):
        assert stable_hash("hello") != stable_hash("hellp")

    def test_unicode(self):
        assert isinstance(stable_hash("héllo→"), int)


class TestDeriveSeed:
    def test_same_keys_same_seed(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_keys_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_within_numpy_range(self):
        for key in range(50):
            assert 0 <= derive_seed(123, key) < 2**31


class TestDeriveRng:
    def test_reproducible_streams(self):
        a = derive_rng(5, "x").random(4)
        b = derive_rng(5, "x").random(4)
        assert (a == b).all()

    def test_independent_streams(self):
        a = derive_rng(5, "x").random(4)
        b = derive_rng(5, "y").random(4)
        assert (a != b).any()


class TestStopwatch:
    def test_lap_accumulates(self):
        watch = Stopwatch()
        with watch.lap("work"):
            time.sleep(0.01)
        with watch.lap("work"):
            time.sleep(0.01)
        assert watch.laps["work"] >= 0.02
        assert watch.total == watch.laps["work"]

    def test_multiple_names(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("b"):
            pass
        assert set(watch.laps) == {"a", "b"}

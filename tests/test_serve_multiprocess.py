"""Tests for the multi-process, multi-pipeline serving tier.

Covers the PR-9 contract end to end: byte-equivalence between the
worker-pool router and the single-process path at every worker count ×
client count, worker crash containment (structured failure + respawn),
per-route cache isolation, join-result cache hit/expiry semantics, and
the new HTTP surface (``/v1/models``, ``model`` selectors, the
``worker_crashed``/``unknown_model`` error codes, labeled metrics).
"""

from __future__ import annotations

import functools
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import UnknownModelError, WorkerCrashedError
from repro.obs.metrics import merge_labeled_snapshots
from repro.serve.cache import JoinResultCache
from repro.serve.http import start_http_server
from repro.serve.router import RouteSpec, ServiceRouter, build_pipeline
from repro.serve.service import TransformService
from repro.types import ExamplePair

_EXAMPLES = (
    ExamplePair("Justin Trudeau", "jtrudeau"),
    ExamplePair("Stephen Harper", "sharper"),
    ExamplePair("Paul Martin", "pmartin"),
)
_TARGETS = ("jchretien", "kcampbell", "bmulroney", "jturner")

_FAST = {"max_wait_ms": 1.0}


def _route(name: str = "pretrained", seed: int = 0) -> RouteSpec:
    return RouteSpec(
        name,
        functools.partial(build_pipeline, model="pretrained", seed=seed),
    )


def _sources(tag: str, count: int) -> list[str]:
    return [f"{tag} Chretien-{i}" for i in range(count)]


def _concurrent_transforms(
    router, sources: list[str], clients: int
) -> list:
    results: list = [None] * len(sources)

    def one(i: int) -> None:
        results[i] = router.transform([sources[i]], _EXAMPLES)

    with ThreadPoolExecutor(max_workers=clients) as pool:
        for future in [pool.submit(one, i) for i in range(len(sources))]:
            future.result()
    return results


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def reference():
    """Single-process reference outputs for the shared request sets."""
    service = TransformService(build_pipeline(), **_FAST)
    out = {
        "transforms": {},
        "join": service.join(
            _sources("ref", 4), _TARGETS, _EXAMPLES
        ),
        "topk": service.join(
            _sources("ref", 4), _TARGETS, _EXAMPLES, mode="topk", k=2
        ),
        "reverse": service.join(
            _sources("ref", 4), _TARGETS, _EXAMPLES, mode="reverse"
        ),
    }
    for clients in (1, 4, 16):
        sources = _sources(f"c{clients}", 12)
        out["transforms"][clients] = [
            service.transform([value], _EXAMPLES) for value in sources
        ]
    service.close()
    return out


class TestWorkerPoolEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_byte_equivalence_across_workers_and_clients(
        self, n_workers, reference
    ):
        router = ServiceRouter(
            [_route()], n_workers=n_workers, service_kwargs=_FAST
        )
        try:
            for clients in (1, 4, 16):
                sources = _sources(f"c{clients}", 12)
                results = _concurrent_transforms(router, sources, clients)
                assert results == reference["transforms"][clients], (
                    f"diverged at workers={n_workers} clients={clients}"
                )
            # Joins cross the same pipe; all three modes must match.
            sources = _sources("ref", 4)
            assert (
                router.join(sources, _TARGETS, _EXAMPLES)
                == reference["join"]
            )
            assert (
                router.join(
                    sources, _TARGETS, _EXAMPLES, mode="topk", k=2
                )
                == reference["topk"]
            )
            assert (
                router.join(sources, _TARGETS, _EXAMPLES, mode="reverse")
                == reference["reverse"]
            )
        finally:
            router.close()

    def test_closed_router_reports_closed(self):
        router = ServiceRouter(
            [_route()], n_workers=1, service_kwargs=_FAST
        )
        assert not router.closed
        router.close()
        assert router.closed


class TestWorkerCrash:
    def test_inflight_requests_fail_with_worker_crashed(self):
        router = ServiceRouter(
            [_route()], n_workers=1, service_kwargs=_FAST
        )
        try:
            pool = router._pool
            future = pool.submit(
                "transform",
                ("pretrained", tuple(_sources("crash", 8)), _EXAMPLES, None),
            )
            pool.workers[0].process.kill()
            with pytest.raises(WorkerCrashedError):
                future.result(30)
        finally:
            router.close()

    def test_pool_respawns_after_crash(self, reference):
        router = ServiceRouter(
            [_route()], n_workers=1, service_kwargs=_FAST
        )
        try:
            pool = router._pool
            sources = _sources("c1", 12)
            assert router.transform([sources[0]], _EXAMPLES) == (
                reference["transforms"][1][0]
            )
            victim = pool.workers[0]
            victim.process.kill()
            victim.process.join()
            # Dispatch respawns before placing work; the replacement
            # rebuilds the identical pipeline from the factory.
            assert router.transform([sources[1]], _EXAMPLES) == (
                reference["transforms"][1][1]
            )
            assert pool.restarts == 1
            assert router.stats()["workers"]["restarts"] == 1
        finally:
            router.close()


class TestRouting:
    def test_resolve_by_name_fingerprint_and_prefix(self):
        router = ServiceRouter(
            [_route("a", seed=0), _route("b", seed=1)],
            service_kwargs=_FAST,
        )
        try:
            models = {m["name"]: m for m in router.models()}
            fp_a = models["a"]["fingerprint"]
            assert models["a"]["default"] is True
            assert router.resolve(None) == "a"
            assert router.resolve("b") == "b"
            assert router.resolve(fp_a) == "a"
            assert router.resolve(fp_a[:12]) == "a"
            with pytest.raises(UnknownModelError):
                router.resolve("nonexistent")
            with pytest.raises(UnknownModelError):
                # Too short for prefix matching.
                router.resolve(fp_a[:4])
        finally:
            router.close()

    def test_distinct_fingerprints_per_route(self):
        router = ServiceRouter(
            [_route("a", seed=0), _route("b", seed=1)],
            service_kwargs=_FAST,
        )
        try:
            fps = [m["fingerprint"] for m in router.models()]
            assert len(set(fps)) == 2
        finally:
            router.close()

    def test_per_route_cache_isolation_inprocess(self):
        router = ServiceRouter(
            [_route("a", seed=0), _route("b", seed=1)],
            service_kwargs=_FAST,
        )
        try:
            sources = ["Jean Chretien"]
            first = router.transform(sources, _EXAMPLES, model="a")
            again = router.transform(sources, _EXAMPLES, model="a")
            assert first == again
            other = router.transform(sources, _EXAMPLES, model="b")
            stats = router.stats()["routes"]
            # Route a served its repeat from its own cache; route b's
            # identical request was a miss in b's cache — a's entries
            # never leak across the route boundary.
            assert stats["a"]["stats"]["cache_hits"] >= 1
            assert stats["b"]["stats"]["cache_hits"] == 0
            assert stats["b"]["stats"]["cache_misses"] >= 1
            assert other is not None
        finally:
            router.close()

    def test_per_route_cache_isolation_worker_pool(self):
        router = ServiceRouter(
            [_route("a", seed=0), _route("b", seed=1)],
            n_workers=1,
            service_kwargs=_FAST,
        )
        try:
            sources = ["Jean Chretien"]
            first = router.transform(sources, _EXAMPLES, model="a")
            # The repeat is a parent-side hit: the worker never sees it.
            again = router.transform(sources, _EXAMPLES, model="a")
            assert first == again
            router.transform(sources, _EXAMPLES, model="b")
            caches = router.stats()["router_caches"]
            assert caches["a"]["transform"]["hits"] == 1
            assert caches["b"]["transform"]["hits"] == 0
            assert caches["b"]["transform"]["misses"] == 1
            per_route = router.stats()["routes"]
            assert per_route["a"]["stats"]["requests"] == 1
            assert per_route["b"]["stats"]["requests"] == 1
        finally:
            router.close()


class TestJoinResultCache:
    def test_join_cache_hit_skips_engine_and_joiner(self):
        service = TransformService(build_pipeline(), **_FAST)
        try:
            sources = ["Jean Chretien", "Kim Campbell"]
            first = service.join(sources, _TARGETS, _EXAMPLES)
            cold = service.stats()
            second = service.join(sources, _TARGETS, _EXAMPLES)
            warm = service.stats()
            assert [r.to_dict() for r in second] == [
                r.to_dict() for r in first
            ]
            assert warm.join_cache_hits == cold.join_cache_hits + 1
            # A hit never touches the engine or the joiner.
            assert warm.engine_prompts == cold.engine_prompts
            assert warm.joined_rows == cold.joined_rows
        finally:
            service.close()

    def test_join_cache_keys_cover_query_surface(self):
        service = TransformService(build_pipeline(), **_FAST)
        try:
            sources = ["Jean Chretien"]
            service.join(sources, _TARGETS, _EXAMPLES, mode="topk", k=2)
            # Same request except k: must miss, not reuse k=2's entry.
            service.join(sources, _TARGETS, _EXAMPLES, mode="topk", k=3)
            stats = service.stats()
            assert stats.join_cache_hits == 0
            assert stats.join_cache_misses == 2
        finally:
            service.close()

    def test_join_cache_ttl_expiry(self):
        clock = FakeClock()
        cache = JoinResultCache(ttl_seconds=60.0, clock=clock)
        service = TransformService(
            build_pipeline(), join_cache=cache, **_FAST
        )
        try:
            sources = ["Jean Chretien"]
            first = service.join(sources, _TARGETS, _EXAMPLES)
            clock.advance(30.0)
            assert [
                r.to_dict()
                for r in service.join(sources, _TARGETS, _EXAMPLES)
            ] == [r.to_dict() for r in first]
            assert service.stats().join_cache_hits == 1
            clock.advance(61.0)
            recomputed = service.join(sources, _TARGETS, _EXAMPLES)
            stats = service.stats()
            assert stats.join_cache_hits == 1
            assert cache.expirations >= 1
            assert [r.to_dict() for r in recomputed] == [
                r.to_dict() for r in first
            ]
        finally:
            service.close()

    def test_reverse_mode_cached_groups_are_fresh_lists(self):
        service = TransformService(build_pipeline(), **_FAST)
        try:
            sources = ["Jean Chretien", "Kim Campbell"]
            first = service.join(
                sources, _TARGETS, _EXAMPLES, mode="reverse"
            )
            first[0].append(999)  # caller mutates its copy
            second = service.join(
                sources, _TARGETS, _EXAMPLES, mode="reverse"
            )
            assert 999 not in second[0]
            assert service.stats().join_cache_hits == 1
        finally:
            service.close()


class TestHttpMultiRoute:
    @pytest.fixture()
    def server(self):
        router = ServiceRouter(
            [_route("a", seed=0), _route("b", seed=1)],
            service_kwargs=_FAST,
        )
        server = start_http_server(router)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", router
        server.shutdown()
        server.server_close()
        router.close()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.load(response)

    @staticmethod
    def _get(base: str, path: str) -> dict:
        with urllib.request.urlopen(base + path) as response:
            return json.load(response)

    def test_models_listing(self, server):
        base, _ = server
        body = self._get(base, "/v1/models")
        assert body["schema_version"] == 1
        assert body["n_workers"] == 0
        names = [m["name"] for m in body["models"]]
        assert names == ["a", "b"]
        assert body["models"][0]["default"] is True
        assert all(len(m["fingerprint"]) == 64 for m in body["models"])

    def test_model_selector_query_and_body(self, server):
        base, router = server
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        payload = {"sources": ["Jean Chretien"], "examples": examples}
        via_query = self._post(base, "/v1/transform?model=b", payload)
        via_body = self._post(
            base, "/v1/transform", {**payload, "model": "b"}
        )
        assert via_query == via_body
        # And a fingerprint selector resolves like the name.
        fp = router.models()[1]["fingerprint"]
        via_fp = self._post(base, f"/v1/transform?model={fp}", payload)
        assert via_fp == via_query

    def test_unknown_model_is_structured_404(self, server):
        base, _ = server
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(
                base,
                "/v1/transform?model=nope",
                {"sources": ["x"], "examples": examples},
            )
        assert info.value.code == 404
        body = json.load(info.value)
        assert body["error"]["code"] == "unknown_model"

    def test_conflicting_selectors_are_rejected(self, server):
        base, _ = server
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(
                base,
                "/v1/transform?model=a",
                {"sources": ["x"], "examples": examples, "model": "b"},
            )
        assert info.value.code == 400
        assert json.load(info.value)["error"]["field"] == "model"

    def test_worker_crash_maps_to_structured_503(self, server):
        base, router = server
        examples = [pair.as_tuple() for pair in _EXAMPLES]

        def crash(*args, **kwargs):
            raise WorkerCrashedError("worker 0 died with this in flight")

        original = router.transform
        router.transform = crash
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                self._post(
                    base,
                    "/v1/transform",
                    {"sources": ["x"], "examples": examples},
                )
        finally:
            router.transform = original
        assert info.value.code == 503
        assert json.load(info.value)["error"]["code"] == "worker_crashed"

    def test_stats_carries_routes_and_workers_blocks(self, server):
        base, _ = server
        body = self._get(base, "/v1/stats")
        assert body["workers"]["n_workers"] == 0
        assert set(body["routes"]) == {"a", "b"}
        assert "requests" in body  # compat: flat ServeStats fields

    def test_multi_route_metrics_are_labeled(self, server):
        base, _ = server
        with urllib.request.urlopen(base + "/metrics") as response:
            text = response.read().decode()
        assert 'serve_requests_total{route="a"}' in text
        assert 'serve_requests_total{route="b"}' in text


class TestLabeledSnapshots:
    def test_counter_gauge_histogram_rendering(self):
        snapshot = {
            "x_total": 3,
            "depth": 1.5,
            "lat_seconds": {
                "buckets": [{"le": 0.1, "count": 2}],
                "count": 3,
                "sum": 0.4,
                "mean": 0.1333,
            },
        }
        text = merge_labeled_snapshots(
            [
                ({"worker": "0", "route": "a"}, snapshot),
                ({"worker": "1", "route": "a"}, snapshot),
            ]
        )
        assert "# TYPE x_total counter" in text
        assert 'x_total{worker="0",route="a"} 3' in text
        assert 'x_total{worker="1",route="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert 'depth{worker="1",route="a"} 1.5' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{worker="0",route="a",le="0.1"} 2' in text
        assert 'lat_seconds_bucket{worker="0",route="a",le="+Inf"} 3' in text
        assert 'lat_seconds_sum{worker="0",route="a"} 0.4' in text
        assert 'lat_seconds_count{worker="1",route="a"} 3' in text
        # One TYPE line per metric, not per label set.
        assert text.count("# TYPE x_total counter") == 1

    def test_label_values_are_escaped(self):
        text = merge_labeled_snapshots(
            [({"route": 'we"ird\\name'}, {"x_total": 1})]
        )
        assert 'route="we\\"ird\\\\name"' in text

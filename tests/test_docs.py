"""The docs link-and-freshness gate (``scripts/check_docs.py``).

Tier-1 runs the same functions the CI step runs, in two directions:
the committed docs must be clean, and each checker must actually fire
on a deliberately rotten fixture — a gate that cannot fail guards
nothing.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)


class TestCommittedDocsAreClean:
    def test_run_all_reports_nothing(self):
        assert check_docs.run_all() == []

    def test_cli_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_doc_set_is_the_site_plus_readme(self):
        names = [f.name for f in check_docs.collect_doc_files()]
        assert "README.md" in names
        for page in check_docs.REQUIRED_PAGES:
            assert page in names


class TestBrokenDocsAreCaught:
    """Each checker must fire on a deliberately rotten repo fixture."""

    @pytest.fixture()
    def fake_repo(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "# fake\n[ok](docs/architecture.md) mentions BENCH_real.json\n"
        )
        (tmp_path / "docs" / "architecture.md").write_text(
            "# Architecture\n\n## Real heading\n"
        )
        (tmp_path / "docs" / "http_api.md").write_text("# API\n")
        (tmp_path / "docs" / "observability.md").write_text("# Obs\n")
        (tmp_path / "docs" / "operations.md").write_text("# Ops\n")
        (tmp_path / "BENCH_real.json").write_text("{}")
        return tmp_path

    def _links(self, root):
        return check_docs.check_links(
            check_docs.collect_doc_files(root), root
        )

    def test_clean_fixture_passes_link_and_bench_checks(self, fake_repo):
        assert self._links(fake_repo) == []
        assert (
            check_docs.check_bench_coverage(
                check_docs.collect_doc_files(fake_repo), fake_repo
            )
            == []
        )

    def test_dead_link_fails(self, fake_repo):
        (fake_repo / "docs" / "operations.md").write_text(
            "# Ops\n[gone](nonexistent.md)\n"
        )
        problems = self._links(fake_repo)
        assert len(problems) == 1
        assert "dead link nonexistent.md" in problems[0]

    def test_dangling_anchor_fails(self, fake_repo):
        (fake_repo / "README.md").write_text(
            "# fake\n[x](docs/architecture.md#no-such-heading)\n"
            "BENCH_real.json\n"
        )
        problems = self._links(fake_repo)
        assert len(problems) == 1
        assert "no-such-heading" in problems[0] or "heading" in problems[0]

    def test_valid_anchor_passes(self, fake_repo):
        (fake_repo / "README.md").write_text(
            "# fake\n[x](docs/architecture.md#real-heading)\n"
            "BENCH_real.json\n"
        )
        assert self._links(fake_repo) == []

    def test_external_links_are_skipped(self, fake_repo):
        (fake_repo / "README.md").write_text(
            "# fake\n[badge](../../actions/workflows/ci.yml/badge.svg)\n"
            "[web](https://example.com/gone)\nBENCH_real.json\n"
        )
        assert self._links(fake_repo) == []

    def test_unmentioned_bench_artifact_fails(self, fake_repo):
        (fake_repo / "BENCH_orphan.json").write_text("{}")
        problems = check_docs.check_bench_coverage(
            check_docs.collect_doc_files(fake_repo), fake_repo
        )
        assert len(problems) == 1
        assert "BENCH_orphan.json" in problems[0]

    def test_missing_required_page_fails(self, fake_repo):
        (fake_repo / "docs" / "operations.md").unlink()
        problems = check_docs.check_required_pages(fake_repo)
        assert problems == ["docs/operations.md: required page is missing"]

    def test_undocumented_endpoint_fails(self, fake_repo):
        # The fixture's http_api.md mentions no endpoint at all, so
        # every real PUBLIC_ENDPOINTS entry must be reported.
        from repro.serve.http import PUBLIC_ENDPOINTS

        problems = check_docs.check_endpoint_coverage(fake_repo)
        assert len(problems) == len(PUBLIC_ENDPOINTS)
        for endpoint in PUBLIC_ENDPOINTS:
            assert any(endpoint in p for p in problems)


class TestEndpointRegistry:
    def test_every_public_endpoint_documented_with_examples(self):
        from repro.serve.http import PUBLIC_ENDPOINTS

        text = (REPO_ROOT / "docs" / "http_api.md").read_text()
        for endpoint in PUBLIC_ENDPOINTS:
            assert endpoint in text

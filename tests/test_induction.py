"""Tests for the program induction engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.random_text import RandomTextSampler
from repro.surrogate.induction import (
    InductionEngine,
    explain_pair,
    joint_synthesize,
)
from repro.surrogate.programs import (
    IdentityProgram,
    ReplaceProgram,
    ReverseProgram,
    SliceProgram,
)
from repro.transforms.composer import TransformationComposer
from repro.types import ExamplePair


def _pairs(*items: tuple[str, str]) -> list[ExamplePair]:
    return [ExamplePair(s, t) for s, t in items]


class TestSpecializedStrategies:
    def test_identity(self):
        result = InductionEngine().induce(_pairs(("ab", "ab"), ("cd", "cd")))
        assert isinstance(result.program, IdentityProgram)
        assert result.exact

    def test_case_mapping(self):
        result = InductionEngine().induce(_pairs(("AbC", "abc"), ("XyZ", "xyz")))
        assert isinstance(result.program, IdentityProgram)
        assert result.program.case == "lower"

    def test_char_replacement(self):
        result = InductionEngine().induce(
            _pairs(("a/b/c", "a-b-c"), ("x/y", "x-y"))
        )
        assert isinstance(result.program, ReplaceProgram)
        assert result.program.apply("p/q") == "p-q"

    def test_char_deletion_replacement(self):
        result = InductionEngine().induce(
            _pairs(("1,234", "1234"), ("5,6", "56"))
        )
        assert result.exact
        assert result.program.apply("9,87") == "987"

    def test_substring(self):
        result = InductionEngine().induce(
            _pairs(("abcdefgh", "cdef"), ("12345678", "3456"))
        )
        assert isinstance(result.program, SliceProgram)
        assert result.program.apply("qwertyui") == "erty"

    def test_substring_from_end(self):
        result = InductionEngine().induce(
            _pairs(("abcdef", "ef"), ("123", "23"))
        )
        assert result.exact
        assert result.program.apply("wxyz") == "yz"

    def test_reverse(self):
        result = InductionEngine().induce(
            _pairs(("abc", "cba"), ("hello", "olleh"))
        )
        assert isinstance(result.program, ReverseProgram)

    def test_family_gating(self):
        engine = InductionEngine(enabled_families=frozenset({"case"}))
        result = engine.induce(_pairs(("abc", "cba"), ("hello", "olleh")))
        assert not isinstance(result.program, ReverseProgram)


class TestGeneralSynthesis:
    def test_paper_userid_example(self):
        engine = InductionEngine()
        result = engine.induce(
            _pairs(
                ("Justin Trudeau", "jtrudeau"),
                ("Stephen Harper", "sharper"),
            )
        )
        assert result.exact
        assert result.program.apply("Jean Chretien") == "jchretien"
        assert result.program.apply("Kim Campbell") == "kcampbell"

    def test_initial_dot_lastname(self):
        engine = InductionEngine()
        result = engine.induce(
            _pairs(
                ("Jocelyne Thomas", "j.thomas"),
                ("Julie Lauzon", "j.lauzon"),
            )
        )
        assert result.exact
        assert result.program.apply("Max Anderson") == "m.anderson"

    def test_last_comma_first(self):
        engine = InductionEngine()
        result = engine.induce(
            _pairs(
                ("Justin Trudeau", "Trudeau, Justin"),
                ("Paul Martin", "Martin, Paul"),
            )
        )
        assert result.exact
        assert result.program.apply("Kim Campbell") == "Campbell, Kim"

    def test_whole_copy_concatenations(self):
        engine = InductionEngine()
        result = engine.induce(
            _pairs(
                ("Ab-Cd", "ab-cdAB-CD"),
                ("Xy-Zw Q", "xy-zw qXY-ZW Q"),
            )
        )
        assert result.exact
        assert result.program.apply("Mn-Op") == "mn-opMN-OP"

    def test_noisy_context_falls_back_to_partial_support(self):
        engine = InductionEngine()
        result = engine.induce(
            _pairs(
                ("Justin Trudeau", "jtrudeau"),
                ("Stephen Harper", "%%%garbage%%%"),
            )
        )
        assert not result.exact
        assert result.program is not None
        assert result.support == 1

    def test_empty_context(self):
        result = InductionEngine().induce([])
        assert result.program is None

    def test_induces_random_compositions(self):
        """Statistical property: programs induced from two samples of a
        random flat transformation usually reproduce it on a third
        sample.  Two examples can genuinely under-determine the mapping
        (the paper relies on multi-trial aggregation for exactly this
        reason), so the assertion is on the aggregate success rate."""
        composer = TransformationComposer(min_units=1, max_units=3, max_stack_depth=1)
        sampler = RandomTextSampler(min_length=10, max_length=20)
        engine = InductionEngine()
        attempted = 0
        correct = 0
        for seed in range(30):
            rng = np.random.default_rng(seed)
            transformation = composer.sample(rng)
            samples = sampler.sample_many(rng, 3)
            targets = [transformation.apply(s) for s in samples]
            if not all(targets) or len(set(targets)) < 2:
                continue  # degenerate transformation
            result = engine.induce(
                _pairs((samples[0], targets[0]), (samples[1], targets[1]))
            )
            if not result.exact:
                continue
            attempted += 1
            if result.program.apply(samples[2]) == targets[2]:
                correct += 1
        assert attempted >= 10
        # Two examples genuinely under-determine some flat mappings
        # (e.g. split on a delimiter absent from both samples), so the
        # single-context success rate sits around 2/3; the pipeline's
        # 5-trial aggregation is what lifts end-to-end accuracy.
        assert correct / attempted >= 0.6


class TestJointSynthesize:
    def test_consistent_by_construction(self):
        programs = joint_synthesize("abcd", "cd", "wxyz", "yz")
        assert programs
        for program in programs:
            assert program.apply("abcd") == "cd"
            assert program.apply("wxyz") == "yz"

    def test_no_program_for_unrelated_pairs(self):
        programs = joint_synthesize("abc", "XYZ!", "def", "QRS?")
        for program in programs:
            assert program.apply("abc") == "XYZ!"
            assert program.apply("def") == "QRS?"

    def test_cached(self):
        first = joint_synthesize("ab", "b", "cd", "d")
        second = joint_synthesize("ab", "b", "cd", "d")
        assert first is second


class TestExplainPair:
    def test_explains_own_pair(self):
        for program in explain_pair("Justin Trudeau", "jtrudeau"):
            assert program.apply("Justin Trudeau") == "jtrudeau"

    def test_empty_target(self):
        programs = explain_pair("abc", "")
        assert programs[0].apply("xyz") == ""

    def test_cached(self):
        assert explain_pair("a", "a") is explain_pair("a", "a")

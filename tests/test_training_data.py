"""Tests for synthetic training-data generation (§5.1)."""

from __future__ import annotations

import pytest

from repro.core.serializer import PromptSerializer
from repro.datagen.training import TrainingDataGenerator


class TestTrainingDataGenerator:
    def test_grouping_shares_one_transformation(self):
        generator = TrainingDataGenerator(seed=1)
        grouping = generator.generate_grouping(0)
        transformation = grouping.transformation
        for pair in grouping.pairs:
            assert transformation.apply(pair.source) == pair.target

    def test_grouping_pair_count(self):
        generator = TrainingDataGenerator(seed=2, pairs_per_grouping=10)
        assert len(generator.generate_grouping(0).pairs) == 10

    def test_groupings_differ(self):
        generator = TrainingDataGenerator(seed=3)
        a = generator.generate_grouping(0)
        b = generator.generate_grouping(1)
        assert a.transformation.describe() != b.transformation.describe() or (
            a.pairs != b.pairs
        )

    def test_deterministic(self):
        a = TrainingDataGenerator(seed=4).generate_grouping(5)
        b = TrainingDataGenerator(seed=4).generate_grouping(5)
        assert a.pairs == b.pairs

    def test_targets_not_degenerate(self):
        generator = TrainingDataGenerator(seed=5)
        for i in range(5):
            targets = [p.target for p in generator.generate_grouping(i).pairs]
            assert len(set(targets)) > 1

    def test_source_lengths_in_range(self):
        generator = TrainingDataGenerator(seed=6, min_length=8, max_length=35)
        for pair in generator.generate_grouping(0).pairs:
            assert 8 <= len(pair.source) <= 35

    def test_minimum_pairs_enforced(self):
        with pytest.raises(ValueError):
            TrainingDataGenerator(pairs_per_grouping=2)

    def test_instances_are_parseable_prompts(self):
        generator = TrainingDataGenerator(seed=7)
        serializer = PromptSerializer()
        instances = generator.generate_instances(2, subsets_per_grouping=3)
        assert len(instances) == 6
        for instance in instances:
            context, query = serializer.parse(instance.prompt)
            assert len(context) == 2
            assert query

    def test_instance_labels_match_hidden_transformation(self):
        generator = TrainingDataGenerator(seed=8)
        grouping = generator.generate_grouping(0)
        serializer = PromptSerializer()
        for instance in generator.instances_from_grouping(grouping):
            _, query = serializer.parse(instance.prompt)
            assert grouping.transformation.apply(query) == instance.label

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TrainingDataGenerator().generate_groupings(-1)

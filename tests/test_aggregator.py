"""Tests for prediction aggregation (Eq. 3-4, §5.7)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregator import Aggregator, MultiModelAggregator
from repro.text.edit_distance import normalized_edit_distance


def _reference_break_ties(tied: list[str], all_candidates: list[str]) -> str:
    """The pre-memoization O(n²) tie-break, kept as the oracle."""

    def consensus_score(value: str) -> float:
        distances = [
            normalized_edit_distance(value, other)
            for other in all_candidates
            if other != value
        ]
        if not distances:
            return 0.0
        return -sum(distances) / len(distances)

    order = {value: all_candidates.index(value) for value in tied}
    return max(tied, key=lambda v: (consensus_score(v), -order[v]))


class _StaticModel:
    """A SequenceModel returning a fixed answer for every prompt."""

    def __init__(self, answer: str, name: str = "static") -> None:
        self._answer = answer
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def generate(self, prompts):
        return [self._answer for _ in prompts]


class TestAggregator:
    def test_majority_wins(self):
        prediction = Aggregator().aggregate("s", ["a", "b", "a", "a", "c"])
        assert prediction.value == "a"
        assert prediction.votes == 3

    def test_empty_candidates_abstain(self):
        prediction = Aggregator().aggregate("s", [])
        assert prediction.abstained

    def test_all_empty_candidates_abstain(self):
        prediction = Aggregator().aggregate("s", ["", "", ""])
        assert prediction.abstained

    def test_empties_never_beat_content(self):
        prediction = Aggregator().aggregate("s", ["", "", "", "x"])
        assert prediction.value == "x"

    def test_tie_broken_towards_consensus(self):
        # 'abcd' ties with 'zzzz' at 2 votes each, but 'abce' is close
        # to 'abcd', so 'abcd' has the higher consensus.
        candidates = ["abcd", "abcd", "zzzz", "zzzz", "abce"]
        prediction = Aggregator().aggregate("s", candidates)
        assert prediction.value == "abcd"

    def test_deterministic_tie_break(self):
        a = Aggregator().aggregate("s", ["x", "y"])
        b = Aggregator().aggregate("s", ["x", "y"])
        assert a.value == b.value

    def test_candidates_preserved(self):
        prediction = Aggregator().aggregate("s", ["a", "b"])
        assert prediction.candidates == ("a", "b")

    @given(
        st.lists(
            st.sampled_from(["ab", "abc", "abd", "xyz", "xzy", "q"]),
            min_size=2,
            max_size=14,
        )
    )
    @settings(max_examples=150)
    def test_memoized_tie_break_matches_reference(self, candidates):
        # The memoized consensus scoring (pairwise distance cache +
        # first-occurrence map) must pick the same winner as the
        # original repeated-scan implementation on any multiset.
        counts = Counter(candidates)
        best_count = max(counts.values())
        tied = [v for v, c in counts.items() if c == best_count]
        got = Aggregator()._break_ties(tied, candidates)
        assert got == _reference_break_ties(tied, candidates)

    @given(st.lists(st.sampled_from(["a", "b", "c", ""]), min_size=1, max_size=12))
    @settings(max_examples=100)
    def test_winner_has_max_votes(self, candidates):
        prediction = Aggregator().aggregate("s", candidates)
        non_empty = [c for c in candidates if c]
        if not non_empty:
            assert prediction.abstained
        else:
            max_count = max(non_empty.count(v) for v in set(non_empty))
            assert non_empty.count(prediction.value) == max_count


class TestMultiModelAggregator:
    def test_pools_model_outputs(self):
        ensemble = MultiModelAggregator(
            [_StaticModel("a", "m1"), _StaticModel("b", "m2")]
        )
        candidates = ensemble.generate_candidates(["p1", "p2"])
        assert candidates == [["a", "b"], ["a", "b"]]

    def test_name_joins_models(self):
        ensemble = MultiModelAggregator(
            [_StaticModel("a", "m1"), _StaticModel("b", "m2")]
        )
        assert ensemble.name == "m1+m2"

    def test_requires_models(self):
        import pytest

        with pytest.raises(ValueError):
            MultiModelAggregator([])

    def test_consistent_model_dominates_vote(self):
        # Two trials per model via pooled candidates: the self-consistent
        # model's answer should win the aggregate (paper §5.7).
        aggregator = Aggregator()
        pooled = ["same", "same", "same", "noise1", "noise2", "noise3"]
        assert aggregator.aggregate("s", pooled).value == "same"

"""Tests for Levenshtein edit distance, including property-based checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.edit_distance import (
    edit_distance,
    edit_distance_capped,
    normalized_edit_distance,
)

short_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=24
)


class TestEditDistance:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("intention", "execution", 5),
            ("abc", "cba", 2),
            ("Hello", "olleH", 4),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_unicode(self):
        assert edit_distance("café", "cafe") == 1

    @given(short_text, short_text)
    @settings(max_examples=150)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(short_text)
    @settings(max_examples=50)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(short_text, short_text)
    @settings(max_examples=100)
    def test_bounds(self, a, b):
        distance = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=80)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(short_text, short_text, st.characters(min_codepoint=32, max_codepoint=126))
    @settings(max_examples=80)
    def test_single_append_changes_by_at_most_one(self, a, b, ch):
        base = edit_distance(a, b)
        assert abs(edit_distance(a + ch, b) - base) <= 1


class TestEditDistanceCapped:
    @given(short_text, short_text, st.integers(min_value=0, max_value=30))
    @settings(max_examples=200)
    def test_agrees_with_exact_within_cap(self, a, b, cap):
        exact = edit_distance(a, b)
        capped = edit_distance_capped(a, b, cap)
        if exact <= cap:
            assert capped == exact
        else:
            assert capped > cap

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            edit_distance_capped("a", "b", -1)

    def test_early_exit_on_length_gap(self):
        assert edit_distance_capped("a" * 50, "a", 3) == 4


class TestNormalizedEditDistance:
    def test_normalizes_by_target_length(self):
        assert normalized_edit_distance("ab", "abcd") == pytest.approx(0.5)

    def test_empty_target_uses_prediction_length(self):
        assert normalized_edit_distance("abc", "") == pytest.approx(1.0)

    def test_both_empty(self):
        assert normalized_edit_distance("", "") == 0.0

    def test_can_exceed_one(self):
        # Predictions longer than the target can exceed 1.0 (as in the
        # paper's Syn-RV row where ANED approaches 0.85 on average).
        assert normalized_edit_distance("aaaa", "b") == 4.0

"""Tests for the byte-level tokenizer and vocabulary."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TokenizationError
from repro.tokenizer import ByteTokenizer, SpecialTokens, Vocabulary

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=1000), max_size=40
)


class TestVocabulary:
    def test_size(self):
        vocab = Vocabulary()
        assert vocab.size == 5 + 256

    def test_special_ids_are_distinct(self):
        vocab = Vocabulary()
        ids = {vocab.pad_id, vocab.sos_id, vocab.eos_id, vocab.tr_id, vocab.eoe_id}
        assert len(ids) == 5

    def test_byte_id_roundtrip(self):
        vocab = Vocabulary()
        for byte in (0, 65, 255):
            assert vocab.id_to_byte(vocab.byte_id(byte)) == byte

    def test_byte_id_out_of_range(self):
        vocab = Vocabulary()
        with pytest.raises(TokenizationError):
            vocab.byte_id(256)

    def test_unknown_special(self):
        vocab = Vocabulary()
        with pytest.raises(TokenizationError):
            vocab.special_id("<bogus>")

    def test_duplicate_specials_rejected(self):
        with pytest.raises(TokenizationError):
            Vocabulary(SpecialTokens(pad="<x>", sos="<x>"))


class TestByteTokenizer:
    def test_encode_text_offsets_bytes(self, tokenizer):
        ids = tokenizer.encode_text("A")
        assert ids == [tokenizer.vocab.byte_offset + 65]

    def test_markup_becomes_single_ids(self, tokenizer):
        ids = tokenizer.encode("a<tr>b")
        assert ids[1] == tokenizer.vocab.tr_id
        assert len(ids) == 3

    def test_add_sos_eos(self, tokenizer):
        ids = tokenizer.encode("x", add_sos=True, add_eos=True)
        assert ids[0] == tokenizer.vocab.sos_id
        assert ids[-1] == tokenizer.vocab.eos_id

    def test_decode_stops_at_eos_when_stripping(self, tokenizer):
        ids = tokenizer.encode("ab<eos>cd")
        assert tokenizer.decode(ids, strip_special=True) == "ab"

    def test_decode_preserves_markup(self, tokenizer):
        prompt = "<sos>a<tr>b<eoe>c<tr><eos>"
        ids = tokenizer.encode(prompt)
        assert tokenizer.decode(ids, strip_special=False) == prompt

    def test_decode_out_of_range_id(self, tokenizer):
        with pytest.raises(TokenizationError):
            tokenizer.decode([tokenizer.vocab.size])

    @given(printable)
    @settings(max_examples=150)
    def test_roundtrip_arbitrary_text(self, text):
        tokenizer = ByteTokenizer()
        ids = tokenizer.encode_text(text)
        assert tokenizer.decode(ids) == text

    @given(printable)
    @settings(max_examples=60)
    def test_multibyte_utf8_roundtrip(self, text):
        tokenizer = ByteTokenizer()
        decorated = f"é{text}→"
        assert tokenizer.decode(tokenizer.encode_text(decorated)) == decorated

    def test_pad_batch_shapes_and_mask(self, tokenizer):
        ids, mask = tokenizer.pad_batch([[1, 2, 3], [4]])
        assert ids.shape == (2, 3)
        assert mask.tolist() == [[1.0, 1.0, 1.0], [1.0, 0.0, 0.0]]
        assert ids[1, 1] == tokenizer.vocab.pad_id

    def test_pad_batch_max_length_truncates(self, tokenizer):
        ids, mask = tokenizer.pad_batch([[1, 2, 3, 4]], max_length=2)
        assert ids.shape == (1, 2)
        assert mask.sum() == 2

    def test_pad_batch_empty_rejected(self, tokenizer):
        with pytest.raises(TokenizationError):
            tokenizer.pad_batch([])

    def test_pad_batch_dtype(self, tokenizer):
        ids, mask = tokenizer.pad_batch([[1]])
        assert ids.dtype == np.int64
        assert mask.dtype == np.float64

"""Tests for induced-program segments and program semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surrogate.programs import (
    CharSliceSegment,
    ConcatProgram,
    DelimiterPartSegment,
    IdentityProgram,
    LiteralSegment,
    PartSliceSegment,
    ReplaceProgram,
    ReverseProgram,
    SliceProgram,
    TokenPieceSegment,
    apply_case,
    tokens_of,
)

texts = st.text(alphabet="abcDE -_.12", max_size=16)


class TestHelpers:
    def test_tokens_of(self):
        assert tokens_of("Gerard H. Little-3") == ["Gerard", "H", "Little", "3"]

    def test_apply_case(self):
        assert apply_case("aB", "lower") == "ab"
        assert apply_case("aB", "upper") == "AB"
        assert apply_case("aB cd", "title") == "Ab Cd"
        assert apply_case("aB", "none") == "aB"


class TestWholeStringPrograms:
    def test_identity_with_case(self):
        assert IdentityProgram(case="lower").apply("AbC") == "abc"

    def test_replace(self):
        assert ReplaceProgram(old="/", new="-").apply("a/b") == "a-b"

    def test_reverse(self):
        assert ReverseProgram().apply("abc") == "cba"

    @given(texts)
    @settings(max_examples=40)
    def test_reverse_involution(self, text):
        program = ReverseProgram()
        assert program.apply(program.apply(text)) == text

    def test_slice_program_from_end_anchors(self):
        program = SliceProgram(
            start_offset=4,
            start_from_end=True,
            end_offset=None,
            end_from_end=False,
            case="none",
        )
        assert program.apply("abcdefgh") == "efgh"
        assert program.apply("12345") == "2345"

    def test_slice_program_truncates_like_python(self):
        program = SliceProgram(
            start_offset=4,
            start_from_end=False,
            end_offset=10,
            end_from_end=False,
            case="none",
        )
        assert program.apply("abcdef") == "ef"
        assert program.apply("ab") == ""


class TestSegments:
    def test_token_piece_prefix(self):
        segment = TokenPieceSegment(
            index=0, from_end=False, part="prefix", length=1, case="lower"
        )
        assert segment.apply("Justin Trudeau") == "j"

    def test_token_piece_from_end(self):
        segment = TokenPieceSegment(
            index=0, from_end=True, part="full", length=0, case="none"
        )
        assert segment.apply("Justin Trudeau") == "Trudeau"

    def test_token_piece_out_of_range_is_empty(self):
        segment = TokenPieceSegment(
            index=5, from_end=False, part="full", length=0, case="none"
        )
        assert segment.apply("one two") == ""

    def test_token_piece_suffix(self):
        segment = TokenPieceSegment(
            index=0, from_end=False, part="suffix", length=3, case="none"
        )
        assert segment.apply("Trudeau") == "eau"

    def test_char_slice_to_end(self):
        segment = CharSliceSegment(offset=2, from_end=False, length=None, case="upper")
        assert segment.apply("abcdef") == "CDEF"

    def test_char_slice_from_end(self):
        segment = CharSliceSegment(offset=3, from_end=True, length=3, case="none")
        assert segment.apply("abcdef") == "def"

    def test_delimiter_part(self):
        segment = DelimiterPartSegment(delimiter="-", index=1, from_end=False, case="none")
        assert segment.apply("a-b-c") == "b"

    def test_delimiter_part_missing_is_empty(self):
        segment = DelimiterPartSegment(delimiter="-", index=5, from_end=False, case="none")
        assert segment.apply("a-b") == ""

    def test_part_slice(self):
        segment = PartSliceSegment(
            delimiter=" ",
            index=1,
            from_end=False,
            start=0,
            start_from_end=False,
            length=4,
            case="lower",
        )
        assert segment.apply("Justin Trudeau") == "trud"

    def test_part_slice_to_end(self):
        segment = PartSliceSegment(
            delimiter=" ",
            index=0,
            from_end=False,
            start=2,
            start_from_end=False,
            length=None,
            case="none",
        )
        assert segment.apply("Justin Trudeau") == "stin"


class TestConcatProgram:
    def test_concatenation(self):
        program = ConcatProgram(
            segments=(
                TokenPieceSegment(0, False, "prefix", 1, "lower"),
                LiteralSegment("."),
                TokenPieceSegment(0, True, "full", 0, "lower"),
            )
        )
        assert program.apply("Jean Chretien") == "j.chretien"

    def test_literal_fraction(self):
        all_literal = ConcatProgram(segments=(LiteralSegment("abc"),))
        assert all_literal.literal_fraction == 1.0
        mixed = ConcatProgram(
            segments=(
                LiteralSegment("ab"),
                CharSliceSegment(0, False, 2, "none"),
            )
        )
        assert 0.0 < mixed.literal_fraction < 1.0

    def test_generality_orders_specs(self):
        token_based = ConcatProgram(
            segments=(TokenPieceSegment(0, False, "full", 0, "none"),)
        )
        literal_based = ConcatProgram(segments=(LiteralSegment("x"),))
        assert token_based.generality > literal_based.generality

    def test_describe_is_compact(self):
        program = ConcatProgram(segments=(LiteralSegment("x"),))
        assert "lit" in program.describe()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.surrogate import PretrainedDTT
from repro.tokenizer import ByteTokenizer
from repro.types import ExamplePair


@pytest.fixture(scope="session")
def tokenizer() -> ByteTokenizer:
    return ByteTokenizer()


@pytest.fixture(scope="session")
def pretrained_model() -> PretrainedDTT:
    """One shared induction-engine model (stateless across prompts)."""
    return PretrainedDTT(seed=0)


@pytest.fixture()
def pm_examples() -> list[ExamplePair]:
    """The paper's §2 running example: prime ministers to user ids."""
    return [
        ExamplePair("Justin Trudeau", "jtrudeau"),
        ExamplePair("Stephen Harper", "sharper"),
        ExamplePair("Paul Martin", "pmartin"),
    ]

"""Equivalence harness: the blocked joiner must match brute force exactly.

``IndexedJoiner`` (and ``AutoJoiner`` on both sides of its threshold)
must produce **identical** results to ``EditDistanceJoiner`` — same
matches, same distances, same earliest-row tie-breaks, same abstentions
under ``max_distance`` / ``normalized_threshold`` — on every registered
benchmark dataset and on randomized columns with duplicates and empty
strings.  Blocking is a performance choice only; any divergence here is
a correctness bug.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from repro.utils.fuzz import random_edits, random_unicode_string

from repro.core.join_config import JoinConfig
from repro.core.joiner import EditDistanceJoiner
from repro.datagen.benchmarks.registry import dataset_names, get_dataset
from repro.exceptions import JoinError
from repro.index import AutoJoiner, IndexCache, IndexedJoiner, make_joiner
from repro.index.qgram import QGramIndex
from repro.types import Prediction

_SEED = 987

_JOINER_VARIANTS = (
    JoinConfig(),
    JoinConfig(max_distance=2),
    JoinConfig(normalized_threshold=0.34),
)


def _predictions_for(targets, rng):
    """Simulated pipeline output: exact, near, far, and abstained rows."""
    predictions = []
    for i, target in enumerate(targets):
        roll = rng.random()
        if roll < 0.35:
            value = target
        elif roll < 0.75:
            value = random_edits(rng, target, rng.randint(1, 3))
        elif roll < 0.9:
            value = random_unicode_string(rng, max_length=12)
        else:
            value = ""  # abstention (footnote 2)
        predictions.append(Prediction(source=f"s{i}", value=value))
    return predictions


class TestRegistryDatasetEquivalence:
    @pytest.mark.parametrize("name", dataset_names())
    def test_join_results_identical_on_dataset(self, name):
        rng = random.Random(_SEED)
        tables = get_dataset(name, seed=0, scale=0.05)
        for config in _JOINER_VARIANTS:
            brute = EditDistanceJoiner(config)
            indexed = IndexedJoiner(config)
            for table in tables:
                targets = list(table.targets)
                predictions = _predictions_for(targets, rng)
                expected_rows = list(table.targets)
                assert indexed.join(
                    predictions, targets, expected_rows
                ) == brute.join(predictions, targets, expected_rows), (
                    name,
                    table.name,
                    config,
                )


class TestJoinManyEquivalence:
    """The batch API must be byte-identical to per-probe match loops."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_batch_vs_scalar_on_dataset(self, name):
        rng = random.Random(_SEED + 10)
        tables = get_dataset(name, seed=0, scale=0.05)
        for config in _JOINER_VARIANTS:
            indexed = IndexedJoiner(config)
            brute = EditDistanceJoiner(config)
            for table in tables:
                targets = list(table.targets)
                probes = [p.value for p in _predictions_for(targets, rng)]
                batch = indexed.join_many(probes, targets)
                assert batch == [
                    indexed.match(p, targets) for p in probes
                ], (name, table.name, config)
                assert batch == brute.join_many(probes, targets), (
                    name,
                    table.name,
                    config,
                )

    def test_batch_vs_scalar_fuzz(self):
        rng = random.Random(_SEED + 11)
        for _ in range(60):
            targets = [
                random_unicode_string(rng, max_length=12)
                for _ in range(rng.randint(1, 35))
            ]
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 5))]
            targets += [""] * rng.randint(0, 2)
            rng.shuffle(targets)
            config = rng.choice(_JOINER_VARIANTS)
            indexed = IndexedJoiner(replace(config, q=rng.choice((None, 2, 3))))
            probes = [
                rng.choice(
                    (
                        random_unicode_string(rng),
                        random_edits(rng, rng.choice(targets), rng.randint(0, 3)),
                        rng.choice(targets),
                        "",
                    )
                )
                for _ in range(rng.randint(0, 10))
            ]
            assert indexed.join_many(probes, targets) == [
                indexed.match(p, targets) for p in probes
            ], (probes, targets, config)

    def test_duplicate_probes_resolved_once_with_identical_results(self):
        targets = ["alpha", "beta", "gamma", "beta"]
        probes = ["betaa", "betaa", "alpha", "betaa", "", ""]
        indexed = IndexedJoiner()
        assert indexed.join_many(probes, targets) == [
            indexed.match(p, targets) for p in probes
        ]

    def test_empty_probe_column(self):
        assert IndexedJoiner().join_many([], ["a", "b"]) == []
        # The brute reference loop never touches targets when there are
        # no probes; the batch API mirrors that.
        assert IndexedJoiner().join_many([], []) == []
        assert EditDistanceJoiner().join_many([], []) == []

    def test_empty_targets_with_probes_raise(self):
        with pytest.raises(JoinError):
            IndexedJoiner().join_many(["a"], [])
        with pytest.raises(JoinError):
            EditDistanceJoiner().join_many(["a"], [])

    def test_join_routes_through_join_many(self):
        targets = ["aaa", "bbb", "ccc"]
        predictions = [
            Prediction(source="s0", value="aab"),
            Prediction(source="s1", value=""),
            Prediction(source="s2", value="ccc"),
        ]
        for joiner in (EditDistanceJoiner(), IndexedJoiner(), AutoJoiner()):
            results = joiner.join(predictions, targets, ["aaa", "bbb", "ccc"])
            assert [(r.matched, r.distance) for r in results] == [
                ("aaa", 1),
                (None, 0),
                ("ccc", 0),
            ]

    def test_threshold_abstentions_match_scalar(self):
        targets = ["aaaa", "bbbb", "cccc"]
        probes = ["aaab", "zzzz", "bbbb"]
        for config in (
            JoinConfig(max_distance=1),
            JoinConfig(normalized_threshold=0.1),
        ):
            indexed = IndexedJoiner(config)
            brute = EditDistanceJoiner(config)
            assert indexed.join_many(probes, targets) == brute.join_many(
                probes, targets
            )


class TestRandomizedEquivalence:
    def test_match_equivalence_fuzz(self):
        rng = random.Random(_SEED + 1)
        for _ in range(120):
            targets = [
                random_unicode_string(rng, max_length=12)
                for _ in range(rng.randint(1, 35))
            ]
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 5))]
            targets += [""] * rng.randint(0, 2)
            rng.shuffle(targets)
            config = rng.choice(_JOINER_VARIANTS)
            brute = EditDistanceJoiner(config)
            indexed = IndexedJoiner(replace(config, q=rng.choice((2, 3))))
            for _ in range(4):
                predicted = rng.choice(
                    (
                        random_unicode_string(rng),
                        random_edits(rng, rng.choice(targets), rng.randint(0, 3)),
                        rng.choice(targets),
                        "",
                    )
                )
                assert indexed.match(predicted, targets) == brute.match(
                    predicted, targets
                ), (predicted, targets, config)

    def test_match_many_equivalence_fuzz(self):
        rng = random.Random(_SEED + 2)
        for _ in range(100):
            targets = [
                random_unicode_string(rng, max_length=10)
                for _ in range(rng.randint(1, 25))
            ]
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 6))]
            rng.shuffle(targets)
            brute = EditDistanceJoiner()
            indexed = IndexedJoiner()
            for _ in range(3):
                predicted = rng.choice(
                    (random_edits(rng, rng.choice(targets), rng.randint(0, 2)), "")
                )
                lower = rng.randint(0, 2)
                upper = lower + rng.randint(0, 4)
                assert indexed.match_many(
                    predicted, targets, lower, upper
                ) == brute.match_many(predicted, targets, lower, upper), (
                    predicted,
                    targets,
                    lower,
                    upper,
                )


class TestIndexedJoinerContract:
    def test_empty_target_column_rejected(self):
        with pytest.raises(JoinError):
            IndexedJoiner().match("abc", [])
        with pytest.raises(JoinError):
            IndexedJoiner().match_many("abc", [])

    def test_empty_prediction(self):
        assert IndexedJoiner().match("", ["a"]) == (None, 0)
        assert IndexedJoiner().match_many("", ["a"], 0, 3) == []

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            IndexedJoiner().match_many("a", ["b"], lower=2, upper=1)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            IndexedJoiner(JoinConfig(q=0))

    def test_tie_prefers_earliest_target_row(self):
        # "bx" and "cx" are both distance 1 from "x"; row order decides.
        assert IndexedJoiner().match("x", ["zzz", "bx", "cx"]) == ("bx", 1)

    def test_index_cached_by_column_content(self):
        joiner = IndexedJoiner(cache=IndexCache())
        targets = ["alpha", "beta", "gamma"]
        first = joiner._index_for(targets)
        assert joiner._index_for(targets) is first
        assert isinstance(first, QGramIndex)
        # Content-keyed: an equal column hits the same cached index no
        # matter which sequence object carries it.
        assert joiner._index_for(list(targets)) is first
        assert joiner._index_for(tuple(targets)) is first
        # A different column misses.
        assert joiner._index_for(["alpha", "beta"]) is not first

    def test_index_shared_across_joiners_via_default_cache(self):
        cache = IndexCache()
        a = IndexedJoiner(cache=cache)
        b = IndexedJoiner(cache=cache)
        targets = ("alpha", "beta", "gamma")
        assert a._index_for(targets) is b._index_for(targets)

    def test_same_length_in_place_edit_invalidates_cache(self):
        # Regression for the staleness hole of the old identity+length
        # guard: overwriting a cell with a same-length value went
        # undetected and served results from the stale index.
        joiner = IndexedJoiner(cache=IndexCache())
        targets = ["aaa", "bbb", "ccc"]
        assert joiner.match("bbb", targets) == ("bbb", 0)
        targets[1] = "zzz"  # same length, in place
        assert joiner.match("zzz", targets) == ("zzz", 0)
        assert joiner.match("bbb", targets) == EditDistanceJoiner().match(
            "bbb", targets
        )

    def test_lone_surrogates_equivalent_to_brute(self):
        # Regression: utf-32 encoding raises on lone surrogates; the
        # blocked engine must match the brute scan, not crash.
        targets = ["alpha", "alp\ud800ha", "beta", "alpha0"]
        brute = EditDistanceJoiner()
        indexed = IndexedJoiner()
        for probe in ("alph\ud800a", "alpha", "\udc80"):
            assert indexed.match(probe, targets) == brute.match(probe, targets)
            assert indexed.match_many(probe, targets, 0, 4) == brute.match_many(
                probe, targets, 0, 4
            )

    def test_in_place_append_invalidates_cache(self):
        joiner = IndexedJoiner()
        targets = ["aaa", "bbb"]
        assert joiner.match("aaa", targets) == ("aaa", 0)
        targets.append("zzz")
        # The length guard detects the mutation and rebuilds the index.
        assert joiner.match("zzz", targets) == ("zzz", 0)


class TestAutoJoiner:
    def test_delegates_agree_on_both_sides_of_threshold(self):
        rng = random.Random(_SEED + 3)
        small = [random_unicode_string(rng, max_length=8) for _ in range(10)]
        large = [random_unicode_string(rng, max_length=8) for _ in range(80)]
        auto = AutoJoiner(JoinConfig(auto_threshold=50))
        brute = EditDistanceJoiner()
        for targets in (small, large):
            for _ in range(10):
                predicted = random_edits(rng, rng.choice(targets), rng.randint(0, 2))
                assert auto.match(predicted, targets) == brute.match(
                    predicted, targets
                )
                assert auto.match_many(predicted, targets, 0, 3) == brute.match_many(
                    predicted, targets, 0, 3
                )

    def test_picks_indexed_at_threshold(self):
        auto = AutoJoiner(JoinConfig(auto_threshold=3))
        assert auto._delegate(["a", "b"]) is auto._brute
        assert auto._delegate(["a", "b", "c"]) is auto._indexed

    def test_default_switchover_boundary_at_256(self):
        auto = AutoJoiner()
        assert auto.threshold == AutoJoiner.DEFAULT_THRESHOLD == 256
        rng = random.Random(_SEED + 20)
        below = [f"v{i:03d}" for i in range(255)]
        exactly = [f"v{i:03d}" for i in range(256)]
        assert auto._delegate(below) is auto._brute
        assert auto._delegate(exactly) is auto._indexed
        # Crossing the boundary never changes results: match, batch,
        # and range queries agree with brute on both sides.
        brute = EditDistanceJoiner()
        for targets in (below, exactly):
            probes = [
                random_edits(rng, rng.choice(targets), rng.randint(0, 2))
                for _ in range(6)
            ] + ["", targets[0]]
            assert auto.join_many(probes, targets) == brute.join_many(
                probes, targets
            )
            for probe in probes:
                assert auto.match(probe, targets) == brute.match(probe, targets)
                assert auto.match_many(probe, targets, 0, 2) == brute.match_many(
                    probe, targets, 0, 2
                )

    def test_join_inherited_path(self):
        auto = AutoJoiner(JoinConfig(auto_threshold=2))
        predictions = [Prediction(source="s", value="aaa")]
        results = auto.join(predictions, ["aaa", "bbb"], expected=["aaa"])
        assert results[0].matched == "aaa"
        assert results[0].correct

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AutoJoiner(JoinConfig(auto_threshold=-1))

    def test_empty_targets_raise_via_delegate(self):
        with pytest.raises(JoinError):
            AutoJoiner().match("abc", [])


class TestMakeJoiner:
    def test_strategy_mapping(self):
        assert type(make_joiner("brute")) is EditDistanceJoiner
        assert type(make_joiner("indexed")) is IndexedJoiner
        assert type(make_joiner("auto")) is AutoJoiner

    def test_parameters_forwarded(self):
        joiner = make_joiner("indexed", JoinConfig(max_distance=3, q=3))
        assert joiner.max_distance == 3
        assert joiner.q == 3
        auto = make_joiner(
            "auto", JoinConfig(auto_threshold=7, normalized_threshold=0.5)
        )
        assert auto.threshold == 7
        assert auto._indexed.normalized_threshold == 0.5

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_joiner("fuzzy")
        with pytest.raises(ValueError):
            make_joiner("")

    def test_pipeline_rejects_empty_strategy_string(self):
        from repro.core.pipeline import DTTPipeline
        from repro.surrogate import PretrainedDTT

        with pytest.raises(ValueError):
            DTTPipeline(PretrainedDTT(seed=0), joiner="")


class TestOutlierColumns:
    def test_long_outlier_cell_stays_equivalent(self, monkeypatch):
        # A single pathological cell must not force the whole column to
        # its width: past the budget the index skips the dense matrix
        # and encodes candidate batches on demand, with identical
        # results.  Shrink the budget so the fallback path runs.
        monkeypatch.setattr(QGramIndex, "_DENSE_BUDGET", 64)
        targets = ["q" * 500] + [f"val{i}" for i in range(40)]
        index = QGramIndex(targets, q=2)
        assert index._codes is None
        indexed = IndexedJoiner()
        brute = EditDistanceJoiner()
        for probe in ("val7", "q" * 499, "valxx", ""):
            assert indexed.match(probe, targets) == brute.match(probe, targets)
            assert indexed.match_many(probe, targets, 0, 3) == brute.match_many(
                probe, targets, 0, 3
            )

"""Equivalence harness: the blocked joiner must match brute force exactly.

``IndexedJoiner`` (and ``AutoJoiner`` on both sides of its threshold)
must produce **identical** results to ``EditDistanceJoiner`` — same
matches, same distances, same earliest-row tie-breaks, same abstentions
under ``max_distance`` / ``normalized_threshold`` — on every registered
benchmark dataset and on randomized columns with duplicates and empty
strings.  Blocking is a performance choice only; any divergence here is
a correctness bug.
"""

from __future__ import annotations

import random

import pytest
from repro.utils.fuzz import random_edits, random_unicode_string

from repro.core.joiner import EditDistanceJoiner
from repro.datagen.benchmarks.registry import dataset_names, get_dataset
from repro.exceptions import JoinError
from repro.index import AutoJoiner, IndexedJoiner, make_joiner
from repro.index.qgram import QGramIndex
from repro.types import Prediction

_SEED = 987

_JOINER_VARIANTS = (
    {},
    {"max_distance": 2},
    {"normalized_threshold": 0.34},
)


def _predictions_for(targets, rng):
    """Simulated pipeline output: exact, near, far, and abstained rows."""
    predictions = []
    for i, target in enumerate(targets):
        roll = rng.random()
        if roll < 0.35:
            value = target
        elif roll < 0.75:
            value = random_edits(rng, target, rng.randint(1, 3))
        elif roll < 0.9:
            value = random_unicode_string(rng, max_length=12)
        else:
            value = ""  # abstention (footnote 2)
        predictions.append(Prediction(source=f"s{i}", value=value))
    return predictions


class TestRegistryDatasetEquivalence:
    @pytest.mark.parametrize("name", dataset_names())
    def test_join_results_identical_on_dataset(self, name):
        rng = random.Random(_SEED)
        tables = get_dataset(name, seed=0, scale=0.05)
        for kwargs in _JOINER_VARIANTS:
            brute = EditDistanceJoiner(**kwargs)
            indexed = IndexedJoiner(**kwargs)
            for table in tables:
                targets = list(table.targets)
                predictions = _predictions_for(targets, rng)
                expected_rows = list(table.targets)
                assert indexed.join(
                    predictions, targets, expected_rows
                ) == brute.join(predictions, targets, expected_rows), (
                    name,
                    table.name,
                    kwargs,
                )


class TestRandomizedEquivalence:
    def test_match_equivalence_fuzz(self):
        rng = random.Random(_SEED + 1)
        for _ in range(120):
            targets = [
                random_unicode_string(rng, max_length=12)
                for _ in range(rng.randint(1, 35))
            ]
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 5))]
            targets += [""] * rng.randint(0, 2)
            rng.shuffle(targets)
            kwargs = rng.choice(_JOINER_VARIANTS)
            brute = EditDistanceJoiner(**kwargs)
            indexed = IndexedJoiner(**kwargs, q=rng.choice((2, 3)))
            for _ in range(4):
                predicted = rng.choice(
                    (
                        random_unicode_string(rng),
                        random_edits(rng, rng.choice(targets), rng.randint(0, 3)),
                        rng.choice(targets),
                        "",
                    )
                )
                assert indexed.match(predicted, targets) == brute.match(
                    predicted, targets
                ), (predicted, targets, kwargs)

    def test_match_many_equivalence_fuzz(self):
        rng = random.Random(_SEED + 2)
        for _ in range(100):
            targets = [
                random_unicode_string(rng, max_length=10)
                for _ in range(rng.randint(1, 25))
            ]
            targets += [rng.choice(targets) for _ in range(rng.randint(0, 6))]
            rng.shuffle(targets)
            brute = EditDistanceJoiner()
            indexed = IndexedJoiner()
            for _ in range(3):
                predicted = rng.choice(
                    (random_edits(rng, rng.choice(targets), rng.randint(0, 2)), "")
                )
                lower = rng.randint(0, 2)
                upper = lower + rng.randint(0, 4)
                assert indexed.match_many(
                    predicted, targets, lower, upper
                ) == brute.match_many(predicted, targets, lower, upper), (
                    predicted,
                    targets,
                    lower,
                    upper,
                )


class TestIndexedJoinerContract:
    def test_empty_target_column_rejected(self):
        with pytest.raises(JoinError):
            IndexedJoiner().match("abc", [])
        with pytest.raises(JoinError):
            IndexedJoiner().match_many("abc", [])

    def test_empty_prediction(self):
        assert IndexedJoiner().match("", ["a"]) == (None, 0)
        assert IndexedJoiner().match_many("", ["a"], 0, 3) == []

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            IndexedJoiner().match_many("a", ["b"], lower=2, upper=1)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            IndexedJoiner(q=0)

    def test_tie_prefers_earliest_target_row(self):
        # "bx" and "cx" are both distance 1 from "x"; row order decides.
        assert IndexedJoiner().match("x", ["zzz", "bx", "cx"]) == ("bx", 1)

    def test_index_cached_per_target_identity(self):
        joiner = IndexedJoiner()
        targets = ["alpha", "beta", "gamma"]
        first = joiner._index_for(targets)
        assert joiner._index_for(targets) is first
        assert isinstance(first, QGramIndex)
        # A different list object (even if equal) rebuilds.
        assert joiner._index_for(list(targets)) is not first

    def test_lone_surrogates_equivalent_to_brute(self):
        # Regression: utf-32 encoding raises on lone surrogates; the
        # blocked engine must match the brute scan, not crash.
        targets = ["alpha", "alp\ud800ha", "beta", "alpha0"]
        brute = EditDistanceJoiner()
        indexed = IndexedJoiner()
        for probe in ("alph\ud800a", "alpha", "\udc80"):
            assert indexed.match(probe, targets) == brute.match(probe, targets)
            assert indexed.match_many(probe, targets, 0, 4) == brute.match_many(
                probe, targets, 0, 4
            )

    def test_in_place_append_invalidates_cache(self):
        joiner = IndexedJoiner()
        targets = ["aaa", "bbb"]
        assert joiner.match("aaa", targets) == ("aaa", 0)
        targets.append("zzz")
        # The length guard detects the mutation and rebuilds the index.
        assert joiner.match("zzz", targets) == ("zzz", 0)


class TestAutoJoiner:
    def test_delegates_agree_on_both_sides_of_threshold(self):
        rng = random.Random(_SEED + 3)
        small = [random_unicode_string(rng, max_length=8) for _ in range(10)]
        large = [random_unicode_string(rng, max_length=8) for _ in range(80)]
        auto = AutoJoiner(threshold=50)
        brute = EditDistanceJoiner()
        for targets in (small, large):
            for _ in range(10):
                predicted = random_edits(rng, rng.choice(targets), rng.randint(0, 2))
                assert auto.match(predicted, targets) == brute.match(
                    predicted, targets
                )
                assert auto.match_many(predicted, targets, 0, 3) == brute.match_many(
                    predicted, targets, 0, 3
                )

    def test_picks_indexed_at_threshold(self):
        auto = AutoJoiner(threshold=3)
        assert auto._delegate(["a", "b"]) is auto._brute
        assert auto._delegate(["a", "b", "c"]) is auto._indexed

    def test_join_inherited_path(self):
        auto = AutoJoiner(threshold=2)
        predictions = [Prediction(source="s", value="aaa")]
        results = auto.join(predictions, ["aaa", "bbb"], expected=["aaa"])
        assert results[0].matched == "aaa"
        assert results[0].correct

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AutoJoiner(threshold=-1)

    def test_empty_targets_raise_via_delegate(self):
        with pytest.raises(JoinError):
            AutoJoiner().match("abc", [])


class TestMakeJoiner:
    def test_strategy_mapping(self):
        assert type(make_joiner("brute")) is EditDistanceJoiner
        assert type(make_joiner("indexed")) is IndexedJoiner
        assert type(make_joiner("auto")) is AutoJoiner

    def test_parameters_forwarded(self):
        joiner = make_joiner("indexed", max_distance=3, q=3)
        assert joiner.max_distance == 3
        assert joiner.q == 3
        auto = make_joiner("auto", auto_threshold=7, normalized_threshold=0.5)
        assert auto.threshold == 7
        assert auto._indexed.normalized_threshold == 0.5

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_joiner("fuzzy")
        with pytest.raises(ValueError):
            make_joiner("")

    def test_pipeline_rejects_empty_strategy_string(self):
        from repro.core.pipeline import DTTPipeline
        from repro.surrogate import PretrainedDTT

        with pytest.raises(ValueError):
            DTTPipeline(PretrainedDTT(seed=0), joiner="")


class TestOutlierColumns:
    def test_long_outlier_cell_stays_equivalent(self, monkeypatch):
        # A single pathological cell must not force the whole column to
        # its width: past the budget the index skips the dense matrix
        # and encodes candidate batches on demand, with identical
        # results.  Shrink the budget so the fallback path runs.
        monkeypatch.setattr(QGramIndex, "_DENSE_BUDGET", 64)
        targets = ["q" * 500] + [f"val{i}" for i in range(40)]
        index = QGramIndex(targets, q=2)
        assert index._codes is None
        indexed = IndexedJoiner()
        brute = EditDistanceJoiner()
        for probe in ("val7", "q" * 499, "valxx", ""):
            assert indexed.match(probe, targets) == brute.match(probe, targets)
            assert indexed.match_many(probe, targets, 0, 3) == brute.match_many(
                probe, targets, 0, 3
            )

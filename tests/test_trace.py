"""End-to-end request tracing: span trees across threads and processes.

Unit half: the :mod:`repro.obs.trace` contract — head-based sampling
decided once at the root, error traces committed regardless of the
decision, bounded collector views, contextvar propagation, picklable
span contexts, and the worker-side drain/ingest handshake.

Integration half: the acceptance path — 16 concurrent clients against
a two-worker :class:`~repro.serve.router.ServiceRouter` behind the
HTTP front end at sample rate 1.0, asserting the full queue-wait →
batch-execute → engine-decode → join parentage re-assembled across
process boundaries, `X-Repro-Trace-Id` correlation, the `/readyz`
probe, and `--log-json` structured access lines.
"""

from __future__ import annotations

import functools
import io
import json
import pickle
import random
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    DEFAULT_SLOWEST,
    NULL_SPAN,
    SpanContext,
    TraceCollector,
    Tracer,
    configure_tracing,
    current_context,
    current_span,
    get_tracer,
    span_tree,
)
from repro.serve.http import start_http_server
from repro.serve.router import RouteSpec, ServiceRouter, build_pipeline

_EXAMPLES = [
    ["Justin Trudeau", "jtrudeau"],
    ["Stephen Harper", "sharper"],
    ["Paul Martin", "pmartin"],
]


@pytest.fixture(autouse=True)
def _pristine_global_tracer():
    """Restore the process-global tracer's config after every test.

    Save/restore rather than hard-reset: the class-scoped e2e server
    fixture configures rate 1.0 once for the whole class, and a reset
    to 0.0 after the first test would silently unsample the rest.
    """
    tracer = get_tracer()
    rate, collector = tracer.sample_rate, tracer.collector
    yield
    tracer.sample_rate = rate
    tracer.collector = collector


def _tracer(
    sample_rate: float = 1.0, capacity: int = 16, slowest: int = 4
) -> Tracer:
    return Tracer(
        TraceCollector(capacity=capacity, slowest=slowest),
        sample_rate=sample_rate,
        rng=random.Random(7),
    )


class TestSampling:
    def test_rate_one_commits_the_tree_on_root_finish(self):
        tracer = _tracer(1.0)
        root = tracer.start_trace("request")
        child = tracer.start_span("work", parent=root)
        child.finish()
        assert len(tracer.collector) == 0  # nothing until the root closes
        root.finish()
        snap = tracer.collector.snapshot()
        assert snap["collected"] == 1
        trace = snap["recent"][0]
        assert trace["sampled"] is True
        assert [s["name"] for s in trace["spans"]] == ["request", "work"]

    def test_rate_zero_drops_ok_traces_but_keeps_ids(self):
        tracer = _tracer(0.0)
        root = tracer.start_trace("request")
        assert root.trace_id and not root.sampled
        assert tracer.start_span("work", parent=root) is NULL_SPAN
        root.finish()
        assert len(tracer.collector) == 0

    def test_errored_root_commits_even_unsampled(self):
        tracer = _tracer(0.0)
        root = tracer.start_trace("request")
        root.set_error("boom")
        root.finish()
        trace = tracer.collector.snapshot()["recent"][0]
        assert trace["status"] == "error"
        assert trace["sampled"] is False
        assert trace["spans"][0]["attributes"]["error_detail"] == "boom"

    def test_force_sample_overrides_the_rate(self):
        tracer = _tracer(0.0)
        assert tracer.start_trace("r", force_sample=True).sampled
        assert not _tracer(1.0).start_trace("r", force_sample=False).sampled

    def test_fractional_rate_is_per_root(self):
        tracer = _tracer(0.5)
        decisions = {
            tracer.start_trace("r").sampled for _ in range(200)
        }
        assert decisions == {True, False}

    def test_configure_tracing_validates_the_rate(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            configure_tracing(sample_rate=1.5)


class TestSpans:
    def test_finish_is_idempotent(self):
        tracer = _tracer(1.0)
        root = tracer.start_trace("request")
        root.finish()
        first = root.duration_s
        root.finish(status="error")
        assert root.duration_s == first
        assert root.status == "ok"
        assert tracer.collector.snapshot()["collected"] == 1

    def test_record_span_uses_explicit_monotonic_times(self):
        tracer = _tracer(1.0)
        root = tracer.start_trace("request")
        tracer.record_span(
            "queue_wait", root, start=10.0, end=10.25, attributes={"n": 3}
        )
        root.finish()
        trace = tracer.collector.snapshot()["recent"][0]
        waited = trace["spans"][1]
        assert waited["name"] == "queue_wait"
        assert waited["duration_s"] == pytest.approx(0.25)
        assert waited["attributes"] == {"n": 3}

    def test_span_context_manager_marks_errors_and_reraises(self):
        tracer = _tracer(1.0)
        root = tracer.start_trace("request")
        with pytest.raises(RuntimeError):
            with tracer.activate(root):
                with tracer.span("work"):
                    raise RuntimeError("nope")
        root.finish()
        trace = tracer.collector.snapshot()["recent"][0]
        work = trace["spans"][1]
        assert work["status"] == "error"
        assert "RuntimeError" in work["attributes"]["error_detail"]

    def test_null_span_is_inert(self):
        NULL_SPAN.set_attribute("k", 1)
        NULL_SPAN.set_attributes({"k": 1})
        NULL_SPAN.set_error("x")
        NULL_SPAN.finish()
        assert NULL_SPAN.context is None
        assert NULL_SPAN.sampled is False

    def test_span_context_pickles_and_parents(self):
        tracer = _tracer(1.0)
        root = tracer.start_trace("request")
        ctx = pickle.loads(pickle.dumps(root.context))
        assert ctx == SpanContext(root.trace_id, root.span_id, True)
        child = tracer.start_span("remote", parent=ctx)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id


class TestContextPropagation:
    def test_activate_installs_and_restores(self):
        tracer = _tracer(1.0)
        assert current_span() is None
        root = tracer.start_trace("request")
        with tracer.activate(root):
            assert current_span() is root
            assert current_context() == root.context
            child = tracer.start_span("work")  # parent defaults to current
            assert child.parent_id == root.span_id
        assert current_span() is None

    def test_unsampled_current_context_is_none(self):
        tracer = _tracer(0.0)
        with tracer.activate(tracer.start_trace("request")):
            assert current_span() is not None
            assert current_context() is None

    def test_activating_null_span_leaves_context_alone(self):
        tracer = _tracer(1.0)
        with tracer.activate(NULL_SPAN):
            assert current_span() is None


class TestDrainIngest:
    def test_worker_spans_splice_into_the_parent_trace(self):
        parent = _tracer(1.0)
        worker = _tracer(1.0)
        root = parent.start_trace("request")
        # Worker side: only the picklable context crosses the pipe.
        remote = worker.start_span("worker.execute", parent=root.context)
        inner = worker.start_span("engine.decode", parent=remote)
        inner.finish()
        remote.finish()
        shipped = worker.drain(root.trace_id)
        assert [s["name"] for s in shipped] == [
            "engine.decode",
            "worker.execute",
        ]
        assert worker.drain(root.trace_id) == []  # drained means gone
        parent.ingest(shipped)
        root.finish()
        trace = parent.collector.snapshot()["recent"][0]
        tree = span_tree(trace)
        worker_span = tree[root.span_id][0]
        assert worker_span["name"] == "worker.execute"
        assert tree[worker_span["span_id"]][0]["name"] == "engine.decode"


class TestCollector:
    def test_ring_bounds_and_collected_counter(self):
        collector = TraceCollector(capacity=2, slowest=0)
        for i in range(5):
            collector.add({"trace_id": str(i), "duration_s": float(i)})
        assert len(collector) == 2
        snap = collector.snapshot()
        assert snap["collected"] == 5
        assert [t["trace_id"] for t in snap["recent"]] == ["4", "3"]
        assert snap["slowest"] == []

    def test_slowest_keeps_the_worst_by_duration(self):
        collector = TraceCollector(capacity=2, slowest=2)
        for i, duration in enumerate((0.1, 9.0, 0.2, 5.0)):
            collector.add({"trace_id": str(i), "duration_s": duration})
        slowest = collector.snapshot()["slowest"]
        assert [t["duration_s"] for t in slowest] == [9.0, 5.0]

    def test_snapshot_limit_and_clear(self):
        collector = TraceCollector(capacity=8, slowest=8)
        for i in range(4):
            collector.add({"trace_id": str(i), "duration_s": 1.0})
        snap = collector.snapshot(limit=2)
        assert len(snap["recent"]) == 2
        collector.clear()
        assert collector.snapshot()["collected"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)
        with pytest.raises(ValueError):
            TraceCollector(slowest=-1)

    def test_span_tree_indexes_by_parent(self):
        trace = {
            "spans": [
                {"span_id": "a", "parent_id": None},
                {"span_id": "b", "parent_id": "a"},
                {"span_id": "c", "parent_id": "a"},
            ]
        }
        tree = span_tree(trace)
        assert tree[None][0]["span_id"] == "a"
        assert [s["span_id"] for s in tree["a"]] == ["b", "c"]


def _post_json(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        json.dumps(payload).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response), dict(response.headers)


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.load(response)


def _wait_for_traces(
    base: str, trace_ids: set[str], timeout_s: float = 5.0
) -> dict:
    """Poll ``/debug/traces`` until every id committed (or time out).

    The root span commits *after* the response body is flushed, so a
    client can observe its own response a beat before the collector
    holds the trace — real scrapers never notice, tests would.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        snap = _get_json(base, "/debug/traces")
        seen = {t["trace_id"] for t in snap["recent"]}
        if trace_ids <= seen or time.monotonic() > deadline:
            return snap
        time.sleep(0.01)


class TestEndToEndTracing:
    """The acceptance path: 16 clients, 2 worker processes, rate 1.0."""

    @pytest.fixture(scope="class")
    def traced_server(self):
        configure_tracing(sample_rate=1.0, capacity=512, slowest=16)
        router = ServiceRouter(
            [
                RouteSpec(
                    "pretrained",
                    functools.partial(
                        build_pipeline, model="pretrained", seed=0
                    ),
                )
            ],
            n_workers=2,
            service_kwargs={"max_wait_ms": 1.0},
        )
        log_stream = io.StringIO()
        server = start_http_server(
            router, log_json=True, log_stream=log_stream
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", router, log_stream
        server.shutdown()
        server.server_close()
        router.close()
        configure_tracing(
            sample_rate=0.0,
            capacity=DEFAULT_CAPACITY,
            slowest=DEFAULT_SLOWEST,
        )

    def test_sixteen_clients_full_parentage_across_workers(
        self, traced_server
    ):
        base, _, _ = traced_server
        # A target column past the AutoJoiner threshold (256), so the
        # worker runs the indexed join path and its phase spans.
        targets = [f"target-{i:04d}" for i in range(300)] + ["jchretien"]

        def one(i: int) -> str:
            body, headers = _post_json(
                base,
                "/v1/join",
                {
                    "sources": [f"Jean Chretien-{i}"],
                    "targets": targets,
                    "examples": _EXAMPLES,
                },
            )
            assert body["mode"] == "argmin"
            return headers["X-Repro-Trace-Id"]

        with ThreadPoolExecutor(max_workers=16) as pool:
            trace_ids = [
                future.result()
                for future in [pool.submit(one, i) for i in range(16)]
            ]
        assert len(set(trace_ids)) == 16

        snap = _wait_for_traces(base, set(trace_ids))
        traces = {t["trace_id"]: t for t in snap["recent"]}
        assert set(trace_ids) <= set(traces), "traces lost from the ring"

        full_chains = 0
        for trace_id in trace_ids:
            trace = traces[trace_id]
            assert trace["sampled"] is True
            tree = span_tree(trace)
            root = tree[None][0]
            assert root["name"] == "POST /v1/join"
            assert root["attributes"]["status"] == 200
            assert root["attributes"]["route"] == "pretrained"
            # Root -> the hop into a worker process.
            hop = tree[root["span_id"]]
            assert [s["name"] for s in hop] == ["worker.execute"]
            worker = hop[0]
            assert isinstance(worker["attributes"]["pid"], int)
            # Worker-side service: queue wait + this request's slice of
            # the batch, re-parented under the cross-process hop.
            names = {s["name"] for s in tree[worker["span_id"]]}
            assert "serve.queue_wait" in names
            assert "serve.batch_execute" in names
            batch = next(
                s
                for s in tree[worker["span_id"]]
                if s["name"] == "serve.batch_execute"
            )
            under_batch = {
                s["name"] for s in tree.get(batch["span_id"], [])
            }
            if {"engine.decode", "join.join_many"} <= under_batch:
                # This request was its batch's primary: it carries the
                # engine and join children directly.
                join = next(
                    s
                    for s in tree[batch["span_id"]]
                    if s["name"] == "join.join_many"
                )
                phases = {
                    s["name"] for s in tree.get(join["span_id"], [])
                }
                assert {
                    "join.index_build",
                    "join.candidate_filter",
                    "join.kernel_sweep",
                } <= phases
                assert join["attributes"]["probes"] >= 1
                full_chains += 1
            else:
                # Coalesced rider: the batch work lives in the primary
                # trace, linked by id instead of duplicated.
                assert "batch_primary_trace_id" in batch["attributes"]
        assert full_chains >= 1, "no batch primary captured the full chain"

    def test_trace_header_matches_collector_and_limit_param(
        self, traced_server
    ):
        base, _, _ = traced_server
        _, headers = _post_json(
            base,
            "/v1/transform",
            {"sources": ["Kim Campbell"], "examples": _EXAMPLES},
        )
        trace_id = headers["X-Repro-Trace-Id"]
        _wait_for_traces(base, {trace_id})
        snap = _get_json(base, "/debug/traces?limit=1")
        assert len(snap["recent"]) == 1
        assert snap["recent"][0]["trace_id"] == trace_id
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_json(base, "/debug/traces?limit=nope")
        assert excinfo.value.code == 400

    def test_readyz_reports_live_worker_topology(self, traced_server):
        base, _, _ = traced_server
        body = _get_json(base, "/readyz")
        assert body["ready"] is True
        assert body["routes"] == ["pretrained"]
        assert body["workers"] == {
            "n_workers": 2,
            "alive": 2,
            "restarts": 0,
        }

    def test_healthz_carries_schema_version(self, traced_server):
        base, _, _ = traced_server
        body = _get_json(base, "/healthz")
        assert body == {"schema_version": 1, "ok": True}

    def test_json_access_log_lines_carry_the_trace_id(
        self, traced_server
    ):
        base, _, log_stream = traced_server
        _, headers = _post_json(
            base,
            "/v1/transform",
            {"sources": ["Jean Charest"], "examples": _EXAMPLES},
        )
        trace_id = headers["X-Repro-Trace-Id"]
        # The log line lands just after the response is flushed; poll.
        deadline = time.monotonic() + 5.0
        mine: list[dict] = []
        while not mine and time.monotonic() < deadline:
            lines = [
                json.loads(line)
                for line in log_stream.getvalue().splitlines()
                if line.strip()
            ]
            mine = [line for line in lines if line["trace_id"] == trace_id]
            if not mine:
                time.sleep(0.01)
        assert len(mine) == 1
        entry = mine[0]
        assert entry["method"] == "POST"
        assert entry["path"] == "/v1/transform"
        assert entry["route"] == "pretrained"
        assert entry["status"] == 200
        assert entry["duration_ms"] > 0


class TestReadyzNotReady:
    def test_closed_router_fails_readiness_but_stays_live(self):
        router = ServiceRouter(
            [
                RouteSpec(
                    "pretrained",
                    functools.partial(
                        build_pipeline, model="pretrained", seed=0
                    ),
                )
            ],
            n_workers=0,
            service_kwargs={"max_wait_ms": 1.0},
        )
        server = start_http_server(router)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            body = _get_json(base, "/readyz")
            assert body["ready"] is True
            assert body["workers"] == {
                "n_workers": 0,
                "alive": 0,
                "restarts": 0,
            }
            router.close()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(base, "/readyz")
            assert excinfo.value.code == 503
            assert json.load(excinfo.value)["ready"] is False
            # Liveness still answers 200: the process is up.
            assert _get_json(base, "/healthz")["ok"] is False
        finally:
            server.shutdown()
            server.server_close()
            router.close()

"""Integration tests: the full system on scaled-down paper benchmarks.

These assert the *shape* claims the reproduction targets (DESIGN.md §4)
at small scale so they run in CI time.
"""

from __future__ import annotations

import pytest

from repro import (
    DTTPipeline,
    ExamplePair,
    PretrainedDTT,
    get_dataset,
    score_join,
)
from repro.baselines import AFJJoiner, CSTJoiner
from repro.eval.runner import DTTJoinerAdapter, evaluate_on_dataset


@pytest.fixture(scope="module")
def dtt_adapter() -> DTTJoinerAdapter:
    return DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=3)


class TestHeadlineShapes:
    def test_dtt_strong_on_spreadsheet_data(self, dtt_adapter):
        tables = get_dataset("SS", seed=9, scale=0.12)
        report = evaluate_on_dataset(dtt_adapter, tables)
        assert report.f1 > 0.85

    def test_dtt_beats_cst_on_webtables(self, dtt_adapter):
        tables = get_dataset("WT", seed=9, scale=0.2)
        dtt = evaluate_on_dataset(dtt_adapter, tables)
        cst = evaluate_on_dataset(CSTJoiner(), tables)
        assert dtt.f1 > cst.f1

    def test_only_dtt_survives_reversal(self, dtt_adapter):
        tables = get_dataset("Syn-RV", seed=9, scale=0.4)
        dtt = evaluate_on_dataset(dtt_adapter, tables)
        cst = evaluate_on_dataset(CSTJoiner(), tables)
        afj = evaluate_on_dataset(AFJJoiner(), tables)
        assert dtt.f1 > 0.3
        assert cst.f1 < 0.1
        assert afj.f1 < 0.1

    def test_reversal_high_aned_yet_joinable(self, dtt_adapter):
        # The paper's observation: ANED can be large while join F1 stays
        # moderate, because the edit-distance join tolerates errors.
        tables = get_dataset("Syn-RV", seed=9, scale=0.4)
        report = evaluate_on_dataset(dtt_adapter, tables)
        assert report.aned > 0.3
        # Most predicted characters are wrong, yet the join recovers a
        # sizable fraction of rows (paper: ANED 0.85 with F1 0.63).
        assert report.f1 >= 0.3
        assert report.f1 >= report.aned * 0.4

    def test_everyone_weak_on_kbwt(self, dtt_adapter):
        tables = get_dataset("KBWT", seed=9, scale=0.15)
        dtt = evaluate_on_dataset(dtt_adapter, tables)
        assert dtt.f1 < 0.6

    def test_noise_robustness(self, dtt_adapter):
        tables = get_dataset("SS", seed=9, scale=0.1)
        clean = evaluate_on_dataset(dtt_adapter, tables)
        noisy = evaluate_on_dataset(dtt_adapter, tables, noise_ratio=0.4)
        assert clean.f1 - noisy.f1 < 0.25


class TestDownstreamTasks:
    def test_missing_value_imputation(self):
        # §4.4 / §6: exact predictions make DTT a candidate for
        # missing-value imputation.
        model = PretrainedDTT(seed=0)
        pipeline = DTTPipeline(model, seed=1)
        examples = [
            ExamplePair("2021-03-05", "05/03/2021"),
            ExamplePair("1999-12-31", "31/12/1999"),
            ExamplePair("2010-07-22", "22/07/2010"),
        ]
        predictions = pipeline.transform_column(["2024-01-15"], examples)
        assert predictions[0].value == "15/01/2024"

    def test_error_detection_via_disagreement(self):
        # A row whose given target disagrees with the model's prediction
        # is an error candidate (paper §1: error detection use case).
        model = PretrainedDTT(seed=0)
        pipeline = DTTPipeline(model, seed=2)
        examples = [
            ExamplePair("alpha", "ALPHA"),
            ExamplePair("beta", "BETA"),
            ExamplePair("gamma", "GAMMA"),
        ]
        rows = {"delta": "DELTA", "epsilon": "EPSILON", "zeta": "ZETTA"}
        predictions = pipeline.transform_column(list(rows), examples)
        flagged = [
            p.source for p in predictions if p.value != rows[p.source]
        ]
        assert flagged == ["zeta"]

    def test_join_metrics_end_to_end(self):
        model = PretrainedDTT(seed=0)
        pipeline = DTTPipeline(model, seed=3)
        table = get_dataset("SS", seed=10, scale=0.1)[0]
        pool, test_rows = table.split()
        results = pipeline.join(
            [r.source for r in test_rows],
            list(table.targets),
            pool,
            expected=[r.target for r in test_rows],
        )
        scores = score_join(results)
        assert scores.total == len(test_rows)
        assert scores.f1 > 0.5

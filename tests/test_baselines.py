"""Tests for the baseline joiners: CST, Auto-join, AFJ, Ditto, DataXFormer."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AFJJoiner,
    AutoJoinJoiner,
    CSTJoiner,
    DataXFormerJoiner,
    DittoJoiner,
)
from repro.baselines._units import (
    ULiteral,
    ULower,
    USplit,
    USubstr,
    UnitTransformation,
    coverage,
    synthesize_transformations,
)
from repro.kb import build_default_kb
from repro.types import ExamplePair


def _examples(*pairs: tuple[str, str]) -> list[ExamplePair]:
    return [ExamplePair(s, t) for s, t in pairs]


class TestUnitLanguage:
    def test_usubstr(self):
        assert USubstr(1, False, 3, False).apply("abcde") == "bc"

    def test_usubstr_from_end(self):
        assert USubstr(3, True, None, False).apply("abcde") == "cde"

    def test_usubstr_out_of_bounds(self):
        assert USubstr(10, False, 12, False).apply("abc") is None

    def test_usplit(self):
        assert USplit("-", 1, False).apply("a-b-c") == "b"
        assert USplit("-", 0, True).apply("a-b-c") == "c"

    def test_usplit_missing_part(self):
        assert USplit("-", 5, False).apply("a-b") is None

    def test_ulower_is_whole_input(self):
        assert ULower().apply("AbC dEf") == "abc def"

    def test_transformation_concatenates(self):
        transformation = UnitTransformation(
            units=(USplit(" ", 1, False), ULiteral(", "), USplit(" ", 0, False))
        )
        assert transformation.apply("John Smith") == "Smith, John"

    def test_literal_only_detection(self):
        assert UnitTransformation(units=(ULiteral("x"),)).literal_only
        assert not UnitTransformation(units=(ULower(),)).literal_only

    def test_synthesis_explains_pair(self):
        for transformation in synthesize_transformations("John Smith", "Smith, John"):
            assert transformation.apply("John Smith") == "Smith, John"

    def test_synthesis_cannot_reverse(self):
        # Anchors need length >= 2, so per-character reversal is out of
        # the language (the mechanism behind CST's 0 F1 on Syn-RV).
        results = synthesize_transformations("abcdefgh", "hgfedcba")
        valid = [t for t in results if t.apply("abcdefgh") == "hgfedcba"]
        assert all(t.literal_only for t in valid) or not valid

    def test_coverage(self):
        transformation = UnitTransformation(units=(ULower(),))
        pairs = [("Ab", "ab"), ("CD", "cd"), ("x", "WRONG")]
        assert coverage(transformation, pairs) == 2


class TestCST:
    def test_learns_single_rule(self):
        joiner = CSTJoiner()
        examples = _examples(("John Smith", "Smith"), ("Mary Jones", "Jones"))
        transformations = joiner.learn(examples)
        assert transformations
        assert transformations[0].apply("Alice Brown") == "Brown"

    def test_learns_multiple_rules(self):
        # CST keeps a ranked *set* of transformations (unlike Auto-join).
        joiner = CSTJoiner(min_coverage=1)
        examples = _examples(
            ("a-b", "a"), ("c-d", "c"), ("e:f", "f"), ("g:h", "h")
        )
        transformations = joiner.learn(examples)
        outputs = {t.apply("x-y") for t in transformations} | {
            t.apply("x:y") for t in transformations
        }
        assert "x" in outputs and "y" in outputs

    def test_join_exact_matches_only(self):
        joiner = CSTJoiner()
        examples = _examples(("ab cd", "cd"), ("ef gh", "gh"))
        output = joiner.join_table(
            ["ij kl", "zz zz"], ["kl", "other"], examples
        )
        assert output.matches[0] == "kl"
        assert output.matches[1] is None  # 'zz' not in targets

    def test_literal_only_candidates_filtered(self):
        joiner = CSTJoiner()
        # Targets unrelated to sources: only literal programs exist.
        examples = _examples(("aaa", "qqq"), ("bbb", "www"))
        transformations = joiner.learn(examples)
        assert all(not t.literal_only for t in transformations)

    def test_name(self):
        assert CSTJoiner().name == "CST"


class TestAutoJoin:
    def test_learns_single_covering_transformation(self):
        joiner = AutoJoinJoiner()
        examples = _examples(("John Smith", "Smith"), ("Mary Jones", "Jones"))
        transformation = joiner.learn(examples)
        assert transformation is not None
        assert transformation.apply("Alice Brown") == "Brown"

    def test_noise_handling_via_subsets(self):
        joiner = AutoJoinJoiner(seed=1)
        examples = _examples(
            ("John Smith", "Smith"),
            ("Mary Jones", "Jones"),
            ("Bob Lee", "Lee"),
            ("Ann Ray", "GARBAGE###"),
        )
        transformation = joiner.learn(examples)
        assert transformation is not None
        assert transformation.apply("Alice Brown") == "Brown"

    def test_empty_examples(self):
        assert AutoJoinJoiner().learn([]) is None

    def test_join(self):
        joiner = AutoJoinJoiner()
        examples = _examples(("a b", "b"), ("c d", "d"))
        output = joiner.join_table(["e f"], ["f", "x"], examples)
        assert output.matches == ("f",)


class TestAFJ:
    def test_fuzzy_join_on_similar_text(self):
        joiner = AFJJoiner()
        sources = ["Justin Trudeau", "Stephen Harper"]
        targets = ["trudeau, justin", "harper, stephen", "unrelated zzz"]
        output = joiner.join_table(sources, targets, [])
        assert output.matches[0] == "trudeau, justin"
        assert output.matches[1] == "harper, stephen"

    def test_no_matches_for_dissimilar_text(self):
        joiner = AFJJoiner()
        sources = ["aaaa bbbb", "cccc dddd"]
        targets = ["zzzz 9999", "xxxx 8888"]
        output = joiner.join_table(sources, targets, [])
        assert all(m is None for m in output.matches)

    def test_substring_targets_match(self):
        joiner = AFJJoiner()
        sources = ["abcdefghijkl", "mnopqrstuvwx"]
        targets = ["cdefghij", "opqrstuv"]
        output = joiner.join_table(sources, targets, [])
        assert output.matches[0] == "cdefghij"

    def test_ignores_examples(self):
        joiner = AFJJoiner()
        with_examples = joiner.join_table(["abc"], ["abc"], _examples(("x", "y")))
        without = joiner.join_table(["abc"], ["abc"], [])
        assert with_examples.matches == without.matches


class TestDitto:
    def test_matches_similar_pairs(self):
        joiner = DittoJoiner()
        examples = _examples(
            ("Justin Trudeau", "trudeau justin"),
            ("Stephen Harper", "harper stephen"),
            ("Paul Martin", "martin paul"),
            ("Jean Chretien", "chretien jean"),
        )
        output = joiner.join_table(
            ["Kim Campbell"], ["campbell kim", "trudeau justin"], examples
        )
        assert output.matches == ("campbell kim",)

    def test_produces_no_predictions(self):
        joiner = DittoJoiner()
        examples = _examples(("a b", "b a"), ("c d", "d c"))
        output = joiner.join_table(["e f"], ["f e"], examples)
        assert output.predictions is None

    def test_deterministic(self):
        joiner = DittoJoiner(seed=4)
        examples = _examples(("ab cd", "cd"), ("ef gh", "gh"), ("ij kl", "kl"))
        a = joiner.join_table(["mn op"], ["op", "zz"], examples)
        b = joiner.join_table(["mn op"], ["op", "zz"], examples)
        assert a.matches == b.matches


class TestDataXFormer:
    def test_kb_relation_join(self):
        kb = build_default_kb()
        joiner = DataXFormerJoiner(kb=kb, kb_coverage=1.0)
        examples = _examples(("Texas", "TX"), ("Ohio", "OH"), ("Iowa", "IA"))
        output = joiner.join_table(
            ["California", "Nevada"], ["CA", "NV", "TX"], examples
        )
        assert output.matches == ("CA", "NV")

    def test_parametric_relations_work_for_kb_systems(self):
        kb = build_default_kb()
        relation = kb.relation("isbn_to_author")
        subjects = sorted(relation.pairs)[:5]
        examples = _examples(*[(s, relation.pairs[s]) for s in subjects[:3]])
        joiner = DataXFormerJoiner(kb=kb, kb_coverage=1.0)
        output = joiner.join_table(
            [subjects[3]], [relation.pairs[subjects[3]]], examples
        )
        assert output.matches == (relation.pairs[subjects[3]],)

    def test_coverage_limits_recall(self):
        kb = build_default_kb()
        relation = kb.relation("state_to_abbreviation")
        examples = _examples(("Texas", "TX"), ("Ohio", "OH"), ("Iowa", "IA"))
        subjects = sorted(relation.pairs)
        full = DataXFormerJoiner(kb=kb, kb_coverage=1.0).join_table(
            subjects, list(relation.pairs.values()), examples
        )
        partial = DataXFormerJoiner(kb=kb, kb_coverage=0.3).join_table(
            subjects, list(relation.pairs.values()), examples
        )
        matched_full = sum(1 for m in full.matches if m)
        matched_partial = sum(1 for m in partial.matches if m)
        assert matched_partial < matched_full

    def test_unknown_relation_yields_no_matches(self):
        joiner = DataXFormerJoiner(kb_coverage=1.0)
        examples = _examples(("foo", "bar"), ("baz", "qux"))
        output = joiner.join_table(["x"], ["y"], examples)
        assert output.matches == (None,)

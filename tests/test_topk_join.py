"""Contract tests for the redesigned join API (top-k / composite / reverse).

The brute reference (``EditDistanceJoiner``) defines every contract;
the blocked (``IndexedJoiner``) and parallel (``n_workers > 1``) paths
must be byte-identical to it — same ranked triples, same earliest-row
tie-breaks, same margin abstentions — on every registered benchmark
dataset including the journal-abbreviation family.  ``k=1`` with the
margin disabled must collapse back to ``join_many`` exactly, so the
old argmin surface is a special case of the new one, not a sibling.
"""

from __future__ import annotations

import random

import pytest
from repro.utils.fuzz import random_edits, random_unicode_string

from repro.core.join_config import (
    JoinAPIDeprecationWarning,
    JoinConfig,
    fold_legacy_kwargs,
    reset_deprecation_warnings,
)
from repro.core.joiner import EditDistanceJoiner, invert_matches
from repro.datagen.benchmarks.registry import dataset_names, get_dataset
from repro.exceptions import JoinError
from repro.index import AutoJoiner, IndexCache, IndexedJoiner
from repro.types import Prediction

_SEED = 4021


def _probes_for(targets, rng):
    """Noisy probes: exact, near-miss, far, and empty rows."""
    probes = []
    for target in targets:
        roll = rng.random()
        if roll < 0.35:
            probes.append(target)
        elif roll < 0.75:
            probes.append(random_edits(rng, target, rng.randint(1, 3)))
        elif roll < 0.9:
            probes.append(random_unicode_string(rng, max_length=12))
        else:
            probes.append("")
    return probes


class TestTopKEquivalence:
    """Blocked and parallel top-k must match the brute reference."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_topk_identical_on_dataset(self, name):
        rng = random.Random(_SEED)
        tables = get_dataset(name, seed=0, scale=0.05)
        brute = EditDistanceJoiner()
        blocked = IndexedJoiner(cache=IndexCache())
        for table in tables:
            targets = list(table.targets)
            probes = _probes_for(targets, rng)
            for k in (1, 3, 7):
                assert blocked.topk_many(probes, targets, k) == brute.topk_many(
                    probes, targets, k
                ), (name, table.name, k)

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("name", dataset_names())
    def test_parallel_topk_identical_on_dataset(self, name, n_workers):
        rng = random.Random(_SEED + n_workers)
        tables = get_dataset(name, seed=0, scale=0.05)
        brute = EditDistanceJoiner()
        config = JoinConfig(n_workers=n_workers, parallel_threshold=0)
        with IndexedJoiner(config, cache=IndexCache()) as sharded:
            for table in tables:
                targets = list(table.targets)
                probes = _probes_for(targets, rng)
                assert sharded.topk_many(probes, targets, 4) == brute.topk_many(
                    probes, targets, 4
                ), (name, table.name, n_workers)

    def test_topk_join_many_identical_with_margin(self):
        rng = random.Random(_SEED + 50)
        tables = get_dataset("JAB", seed=0, scale=0.15)
        config = JoinConfig(margin=0.08)
        brute = EditDistanceJoiner(config)
        blocked = IndexedJoiner(config, cache=IndexCache())
        for table in tables:
            targets = list(table.targets)
            probes = _probes_for(targets, rng)
            assert blocked.topk_join_many(probes, targets, k=3) == (
                brute.topk_join_many(probes, targets, k=3)
            ), table.name

    def test_auto_joiner_delegates_topk(self):
        targets = [f"value-{i:04d}" for i in range(30)]
        probes = ["value-0007", "valeu-0012", ""]
        brute = EditDistanceJoiner()
        for auto_threshold in (1, 10_000):
            auto = AutoJoiner(JoinConfig(auto_threshold=auto_threshold))
            assert auto.topk_many(probes, targets, 3) == brute.topk_many(
                probes, targets, 3
            ), auto_threshold


class TestTopKContract:
    """The ranked-candidate-set semantics the engines all share."""

    def test_ranks_distinct_values_earliest_row(self):
        targets = ["abc", "abd", "abc", "xyz", "abd"]
        joiner = EditDistanceJoiner()
        [ranked] = joiner.topk_many(["abc"], targets, 3)
        assert ranked == [(0, 0, "abc"), (1, 1, "abd"), (3, 3, "xyz")]

    def test_k_larger_than_distinct_values(self):
        targets = ["aa", "aa", "bb"]
        [ranked] = EditDistanceJoiner().topk_many(["aa"], targets, 10)
        assert ranked == [(0, 0, "aa"), (2, 2, "bb")]

    def test_empty_probe_ranks_nothing(self):
        assert EditDistanceJoiner().topk_many([""], ["abc"], 2) == [[]]
        assert IndexedJoiner(cache=IndexCache()).topk_many(
            [""], ["abc"], 2
        ) == [[]]

    def test_validation(self):
        joiner = EditDistanceJoiner()
        with pytest.raises(JoinError):
            joiner.topk_many(["a"], [], 1)
        for bad_k in (0, -1, 1.5, True, "2"):
            with pytest.raises(ValueError):
                joiner.topk_many(["a"], ["b"], bad_k)

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            EditDistanceJoiner().topk_join_many(["a"], ["b"], margin=-0.1)


class TestK1BackCompat:
    """``k=1`` margin-disabled must be byte-identical to ``join_many``."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_k1_matches_join_many(self, name):
        rng = random.Random(_SEED + 100)
        tables = get_dataset(name, seed=0, scale=0.05)
        for config in (JoinConfig(), JoinConfig(normalized_threshold=0.34)):
            brute = EditDistanceJoiner(config)
            blocked = IndexedJoiner(config, cache=IndexCache())
            for table in tables:
                targets = list(table.targets)
                probes = _probes_for(targets, rng)
                argmin = blocked.join_many(probes, targets)
                topk = brute.topk_join_many(probes, targets, k=1, margin=0.0)
                assert [(r.matched, r.distance) for r in topk] == argmin, (
                    name,
                    table.name,
                    config,
                )

    def test_k1_margin_zero_disables_abstention(self):
        targets = ["abcd", "abce"]
        results = EditDistanceJoiner().topk_join_many(
            ["abcd"], targets, k=1, margin=0.0
        )
        assert results[0].matched == "abcd"
        # With the rule disabled, the rank-2 candidate is never ranked
        # at k=1, so no gap is observed.
        assert results[0].margin is None


class TestMarginAbstention:
    def test_ambiguous_probe_abstains(self):
        # Two candidates one edit apart: gap = 1/len(probe).
        targets = ["abcdefgh", "abcdefgx"]
        joiner = EditDistanceJoiner()
        [tight] = joiner.topk_join_many(["abcdefgh"], targets, k=1, margin=0.5)
        assert tight.matched is None
        assert tight.margin == pytest.approx(1 / 8)
        [loose] = joiner.topk_join_many(["abcdefgh"], targets, k=1, margin=0.1)
        assert loose.matched == "abcdefgh"

    def test_single_candidate_column_is_accepted(self):
        [result] = EditDistanceJoiner().topk_join_many(
            ["abc"], ["abc", "abc"], k=1, margin=0.9
        )
        assert result.matched == "abc"
        assert result.margin is None

    def test_margin_ranks_two_even_at_k1(self):
        targets = ["aaaa", "zzzz"]
        [result] = EditDistanceJoiner().topk_join_many(
            ["aaaa"], targets, k=1, margin=0.5
        )
        # The rank-2 candidate was consulted (gap recorded) but only k
        # candidates are returned.
        assert result.margin == pytest.approx(1.0)
        assert len(result.candidates) == 1
        assert result.matched == "aaaa"

    def test_config_defaults_apply(self):
        joiner = EditDistanceJoiner(JoinConfig(k=2, margin=0.5))
        [result] = joiner.topk_join_many(["abcdefgh"], ["abcdefgh", "abcdefgx"])
        assert result.matched is None
        assert len(result.candidates) == 2


class TestJoinTopK:
    def test_carries_source_and_expected(self):
        predictions = [Prediction(source="s0", value="abc")]
        results = EditDistanceJoiner().join_topk(
            predictions, ["abc", "abd"], ["abc"], k=2
        )
        assert results[0].source == "s0"
        assert results[0].expected == "abc"
        assert results[0].correct
        assert [c.value for c in results[0].candidates] == ["abc", "abd"]

    def test_expected_length_mismatch(self):
        with pytest.raises(JoinError):
            EditDistanceJoiner().join_topk(
                [Prediction(source="s", value="a")], ["a"], ["a", "b"]
            )

    def test_to_dict_round_trip_shape(self):
        [result] = EditDistanceJoiner().join_topk(
            [Prediction(source="s0", value="abc")], ["abc"], k=1
        )
        payload = result.to_dict()
        assert payload["matched"] == "abc"
        assert payload["candidates"] == [
            {"value": "abc", "distance": 0, "row": 0}
        ]


class TestReverseJoin:
    @pytest.mark.parametrize("name", dataset_names())
    def test_reverse_identical_on_dataset(self, name):
        rng = random.Random(_SEED + 200)
        tables = get_dataset(name, seed=0, scale=0.05)
        brute = EditDistanceJoiner()
        blocked = IndexedJoiner(cache=IndexCache())
        for table in tables:
            targets = list(table.targets)
            probes = _probes_for(targets, rng)
            assert blocked.reverse_many(probes, targets) == brute.reverse_many(
                probes, targets
            ), (name, table.name)

    def test_groups_on_earliest_duplicate_row(self):
        targets = ["aa", "bb", "aa"]
        groups = EditDistanceJoiner().reverse_many(["aa", "bb", "ab"], targets)
        # "ab" ties between "aa" (row 0) and "bb" (row 1); earliest wins.
        assert groups == [[0, 2], [1], []]

    def test_unmatched_probes_appear_nowhere(self):
        joiner = EditDistanceJoiner(JoinConfig(max_distance=0))
        groups = joiner.reverse_many(["aa", "zz", ""], ["aa", "bb"])
        assert groups == [[0], []]

    def test_invert_matches_is_the_shared_inversion(self):
        targets = ["x", "y", "x"]
        matches = [("x", 0), (None, 3), ("y", 1)]
        assert invert_matches(matches, targets) == [[0], [2], []]


class TestCompositeKeys:
    @pytest.mark.parametrize("name", dataset_names())
    def test_composite_identical_on_dataset(self, name):
        rng = random.Random(_SEED + 300)
        tables = get_dataset(name, seed=0, scale=0.05)
        brute = EditDistanceJoiner()
        blocked = IndexedJoiner(cache=IndexCache())
        for table in tables[:4]:
            targets = list(table.targets)
            aux = [f"{len(t):03d}" for t in targets]
            probes = [
                (probe, random_edits(rng, key, rng.randint(0, 1)))
                for probe, key in zip(_probes_for(targets, rng), aux)
            ]
            assert blocked.join_composite(probes, [targets, aux]) == (
                brute.join_composite(probes, [targets, aux])
            ), (name, table.name)

    def test_jab_issn_column_disambiguates(self):
        """The JAB metadata ISSNs resolve title-only ties."""
        tables = get_dataset("JAB", seed=0, scale=0.15)
        brute = EditDistanceJoiner()
        blocked = IndexedJoiner(cache=IndexCache())
        for table in tables:
            titles = list(table.targets)
            issns = list(table.metadata["target_issns"])
            probes = list(
                zip(table.sources, table.metadata["source_issns"])
            )
            composite = blocked.join_composite(probes, [titles, issns])
            assert composite == brute.join_composite(probes, [titles, issns])
            # Alignment is the ground truth: the summed key must
            # recover at least as many correct rows as the title alone.
            title_only = blocked.join_many(table.sources, titles)
            earliest = {}
            for row, title in enumerate(titles):
                earliest.setdefault(title, row)
            title_hits = sum(
                1
                for i, (matched, _) in enumerate(title_only)
                if matched is not None and earliest[matched] == i
            )
            composite_hits = sum(
                1 for i, (row, _) in enumerate(composite) if row == i
            )
            assert composite_hits >= title_hits, table.name

    def test_validation(self):
        joiner = EditDistanceJoiner()
        with pytest.raises(JoinError):
            joiner.join_composite([("a",)], [])
        with pytest.raises(JoinError):
            joiner.join_composite([("a",)], [[], []])
        with pytest.raises(JoinError):
            joiner.join_composite([("a", "b")], [["x"]])
        with pytest.raises(JoinError):
            joiner.join_composite([("a",)], [["x"], ["y", "z"]])

    def test_all_empty_probe_abstains(self):
        assert EditDistanceJoiner().join_composite(
            [("", "")], [["a"], ["b"]]
        ) == [(None, 0)]

    def test_composite_thresholds_sum_semantics(self):
        columns = [["abcd"], ["wxyz"]]
        # Summed distance 2 (one edit per column) over tuple length 8.
        capped = EditDistanceJoiner(JoinConfig(max_distance=1))
        assert capped.join_composite([("abcx", "wxyj")], columns) == [(None, 2)]
        normalized = EditDistanceJoiner(JoinConfig(normalized_threshold=0.25))
        assert normalized.join_composite([("abcx", "wxyj")], columns) == [
            (0, 2)
        ]
        tight = EditDistanceJoiner(JoinConfig(normalized_threshold=0.1))
        assert tight.join_composite([("abcx", "wxyj")], columns) == [(None, 2)]


class TestJoinConfig:
    def test_defaults(self):
        config = JoinConfig()
        assert config.mode == "argmin"
        assert config.k == 1
        assert config.margin is None
        assert config.auto_threshold == 256

    def test_frozen(self):
        with pytest.raises(AttributeError):
            JoinConfig().k = 2

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinConfig(mode="nearest")
        for bad_k in (0, -2, True, 1.5):
            with pytest.raises(ValueError):
                JoinConfig(k=bad_k)
        with pytest.raises(ValueError):
            JoinConfig(margin=-0.5)
        with pytest.raises(ValueError):
            JoinConfig(n_workers=0)
        with pytest.raises(ValueError):
            JoinConfig(parallel_threshold=-1)

    def test_config_flows_to_joiner_attributes(self):
        config = JoinConfig(mode="topk", k=4, margin=0.2, max_distance=3)
        joiner = IndexedJoiner(config, cache=IndexCache())
        assert joiner.mode == "topk"
        assert joiner.k == 4
        assert joiner.margin == 0.2
        assert joiner.max_distance == 3


class TestDeprecationShim:
    def setup_method(self):
        reset_deprecation_warnings()

    def teardown_method(self):
        reset_deprecation_warnings()

    def test_legacy_kwargs_warn_once_per_caller(self):
        with pytest.warns(JoinAPIDeprecationWarning, match="max_distance"):
            joiner = EditDistanceJoiner(max_distance=2)
        assert joiner.max_distance == 2
        # Second use from the same call site is silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EditDistanceJoiner(max_distance=3)

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(TypeError):
            fold_legacy_kwargs("caller", JoinConfig(), max_distance=1)

    def test_reset_reenables_warning(self):
        with pytest.warns(JoinAPIDeprecationWarning):
            fold_legacy_kwargs("reset-case", None, q=3)
        reset_deprecation_warnings()
        with pytest.warns(JoinAPIDeprecationWarning):
            fold_legacy_kwargs("reset-case", None, q=3)

    def test_none_means_not_passed(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = fold_legacy_kwargs("silent-case", None, max_distance=None)
        assert config == JoinConfig()

"""Tests for the core data types."""

from __future__ import annotations

import pytest

from repro.types import ExamplePair, JoinResult, Prediction, TablePair


class TestExamplePair:
    def test_as_tuple(self):
        assert ExamplePair("a", "b").as_tuple() == ("a", "b")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExamplePair("a", "b").source = "c"  # type: ignore[misc]

    def test_equality(self):
        assert ExamplePair("a", "b") == ExamplePair("a", "b")
        assert ExamplePair("a", "b") != ExamplePair("a", "c")


class TestTablePair:
    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            TablePair(name="t", sources=("a", "b"), targets=("x",))

    def test_len_and_rows(self):
        table = TablePair(name="t", sources=("a", "b"), targets=("x", "y"))
        assert len(table) == 2
        assert list(table.rows()) == [ExamplePair("a", "x"), ExamplePair("b", "y")]

    def test_split_halves(self):
        table = TablePair(
            name="t",
            sources=tuple(f"s{i}" for i in range(10)),
            targets=tuple(f"t{i}" for i in range(10)),
        )
        pool, test = table.split(0.5)
        assert len(pool) == 5
        assert len(test) == 5
        assert pool[0] == ExamplePair("s0", "t0")
        assert test[0] == ExamplePair("s5", "t5")

    def test_split_never_empties_test_set(self):
        table = TablePair(name="t", sources=("a", "b"), targets=("x", "y"))
        pool, test = table.split(0.99)
        assert pool and test

    def test_split_invalid_fraction(self):
        table = TablePair(name="t", sources=("a",), targets=("x",))
        with pytest.raises(ValueError):
            table.split(0.0)
        with pytest.raises(ValueError):
            table.split(1.0)

    def test_with_rows(self):
        table = TablePair(name="t", sources=("a",), targets=("x",))
        replaced = table.with_rows(["b", "c"], ["y", "z"])
        assert replaced.sources == ("b", "c")
        assert replaced.name == "t"


class TestPrediction:
    def test_abstained(self):
        assert Prediction(source="s", value="").abstained
        assert not Prediction(source="s", value="v").abstained

    def test_consistency(self):
        pred = Prediction(source="s", value="v", candidates=("v", "v", "x"), votes=2)
        assert pred.consistency == pytest.approx(2 / 3)

    def test_consistency_empty_candidates(self):
        assert Prediction(source="s", value="v").consistency == 0.0


class TestJoinResult:
    def test_correct_requires_match_equal_expected(self):
        assert JoinResult("s", "p", matched="t", expected="t").correct
        assert not JoinResult("s", "p", matched="u", expected="t").correct
        assert not JoinResult("s", "p", matched=None, expected="t").correct

"""Equivalence and scheduling tests for the incremental generation engine.

The contract mirrors the join engine's: the incremental greedy decode
must be byte-identical to the pre-refactor full-prefix greedy decode
(``ByteSeq2SeqModel.generate_full_prefix``) on every prompt, across
random prompts, early-EOS batches, max-length truncation, and single-row
batches.  Scheduling behaviour (dedupe, bucketing, compaction, the
non-incremental fallback) is unit-tested against a scripted fake model.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import DTTPipeline, IncrementalSequenceModel, MultiModelAggregator
from repro.exceptions import ModelError
from repro.infer import GenerationEngine
from repro.model import ByteSeq2SeqModel, DTTModelConfig, Trainer
from repro.model.config import TINY_CONFIG
from repro.nn.attention import KVCache, MultiHeadAttention, causal_bias
from repro.types import ExamplePair

_ALPHABET = "abcdefgh 0123456789-_./"


def _random_prompt(rng: random.Random, max_piece: int = 20) -> str:
    def piece(limit: int) -> str:
        return "".join(
            rng.choice(_ALPHABET) for _ in range(rng.randint(1, limit))
        )

    return (
        f"<sos>{piece(max_piece)}<tr>{piece(12)}<eoe>"
        f"{piece(max_piece)}<tr>{piece(12)}<eoe>{piece(max_piece)}<tr><eos>"
    )


def _random_prompts(seed: int, count: int) -> list[str]:
    rng = random.Random(seed)
    return [_random_prompt(rng) for _ in range(count)]


@pytest.fixture(scope="module")
def trained_model() -> ByteSeq2SeqModel:
    """A tiny model trained on the copy task, so rows emit early EOS."""
    from repro.datagen.training import TrainingInstance

    items = "abcdefgh"
    instances = [
        TrainingInstance(
            prompt=f"<sos>{a}<tr>{a}<eoe>{b}<tr>{b}<eoe>{c}<tr><eos>",
            label=c,
        )
        for a in items
        for b in items
        for c in items[:4]
        if a != b
    ]
    model = ByteSeq2SeqModel(TINY_CONFIG)
    Trainer(model, learning_rate=3e-3, batch_size=32).fit(instances, epochs=6)
    return model


class TestIncrementalEquivalence:
    """Incremental greedy decode is byte-identical to full-prefix decode."""

    def test_random_prompts_byte_identical(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(11, 30)
        prompts += prompts[:8]  # exact duplicates across "trials"
        engine = GenerationEngine(max_batch_size=8, bucket_width=4)
        assert engine.generate(model, prompts) == model.generate_full_prefix(
            prompts
        )

    def test_model_generate_routes_through_engine(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(12, 10)
        assert model.generate(prompts) == model.generate_full_prefix(prompts)

    def test_early_eos_batches(self, trained_model):
        # Copy-task rows emit <eos> after a couple of tokens, at
        # different steps per row, exercising live compaction.
        prompts = [
            f"<sos>{a}<tr>{a}<eoe>{b}<tr>{b}<eoe>{q}<tr><eos>"
            for a, b, q in [
                ("a", "b", "c"),
                ("d", "e", "f"),
                ("g", "h", "ab"),
                ("b", "c", "dd"),
                ("e", "f", "a"),
            ]
        ]
        engine = GenerationEngine()
        got = engine.generate(trained_model, prompts)
        assert got == trained_model.generate_full_prefix(prompts)
        # Every row emitted <eos> well before the step budget, so the
        # decode terminated early (exact per-step compaction accounting
        # is covered by the scripted-fake test below).
        stats = engine.last_stats
        max_steps = trained_model.config.max_output_length - 1
        assert stats.steps < max_steps * stats.chunks

    def test_max_length_truncation(self):
        config = DTTModelConfig(
            dim=32,
            n_heads=2,
            encoder_layers=1,
            decoder_layers=1,
            ffn_hidden=32,
            max_input_length=64,
            max_output_length=4,
        )
        model = ByteSeq2SeqModel(config)
        prompts = _random_prompts(13, 12)
        engine = GenerationEngine(max_batch_size=4)
        assert engine.generate(model, prompts) == model.generate_full_prefix(
            prompts
        )

    def test_single_row_batches(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(14, 6)
        engine = GenerationEngine(max_batch_size=1)
        got = engine.generate(model, prompts)
        assert got == model.generate_full_prefix(prompts)
        assert engine.last_stats.chunks == len(set(prompts))

    def test_one_prompt(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(15, 1)
        assert model.generate(prompts) == model.generate_full_prefix(prompts)

    def test_empty_prompt_list(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        assert model.generate([]) == []

    def test_zero_token_prompts_decode_without_crashing(self):
        # "" tokenizes to zero tokens and lands alone in the length-0
        # bucket; the session pads the encoder input to width 1 and the
        # degeneracy guard takes over (documented divergence from the
        # batch path, which is why it is excluded from the
        # byte-identical claim).
        model = ByteSeq2SeqModel(TINY_CONFIG)
        engine = GenerationEngine()
        prompts = ["", "<sos>ab<tr><eos>"]
        outputs = engine.generate(model, prompts)
        assert len(outputs) == 2
        assert all(isinstance(o, str) for o in outputs)
        assert outputs == engine.generate(model, prompts)  # deterministic
        # Non-empty prompts keep the byte-identical contract.
        assert outputs[1] == model.generate_full_prefix([prompts[1]])[0]

    def test_trained_model_still_copies(self, trained_model):
        outputs = trained_model.generate(
            ["<sos>a<tr>a<eoe>b<tr>b<eoe>c<tr><eos>"]
        )
        assert outputs == ["c"]

    def test_decode_step_matches_full_decode(self):
        # nn-level: stepping the decoder token by token reproduces the
        # teacher-forcing decode at every position, not just the last.
        from repro.nn.transformer import Seq2SeqTransformer

        net = Seq2SeqTransformer(
            vocab_size=40,
            dim=32,
            n_heads=2,
            encoder_layers=2,
            decoder_layers=2,
            ffn_hidden=64,
            max_length=64,
            seed=3,
        )
        rng = np.random.default_rng(0)
        input_ids = rng.integers(0, 40, size=(3, 11))
        mask = np.ones((3, 11))
        mask[0, 7:] = 0.0
        mask[2, 4:] = 0.0
        target_ids = rng.integers(0, 40, size=(3, 9))
        memory = net.encode(input_ids, mask)
        full = net.decode(target_ids, memory, mask)

        state = net.start_decoder_state(memory, mask, capacity=9)
        stepped = np.stack(
            [net.decode_step(target_ids[:, t], state) for t in range(9)],
            axis=1,
        )
        np.testing.assert_allclose(stepped, full, rtol=0, atol=1e-12)
        assert np.array_equal(stepped.argmax(-1), full.argmax(-1))


class _FakeSession:
    """Scripted decode session: row i emits ``scripts[i]`` then EOS."""

    sos_id = 1
    eos_id = 2

    def __init__(self, scripts: list[list[int]], max_steps: int) -> None:
        self.scripts = [list(s) for s in scripts]
        self.max_steps = max_steps
        self.clock = 0
        self.batch_sizes: list[int] = []

    def step(self, token_ids: np.ndarray) -> np.ndarray:
        self.batch_sizes.append(len(token_ids))
        logits = np.zeros((len(token_ids), 300))
        for slot, script in enumerate(self.scripts):
            token = script[self.clock] if self.clock < len(script) else self.eos_id
            logits[slot, token] = 1.0
        self.clock += 1
        return logits

    def compact(self, keep: np.ndarray) -> None:
        self.scripts = [s for s, k in zip(self.scripts, keep) if k]

    def decode_tokens(self, token_ids) -> str:
        return "".join(chr(t) for t in token_ids if t != self.eos_id)


class _FakeIncrementalModel:
    """Maps each prompt to a scripted output; decodes only via sessions."""

    name = "fake"

    def __init__(self, outputs: dict[str, str], max_steps: int = 10) -> None:
        self.outputs = outputs
        self.max_steps = max_steps
        self.sessions: list[_FakeSession] = []

    def generate(self, prompts):
        raise AssertionError("engine must own the incremental decode loop")

    def tokenize_prompts(self, prompts):
        return [[ord(c) for c in p] for p in prompts]

    def start_decode(self, prompt_ids):
        scripts = [
            [ord(c) for c in self.outputs["".join(chr(i) for i in ids)]]
            for ids in prompt_ids
        ]
        session = _FakeSession(scripts, self.max_steps)
        self.sessions.append(session)
        return session


class _StaticModel:
    """A plain SequenceModel without the incremental interface."""

    name = "static"

    def __init__(self, answer: str = "fixed") -> None:
        self.answer = answer
        self.calls = 0

    def generate(self, prompts):
        self.calls += 1
        return [self.answer for _ in prompts]


class TestEngineScheduling:
    def test_fake_model_satisfies_protocol(self):
        model = _FakeIncrementalModel({})
        assert isinstance(model, IncrementalSequenceModel)
        assert not isinstance(_StaticModel(), IncrementalSequenceModel)

    def test_dedupe_decodes_each_unique_prompt_once(self):
        model = _FakeIncrementalModel({"aa": "xy", "bb": "z"})
        engine = GenerationEngine()
        outputs = engine.generate(model, ["aa", "bb", "aa", "aa", "bb"])
        assert outputs == ["xy", "z", "xy", "xy", "z"]
        assert engine.last_stats.prompts == 5
        assert engine.last_stats.decoded_rows == 2

    def test_dedupe_disabled_decodes_every_row(self):
        model = _FakeIncrementalModel({"aa": "xy"})
        engine = GenerationEngine(dedupe=False)
        engine.generate(model, ["aa", "aa", "aa"])
        assert engine.last_stats.decoded_rows == 3

    def test_compaction_shrinks_live_batch(self):
        # Rows finish at steps 1, 2, 3, and 6: the live batch must
        # shrink as each row emits EOS instead of dragging along.
        model = _FakeIncrementalModel(
            {"a": "", "b": "x", "c": "xy", "d": "xyzzy"}
        )
        engine = GenerationEngine(bucket_width=64)
        outputs = engine.generate(model, ["a", "b", "c", "d"])
        assert outputs == ["", "x", "xy", "xyzzy"]
        (session,) = model.sessions
        assert session.batch_sizes == [4, 3, 2, 1, 1, 1]

    def test_length_bucketing_chunks_by_prompt_length(self):
        outputs = {"a": "1", "bb": "2", "cc": "3", "ddddddddd": "4"}
        model = _FakeIncrementalModel(outputs)
        engine = GenerationEngine(bucket_width=2)
        got = engine.generate(model, list(outputs))
        assert got == ["1", "2", "3", "4"]
        # Buckets: len 1 | len 2, 2 | len 9 -> three sessions.
        assert [len(s.scripts) for s in model.sessions] == [1, 2, 1]

    def test_max_batch_size_splits_buckets(self):
        outputs = {f"p{i}": str(i) for i in range(5)}
        model = _FakeIncrementalModel(outputs)
        engine = GenerationEngine(max_batch_size=2, bucket_width=64)
        assert engine.generate(model, list(outputs)) == list(outputs.values())
        assert engine.last_stats.chunks == 3

    def test_fallback_for_non_incremental_models(self):
        model = _StaticModel("out")
        engine = GenerationEngine()
        assert engine.generate(model, ["p1", "p2"]) == ["out", "out"]
        assert model.calls == 1

    def test_fallback_refreshes_stats(self):
        engine = GenerationEngine()
        engine.generate(_FakeIncrementalModel({"aa": "x"}), ["aa", "aa"])
        engine.generate(_StaticModel("s"), ["p1", "p2", "p3"])
        assert engine.last_stats.prompts == 3
        assert engine.last_stats.decoded_rows == 0

    def test_model_level_engine_overrides_scheduler(self):
        # A model configured with its own (sampling) engine keeps that
        # behaviour even when a greedy scheduler drives the ensemble:
        # the most specific engine wins.
        model = ByteSeq2SeqModel(
            TINY_CONFIG, engine=GenerationEngine(mode="sample", seed=4)
        )
        scheduler = GenerationEngine()
        prompts = _random_prompts(19, 1) * 3
        outputs = scheduler.generate(model, prompts)
        assert outputs == model.engine.generate(model, prompts)
        # Sampling never dedupes, so all three duplicates decoded.
        assert model.engine.last_stats.decoded_rows == 3
        assert scheduler.last_stats == model.engine.last_stats

    def test_run_schedules_mixed_ensembles(self):
        incremental = _FakeIncrementalModel({"p": "inc"})
        static = _StaticModel("sur")
        engine = GenerationEngine()
        outputs = engine.run([(incremental, ["p", "p"]), (static, ["p", "p"])])
        assert outputs == [["inc", "inc"], ["sur", "sur"]]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            GenerationEngine(mode="beam")
        with pytest.raises(ValueError):
            GenerationEngine(mode="sample", temperature=0.0)
        with pytest.raises(ValueError):
            GenerationEngine(max_batch_size=0)
        with pytest.raises(ValueError):
            GenerationEngine(bucket_width=0)


class TestSampledMode:
    def test_sampling_is_deterministic_given_seed(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(16, 6)
        engine = GenerationEngine(mode="sample", temperature=1.0, seed=5)
        assert engine.generate(model, prompts) == engine.generate(
            model, prompts
        )

    def test_different_seeds_differ(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        prompts = _random_prompts(17, 6)
        first = GenerationEngine(mode="sample", seed=1).generate(model, prompts)
        second = GenerationEngine(mode="sample", seed=2).generate(model, prompts)
        assert first != second

    def test_sampling_never_dedupes(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        engine = GenerationEngine(mode="sample", seed=3, dedupe=True)
        prompts = _random_prompts(18, 1) * 4
        engine.generate(model, prompts)
        assert engine.last_stats.decoded_rows == 4


class TestEngineInPipeline:
    def test_pipeline_with_neural_model(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        pipeline = DTTPipeline(
            model, n_trials=2, engine=GenerationEngine(max_batch_size=16)
        )
        examples = [
            ExamplePair("aa", "AA"),
            ExamplePair("bb", "BB"),
            ExamplePair("cc", "CC"),
        ]
        predictions = pipeline.transform_column(["dd", "ee"], examples)
        assert len(predictions) == 2
        assert pipeline.engine.last_stats.prompts > 0

    def test_mixed_ensemble_pools_candidates(self):
        ensemble = MultiModelAggregator(
            [_FakeIncrementalModel({"p": "inc"}), _StaticModel("sur")]
        )
        assert ensemble.generate_candidates(["p", "p"]) == [
            ["inc", "sur"],
            ["inc", "sur"],
        ]


class TestAttentionIncrementals:
    def test_causal_bias_cached_and_readonly(self):
        first = causal_bias(5, 5)
        # Views over one shared backing mask, never rebuilt per shape.
        assert causal_bias(5, 5).base is first.base
        assert causal_bias(3, 7).base is first.base
        assert not first.flags.writeable
        assert first[2, 3] < -1e8 and first[3, 2] == 0.0
        # Top-aligned slices match the np.tril the decoder used to build.
        np.testing.assert_array_equal(
            causal_bias(3, 7),
            (1.0 - np.tril(np.ones((3, 7)))) * -1e9,
        )

    def test_kv_cache_overflow_raises(self):
        cache = KVCache(batch=1, n_heads=2, capacity=1, head_dim=4)
        step = np.zeros((1, 2, 1, 4))
        cache.append(step, step)
        with pytest.raises(ModelError):
            cache.append(step, step)

    def test_kv_cache_select_keeps_rows(self):
        cache = KVCache(batch=3, n_heads=2, capacity=4, head_dim=4)
        step = np.arange(3 * 2 * 4, dtype=float).reshape(3, 2, 1, 4)
        cache.append(step, step)
        cache.select(np.array([True, False, True]))
        keys, _ = cache.view()
        assert keys.shape == (2, 2, 1, 4)
        np.testing.assert_array_equal(keys, step[[0, 2]])

    def test_fully_padded_rows_yield_zero_context(self):
        # Degenerate masked softmax: with zero real keys the incremental
        # path must not average over padding — the context is defined as
        # zero, so only the output projection's bias survives.
        rng = np.random.default_rng(0)
        attention = MultiHeadAttention(dim=8, n_heads=2, rng=rng)
        memory = rng.normal(size=(2, 5, 8))
        queries = rng.normal(size=(2, 1, 8))
        keys, values = attention.project_kv(memory)
        key_mask = np.ones((2, 5))
        key_mask[1, :] = 0.0  # row 1 has no real keys
        out = attention.attend_cached(queries, keys, values, key_mask)
        np.testing.assert_array_equal(
            out[1, 0], attention.output_proj.bias.value
        )
        assert np.isfinite(out).all()

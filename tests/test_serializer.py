"""Tests for the decomposer and prompt serializer (§4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serializer import Decomposer, PromptSerializer
from repro.exceptions import SerializationError
from repro.types import ExamplePair

clean = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="<>"),
    max_size=16,
)


class TestPromptSerializer:
    def test_paper_example(self, pm_examples):
        serializer = PromptSerializer()
        prompt = serializer.serialize(pm_examples[:2], "Jean Chretien")
        assert prompt == (
            "<sos>Justin Trudeau<tr>jtrudeau<eoe>"
            "Stephen Harper<tr>sharper<eoe>"
            "Jean Chretien<tr><eos>"
        )

    def test_label_serialization(self):
        assert PromptSerializer().serialize_label("jchretien") == "<sos>jchretien<eos>"

    def test_parse_roundtrip(self, pm_examples):
        serializer = PromptSerializer()
        prompt = serializer.serialize(pm_examples, "Kim Campbell")
        context, query = serializer.parse(prompt)
        assert context == pm_examples
        assert query == "Kim Campbell"

    @given(st.lists(st.tuples(clean, clean), min_size=1, max_size=4), clean)
    @settings(max_examples=100)
    def test_roundtrip_arbitrary(self, pairs, query):
        serializer = PromptSerializer()
        context = [ExamplePair(s, t) for s, t in pairs]
        parsed_context, parsed_query = serializer.parse(
            serializer.serialize(context, query)
        )
        assert parsed_context == context
        assert parsed_query == query

    @pytest.mark.parametrize(
        "bad",
        [
            "no markers at all",
            "<sos>missing eos",
            "missing sos<eos>",
            "<sos>a<tr>b<eoe>c<eos>",  # query lacks trailing <tr>
            "<sos>a<eoe>b<tr><eos>",  # example lacks <tr>
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(SerializationError):
            PromptSerializer().parse(bad)


class TestDecomposer:
    def test_enumerate_contexts_is_eq2(self, pm_examples):
        decomposer = Decomposer(context_size=2)
        contexts = decomposer.enumerate_contexts(pm_examples)
        assert len(contexts) == 3  # C(3, 2)
        assert all(len(c) == 2 for c in contexts)

    def test_enumerate_needs_enough_examples(self, pm_examples):
        with pytest.raises(SerializationError):
            Decomposer(context_size=5).enumerate_contexts(pm_examples)

    def test_decompose_counts(self, pm_examples):
        decomposer = Decomposer(context_size=2, n_trials=5, seed=1)
        subtasks = decomposer.decompose(["a", "b"], pm_examples)
        assert len(subtasks) == 10
        assert {t.row_index for t in subtasks} == {0, 1}
        assert {t.trial for t in subtasks} == set(range(5))

    def test_contexts_have_distinct_examples(self, pm_examples):
        decomposer = Decomposer(context_size=2, n_trials=8, seed=2)
        for task in decomposer.decompose(["query"], pm_examples):
            assert task.context[0] != task.context[1]

    def test_deterministic_under_seed(self, pm_examples):
        a = Decomposer(seed=3).decompose(["q"], pm_examples)
        b = Decomposer(seed=3).decompose(["q"], pm_examples)
        assert a == b

    def test_different_rows_get_different_context_streams(self, pm_examples):
        decomposer = Decomposer(context_size=2, n_trials=4, seed=0)
        tasks = decomposer.decompose(["q1", "q2"], pm_examples)
        first = [t.context for t in tasks if t.row_index == 0]
        second = [t.context for t in tasks if t.row_index == 1]
        assert first != second

    def test_empty_pool_rejected(self):
        with pytest.raises(SerializationError):
            Decomposer().decompose(["q"], [])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Decomposer(context_size=0)
        with pytest.raises(ValueError):
            Decomposer(n_trials=0)

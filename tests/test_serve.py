"""Serving layer: equivalence, lifecycle, caching, and the HTTP front.

The service's contract is that coalescing is *invisible*: whatever the
interleaving of concurrent clients, every response is byte-identical to
a direct ``DTTPipeline`` call with the same request.  These tests
enforce that at 1 / 4 / 16 clients for the occurrence-dependent
surrogate, the incremental transformer (whose prompts genuinely pool
across requests), and a mixed ensemble — plus the request lifecycle
(deadlines, cancellation, backpressure, clean shutdown with in-flight
work), the TTL + LRU result cache, and the stdlib JSON front end.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.pipeline import DTTPipeline, model_fingerprint
from repro.exceptions import (
    DeadlineExceededError,
    JoinError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.infer import GenerationEngine
from repro.model import ByteSeq2SeqModel
from repro.model.config import TINY_CONFIG
from repro.serve import (
    ResultCache,
    TransformService,
    examples_fingerprint,
    start_http_server,
)
from repro.surrogate import GPT3Surrogate, PretrainedDTT
from repro.types import ExamplePair

_EXAMPLES = [
    ExamplePair("Justin Trudeau", "jtrudeau"),
    ExamplePair("Stephen Harper", "sharper"),
    ExamplePair("Paul Martin", "pmartin"),
    ExamplePair("Jean Chretien", "jchretien"),
]
_TARGETS = ("jchretien", "kcampbell", "jtrudeau", "sharper", "pmartin")


def _surrogate_pipeline() -> DTTPipeline:
    return DTTPipeline(PretrainedDTT(seed=0), n_trials=3, seed=1)


def _requests() -> list[tuple[str, tuple, dict]]:
    """A mixed transform/join request stream (kind, args, kwargs)."""
    stream: list[tuple[str, tuple, dict]] = []
    for row in ("Kim Campbell", "Paul Martin", "Justin Trudeau"):
        stream.append(("transform", ([row, "Jean Chretien"], _EXAMPLES), {}))
        stream.append(
            ("join", ([row], list(_TARGETS), _EXAMPLES), {})
        )
    # Repeats: the memoized path must stay byte-identical too.
    stream.append(stream[0])
    stream.append(stream[1])
    return stream


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SlowModel:
    """A gate-controlled model for lifecycle tests."""

    name = "slow"

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()
        self.calls = 0

    def generate(self, prompts: list[str]) -> list[str]:
        self.calls += 1
        self.gate.wait(timeout=5.0)
        return [f"out-{i}" for i in range(len(prompts))]


class TestByteEquivalence:
    @pytest.mark.parametrize("clients", [1, 4, 16])
    def test_surrogate_pipeline_matches_direct_calls(self, clients):
        direct = _surrogate_pipeline()
        stream = _requests()
        expected = [
            direct.transform_column(*args, **kwargs)
            if kind == "transform"
            else direct.join(*args, **kwargs)
            for kind, args, kwargs in stream
        ]
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=5.0
        ) as service:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                futures = [
                    pool.submit(
                        service.transform if kind == "transform" else service.join,
                        *args,
                        **kwargs,
                    )
                    for kind, args, kwargs in stream
                ]
                results = [future.result() for future in futures]
        assert results == expected

    def test_incremental_model_coalesces_and_matches(self):
        # The transformer's prompts pool across requests into shared
        # micro-batches; greedy decoding keeps that invisible.
        def pipeline() -> DTTPipeline:
            return DTTPipeline(
                ByteSeq2SeqModel(TINY_CONFIG), n_trials=2, seed=3
            )

        sources = [f"row-{i:02d}" for i in range(12)]
        direct = pipeline()
        expected = [
            direct.transform_column([value], _EXAMPLES) for value in sources
        ]
        with TransformService(pipeline(), max_wait_ms=20.0) as service:
            assert service.row_cacheable  # all models incremental
            with ThreadPoolExecutor(max_workers=12) as pool:
                futures = [
                    pool.submit(service.transform, [value], _EXAMPLES)
                    for value in sources
                ]
                results = [future.result() for future in futures]
        assert results == expected
        stats = service.stats()
        assert stats.batches < stats.batched_requests  # real coalescing

    def test_mixed_ensemble_matches_direct_calls(self):
        def pipeline() -> DTTPipeline:
            return DTTPipeline(
                [PretrainedDTT(seed=0), GPT3Surrogate(seed=0)],
                n_trials=2,
                seed=5,
            )

        direct = pipeline()
        expected = direct.transform_column(
            ["Kim Campbell", "Kim Campbell"], _EXAMPLES
        )
        with TransformService(pipeline(), max_wait_ms=5.0) as service:
            assert not service.row_cacheable  # surrogates in the mix
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(
                        service.transform,
                        ["Kim Campbell", "Kim Campbell"],
                        _EXAMPLES,
                    )
                    for _ in range(4)
                ]
                results = [future.result() for future in futures]
        assert all(result == expected for result in results)

    def test_join_groups_coalesce_by_target_column(self):
        direct = _surrogate_pipeline()
        expected_a = direct.join(["Kim Campbell"], list(_TARGETS), _EXAMPLES)
        other_targets = ["kcampbell", "xyz"]
        expected_b = direct.join(["Kim Campbell"], other_targets, _EXAMPLES)
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=50.0
        ) as service:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures_a = [
                    pool.submit(
                        service.join, ["Kim Campbell"], list(_TARGETS), _EXAMPLES
                    )
                    for _ in range(2)
                ]
                futures_b = [
                    pool.submit(
                        service.join, ["Kim Campbell"], other_targets, _EXAMPLES
                    )
                    for _ in range(2)
                ]
                results_a = [f.result() for f in futures_a]
                results_b = [f.result() for f in futures_b]
        assert all(r == expected_a for r in results_a)
        assert all(r == expected_b for r in results_b)


class TestLifecycle:
    def test_deadline_expiry(self):
        clock = FakeClock()
        service = TransformService(
            _surrogate_pipeline(), max_wait_ms=0.0, clock=clock
        )
        try:
            # Stall the scheduler with a gate so the deadline passes
            # before the batch starts.
            model = SlowModel()
            stalling = TransformService(
                DTTPipeline(model, n_trials=1, seed=0), max_wait_ms=0.0
            )
            model.gate.clear()
            first = stalling.submit_transform(["a"], _EXAMPLES)
            time.sleep(0.05)  # scheduler is now blocked inside the gate
            # Meanwhile: a request whose deadline is already expired by
            # the fake clock at execution time.
            future = service.submit_transform(
                ["Kim Campbell"], _EXAMPLES, timeout=5.0
            )
            future.result()  # sanity: live deadline succeeds
            clock.advance(10.0)
            expired = service.submit_transform(
                ["Kim Campbell"], _EXAMPLES, timeout=-1.0
            )
            with pytest.raises(DeadlineExceededError):
                expired.result(timeout=5.0)
            assert service.stats().deadline_expired == 1
            model.gate.set()
            first.result(timeout=5.0)
            stalling.close()
        finally:
            service.close()

    def test_backpressure_rejection(self):
        model = SlowModel()
        service = TransformService(
            DTTPipeline(model, n_trials=1, seed=0),
            max_wait_ms=0.0,
            max_queue=1,
        )
        try:
            model.gate.clear()
            running = service.submit_transform(["a"], _EXAMPLES)
            time.sleep(0.05)  # let the scheduler pick it up and block
            queued = service.submit_transform(["b"], _EXAMPLES)
            with pytest.raises(ServiceOverloadedError):
                service.submit_transform(["c"], _EXAMPLES)
            assert service.stats().rejected == 1
            model.gate.set()
            assert len(running.result(timeout=5.0)) == 1
            assert len(queued.result(timeout=5.0)) == 1
        finally:
            model.gate.set()
            service.close()

    def test_cancellation_before_batch_starts(self):
        model = SlowModel()
        service = TransformService(
            DTTPipeline(model, n_trials=1, seed=0), max_wait_ms=0.0
        )
        try:
            model.gate.clear()
            running = service.submit_transform(["a"], _EXAMPLES)
            time.sleep(0.05)
            doomed = service.submit_transform(["b"], _EXAMPLES)
            assert doomed.cancel()
            model.gate.set()
            running.result(timeout=5.0)
            service.close()
            assert service.stats().cancelled == 1
            # The cancelled request never reached the model.
            assert model.calls == 1
        finally:
            model.gate.set()
            service.close()

    def test_clean_shutdown_completes_in_flight_requests(self):
        model = SlowModel()
        service = TransformService(
            DTTPipeline(model, n_trials=1, seed=0), max_wait_ms=0.0
        )
        model.gate.clear()
        futures = [
            service.submit_transform([f"row-{i}"], _EXAMPLES) for i in range(5)
        ]
        time.sleep(0.05)
        closer = threading.Thread(target=service.close)
        closer.start()
        time.sleep(0.05)
        model.gate.set()
        closer.join(timeout=5.0)
        assert not closer.is_alive()
        for future in futures:
            assert len(future.result(timeout=1.0)) == 1
        with pytest.raises(ServiceClosedError):
            service.submit_transform(["late"], _EXAMPLES)

    def test_empty_sources_resolve_without_a_batch(self):
        with TransformService(_surrogate_pipeline()) as service:
            assert service.transform([], _EXAMPLES) == []
            assert service.join([], list(_TARGETS), _EXAMPLES) == []
            assert service.stats().batches == 0

    def test_empty_targets_rejected_at_submit(self):
        with TransformService(_surrogate_pipeline()) as service:
            with pytest.raises(JoinError):
                service.submit_join(["a"], [], _EXAMPLES)

    def test_sampling_engine_rejected(self):
        pipeline = DTTPipeline(
            PretrainedDTT(seed=0), engine=GenerationEngine(mode="sample")
        )
        with pytest.raises(ValueError):
            TransformService(pipeline)

    def test_close_is_idempotent(self):
        service = TransformService(_surrogate_pipeline())
        service.close()
        service.close()
        assert service.closed


class TestResultCaching:
    def test_repeat_requests_hit_the_cache(self):
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=0.0
        ) as service:
            first = service.transform(["Kim Campbell"], _EXAMPLES)
            again = service.transform(["Kim Campbell"], _EXAMPLES)
            assert again == first
            stats = service.stats()
            assert stats.cache_hits >= 1
            # The hit skipped generation: engine prompts counted once.
            assert stats.engine_prompts == 3  # n_trials=3, one row

    def test_ttl_expiry_forces_recompute(self):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=30.0, clock=clock)
        with TransformService(
            _surrogate_pipeline(),
            max_wait_ms=0.0,
            result_cache=cache,
            clock=clock,
        ) as service:
            first = service.transform(["Kim Campbell"], _EXAMPLES)
            assert service.stats().cache_hits == 0
            assert service.transform(["Kim Campbell"], _EXAMPLES) == first
            assert service.stats().cache_hits == 1
            clock.advance(31.0)
            assert service.transform(["Kim Campbell"], _EXAMPLES) == first
            stats = service.stats()
            assert stats.cache_expirations >= 1
            assert stats.engine_prompts == 6  # computed twice overall

    def test_examples_change_misses(self):
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=0.0
        ) as service:
            service.transform(["Kim Campbell"], _EXAMPLES)
            service.transform(["Kim Campbell"], _EXAMPLES[:-1])
            assert service.stats().cache_hits == 0

    def test_row_granular_keys_for_incremental_models(self):
        pipeline = DTTPipeline(ByteSeq2SeqModel(TINY_CONFIG), n_trials=1, seed=2)
        with TransformService(pipeline, max_wait_ms=0.0) as service:
            assert service.row_cacheable
            first = service.transform(["aaa", "bbb"], _EXAMPLES)
            # A different request shape reusing row 0's (position,
            # value) pair still hits that row's entry.
            partial = service.transform(["aaa", "zzz"], _EXAMPLES)
            assert partial[0] == first[0]
            assert service.stats().cache_hits == 1


class TestResultCache:
    def test_lru_and_byte_bounds(self):
        from repro.types import Prediction

        cache = ResultCache(max_entries=2, max_bytes=1 << 20)
        for i in range(3):
            cache.put((i,), (Prediction(source=str(i), value="v"),))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get((0,)) is None  # evicted (oldest)
        assert cache.get((2,)) is not None

        tight = ResultCache(max_entries=10, max_bytes=1)
        tight.put(("a",), (Prediction(source="s", value="v"),))
        tight.put(("b",), (Prediction(source="s", value="v"),))
        assert len(tight) == 1  # newest always kept

    def test_ttl_and_sweep(self):
        from repro.types import Prediction

        clock = FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        cache.put(("k",), (Prediction(source="s", value="v"),))
        assert cache.get(("k",)) is not None
        clock.advance(11.0)
        assert cache.get(("k",)) is None
        assert cache.expirations == 1
        cache.put(("k2",), (Prediction(source="s", value="v"),))
        clock.advance(11.0)
        assert cache.sweep() == 1
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0)


class TestFingerprints:
    def test_examples_fingerprint_is_order_and_content_sensitive(self):
        pool = [ExamplePair("a", "b"), ExamplePair("c", "d")]
        assert examples_fingerprint(pool) == examples_fingerprint(list(pool))
        assert examples_fingerprint(pool) != examples_fingerprint(pool[::-1])
        assert examples_fingerprint(pool) != examples_fingerprint(
            [ExamplePair("a", "b"), ExamplePair("c", "x")]
        )

    def test_model_fingerprint_tracks_weights(self):
        model = ByteSeq2SeqModel(TINY_CONFIG)
        before = model.fingerprint()
        assert before == ByteSeq2SeqModel(TINY_CONFIG).fingerprint()
        parameter = model.network.parameters()[0]
        parameter.value[...] += 1.0
        assert model.fingerprint() != before

    def test_surrogate_fingerprints_track_parameters(self):
        assert (
            PretrainedDTT(seed=0).fingerprint()
            == PretrainedDTT(seed=0).fingerprint()
        )
        assert (
            PretrainedDTT(seed=0).fingerprint()
            != PretrainedDTT(seed=1).fingerprint()
        )
        assert (
            GPT3Surrogate(seed=0).fingerprint()
            != GPT3Surrogate(seed=1).fingerprint()
        )

    def test_pipeline_fingerprint_covers_decoding_config(self):
        base = _surrogate_pipeline().fingerprint()
        assert base == _surrogate_pipeline().fingerprint()
        assert base != DTTPipeline(
            PretrainedDTT(seed=0), n_trials=4, seed=1
        ).fingerprint()

    def test_model_fingerprint_fallback(self):
        model = SlowModel()
        assert "SlowModel" in model_fingerprint(model)


class TestMainEntryPoint:
    def test_build_service_from_cli_options(self):
        from repro.serve.__main__ import build_service, main

        parser_namespace = None

        def capture(service, host, port, verbose, **kwargs):
            # Replaces serve_http; the HTTP front-end knobs ride in
            # kwargs and must carry the CLI defaults.
            nonlocal parser_namespace
            parser_namespace = (service, host, port, verbose)
            assert kwargs["max_request_bytes"] == 16 << 20
            assert kwargs["request_timeout_s"] == 30.0
            service.close()

        import repro.serve.__main__ as entry

        original = entry.serve_http
        entry.serve_http = capture
        try:
            main(
                [
                    "--port",
                    "0",
                    "--model",
                    "ensemble",
                    "--n-trials",
                    "2",
                    "--max-wait-ms",
                    "1.5",
                    "--max-queue",
                    "7",
                    "--cache-ttl-s",
                    "60",
                    "--quiet",
                ]
            )
        finally:
            entry.serve_http = original
        service, host, port, verbose = parser_namespace
        assert service.closed
        assert port == 0 and verbose is False
        assert service.max_queue == 7
        assert service.max_wait_ms == 1.5
        assert service.result_cache.ttl_seconds == 60
        assert len(service.pipeline.models) == 2
        # And the default single-model path constructs too.
        import argparse

        args = argparse.Namespace(
            model="pretrained",
            seed=0,
            context_size=2,
            n_trials=1,
            max_wait_ms=0.0,
            max_batch_rows=16,
            max_queue=4,
            default_timeout_s=None,
            cache_max_entries=8,
            cache_ttl_s=None,
        )
        service = build_service(args)
        try:
            assert len(service.pipeline.models) == 1
        finally:
            service.close()


class TestHttpFrontEnd:
    @pytest.fixture()
    def server(self):
        service = TransformService(_surrogate_pipeline(), max_wait_ms=1.0)
        server = start_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.load(response)

    def test_transform_join_stats_and_health(self, server):
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        transform = self._post(
            server,
            "/v1/transform",
            {"sources": ["Kim Campbell"], "examples": examples},
        )
        direct = _surrogate_pipeline().transform_column(
            ["Kim Campbell"], _EXAMPLES
        )
        assert transform["predictions"][0]["value"] == direct[0].value
        assert transform["predictions"][0]["votes"] == direct[0].votes

        join = self._post(
            server,
            "/v1/join",
            {
                "sources": ["Kim Campbell"],
                "targets": list(_TARGETS),
                "examples": examples,
            },
        )
        assert join["results"][0]["matched"] == "kcampbell"

        with urllib.request.urlopen(server + "/v1/stats") as response:
            stats = json.load(response)
        assert stats["requests"] == 2
        with urllib.request.urlopen(server + "/healthz") as response:
            assert json.load(response)["ok"] is True

    def test_error_mapping(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/transform", {"sources": "nope"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                server,
                "/v1/join",
                {
                    "sources": ["a"],
                    "targets": [],
                    "examples": [["x", "y"], ["p", "q"]],
                },
            )
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/nope", {"sources": []})
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server + "/nope")
        assert excinfo.value.code == 404

    def test_metrics_endpoint_exposes_live_state(self, server):
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        payload = {"sources": ["Kim Campbell"], "examples": examples}
        self._post(server, "/v1/transform", payload)
        self._post(server, "/v1/transform", payload)  # row cached now

        with urllib.request.urlopen(server + "/metrics") as response:
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        # Latency histograms: cumulative buckets, +Inf, sum, count.
        assert "# TYPE serve_request_latency_seconds histogram" in body
        assert 'serve_request_latency_seconds_bucket{le="+Inf"} 2' in body
        assert "serve_request_latency_seconds_count 2" in body
        assert "serve_queue_wait_seconds_count 2" in body
        # Occupancy: two single-request batches, one row each.
        assert 'serve_batch_occupancy_requests_bucket{le="1"} 2' in body
        assert 'serve_batch_occupancy_rows_bucket{le="1"} 2' in body
        # Gauges read live state (queue drained by now).
        assert "# TYPE serve_queue_depth gauge" in body
        assert "serve_queue_depth 0" in body
        # Cache counters: the repeated row hit the result cache once.
        assert "# TYPE serve_cache_hits_total counter" in body
        assert "serve_cache_hits_total 1" in body
        assert "serve_requests_total 2" in body

    def test_stats_nests_the_metrics_snapshot(self, server):
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        self._post(
            server,
            "/v1/transform",
            {"sources": ["Kim Campbell"], "examples": examples},
        )
        with urllib.request.urlopen(server + "/v1/stats") as response:
            stats = json.load(response)
        assert stats["requests"] == 1  # legacy flat fields intact
        metrics = stats["metrics"]
        latency = metrics["serve_request_latency_seconds"]
        assert latency["count"] == 1
        assert latency["sum"] >= 0.0
        assert latency["buckets"][-1]["le"] == pytest.approx(1e-4 * 2**20)
        assert metrics["serve_queue_depth"] == 0
        assert metrics["serve_requests_total"] == 1


class TestHttpHardening:
    """Malformed framing must map to 4xx responses, never hangs or 500s."""

    @pytest.fixture()
    def server(self):
        service = TransformService(_surrogate_pipeline(), max_wait_ms=1.0)
        server = start_http_server(
            service, max_request_bytes=256, request_timeout_s=0.5
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield host, port, service
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _raw(host: str, port: int, request: bytes, half_close: bool = False):
        """Send raw bytes; return the status code of the response."""
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(request)
            if half_close:
                sock.shutdown(socket.SHUT_WR)
            reader = sock.makefile("rb")
            status_line = reader.readline().decode("latin-1")
        assert status_line.startswith("HTTP/1."), status_line
        return int(status_line.split()[1])

    @staticmethod
    def _request(headers: list[str], body: bytes = b"") -> bytes:
        lines = ["POST /v1/transform HTTP/1.1", "Host: t", *headers, "", ""]
        return "\r\n".join(lines).encode("latin-1") + body

    def test_malformed_content_length_is_400(self, server):
        host, port, _ = server
        request = self._request(["Content-Length: banana"])
        assert self._raw(host, port, request) == 400

    def test_missing_content_length_is_400(self, server):
        host, port, _ = server
        assert self._raw(host, port, self._request([])) == 400

    def test_nonpositive_content_length_is_400(self, server):
        host, port, _ = server
        request = self._request(["Content-Length: -5"])
        assert self._raw(host, port, request) == 400

    def test_oversized_body_is_413_without_reading_it(self, server):
        host, port, _ = server
        # Declared far beyond max_request_bytes=256; no body is sent at
        # all, so a 413 here proves the server rejected on the header.
        request = self._request(["Content-Length: 1000000"])
        assert self._raw(host, port, request) == 413

    def test_truncated_body_is_400(self, server):
        host, port, _ = server
        request = self._request(["Content-Length: 100"], body=b'{"sour')
        assert self._raw(host, port, request, half_close=True) == 400

    def test_stalled_body_times_out_as_408(self, server):
        host, port, _ = server
        # Declares 100 bytes, sends 6, keeps the socket open: the read
        # timeout (0.5 s here) must turn the stall into a 408 instead
        # of pinning the worker thread forever.
        request = self._request(["Content-Length: 100"], body=b'{"sour')
        assert self._raw(host, port, request) == 408

    def test_closed_service_submit_is_503(self, server):
        host, port, service = server
        service.close()
        body = json.dumps(
            {
                "sources": ["Kim Campbell"],
                "examples": [pair.as_tuple() for pair in _EXAMPLES],
            }
        ).encode("utf-8")
        request = self._request(
            [f"Content-Length: {len(body)}", "Content-Type: application/json"],
            body=body,
        )
        assert self._raw(host, port, request) == 503


class TestTopKServing:
    """Mode-aware coalescing must stay invisible to every client."""

    @pytest.mark.parametrize("clients", [1, 4, 16])
    def test_topk_matches_direct_pipeline(self, clients):
        direct = _surrogate_pipeline()
        rows = ["Kim Campbell", "Paul Martin", "Justin Trudeau"]
        expected = {}
        for row in rows:
            predictions = direct.transform_column([row], _EXAMPLES)
            expected[row] = direct.joiner.join_topk(
                predictions, list(_TARGETS), k=3, margin=0.2
            )
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=5.0
        ) as service:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                futures = {
                    pool.submit(
                        service.join,
                        [row],
                        list(_TARGETS),
                        _EXAMPLES,
                        mode="topk",
                        k=3,
                        margin=0.2,
                    ): row
                    for row in rows * 4
                }
                for future, row in futures.items():
                    assert future.result() == expected[row], row

    @pytest.mark.parametrize("clients", [1, 4])
    def test_reverse_matches_direct_pipeline(self, clients):
        from repro.core.joiner import invert_matches

        direct = _surrogate_pipeline()
        rows = ["Kim Campbell", "Paul Martin"]
        expected = {}
        for row in rows:
            predictions = direct.transform_column([row], _EXAMPLES)
            matches = direct.joiner.join_many(
                [p.value for p in predictions], list(_TARGETS)
            )
            expected[row] = invert_matches(matches, list(_TARGETS))
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=5.0
        ) as service:
            with ThreadPoolExecutor(max_workers=clients) as pool:
                futures = {
                    pool.submit(
                        service.join,
                        [row],
                        list(_TARGETS),
                        _EXAMPLES,
                        mode="reverse",
                    ): row
                    for row in rows * 3
                }
                for future, row in futures.items():
                    assert future.result() == expected[row], row

    def test_distinct_modes_never_share_a_group(self):
        # One batch, same targets, three modes: each request must get
        # its own mode's result shape.
        direct = _surrogate_pipeline()
        expected_argmin = direct.join(["Kim Campbell"], list(_TARGETS), _EXAMPLES)
        with TransformService(
            _surrogate_pipeline(), max_wait_ms=50.0
        ) as service:
            with ThreadPoolExecutor(max_workers=3) as pool:
                argmin = pool.submit(
                    service.join, ["Kim Campbell"], list(_TARGETS), _EXAMPLES
                )
                topk = pool.submit(
                    service.join,
                    ["Kim Campbell"],
                    list(_TARGETS),
                    _EXAMPLES,
                    mode="topk",
                    k=2,
                )
                reverse = pool.submit(
                    service.join,
                    ["Kim Campbell"],
                    list(_TARGETS),
                    _EXAMPLES,
                    mode="reverse",
                )
                assert argmin.result() == expected_argmin
                topk_result = topk.result()
                assert len(topk_result) == 1
                assert len(topk_result[0].candidates) <= 2
                reverse_result = reverse.result()
                assert len(reverse_result) == len(_TARGETS)

    def test_submit_validation(self):
        with TransformService(_surrogate_pipeline()) as service:
            with pytest.raises(JoinError):
                service.submit_join(
                    ["a"], list(_TARGETS), _EXAMPLES, mode="nearest"
                )
            with pytest.raises(JoinError):
                service.submit_join(["a"], list(_TARGETS), _EXAMPLES, k=0)
            with pytest.raises(JoinError):
                service.submit_join(["a"], list(_TARGETS), _EXAMPLES, k=True)
            with pytest.raises(JoinError):
                service.submit_join(
                    ["a"], list(_TARGETS), _EXAMPLES, margin=-0.1
                )


class TestHttpJoinSchema:
    """Versioned payloads and structured validation errors."""

    @pytest.fixture()
    def server(self):
        service = TransformService(_surrogate_pipeline(), max_wait_ms=1.0)
        server = start_http_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.load(response)

    def _post_error(self, base: str, path: str, payload: dict) -> dict:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(base, path, payload)
        assert excinfo.value.code == 400
        body = json.load(excinfo.value)
        error = body["error"]
        assert set(error) <= {"code", "field", "detail"}
        assert error["code"] and error["detail"]
        return error

    def _join_payload(self, **overrides) -> dict:
        payload = {
            "sources": ["Kim Campbell"],
            "targets": list(_TARGETS),
            "examples": [pair.as_tuple() for pair in _EXAMPLES],
        }
        payload.update(overrides)
        return payload

    def test_responses_carry_schema_version(self, server):
        examples = [pair.as_tuple() for pair in _EXAMPLES]
        transform = self._post(
            server,
            "/v1/transform",
            {"sources": ["Kim Campbell"], "examples": examples},
        )
        assert transform["schema_version"] == 1
        join = self._post(server, "/v1/join", self._join_payload())
        assert join["schema_version"] == 1
        assert join["mode"] == "argmin"

    def test_topk_over_http_matches_direct(self, server):
        direct = _surrogate_pipeline()
        predictions = direct.transform_column(["Kim Campbell"], _EXAMPLES)
        expected = direct.joiner.join_topk(
            predictions, list(_TARGETS), k=3, margin=0.2
        )
        body = self._post(
            server,
            "/v1/join",
            self._join_payload(mode="topk", k=3, margin=0.2),
        )
        assert body["mode"] == "topk"
        assert body["results"] == [r.to_dict() for r in expected]

    def test_reverse_over_http_groups_and_unmatched(self, server):
        body = self._post(
            server, "/v1/join", self._join_payload(mode="reverse")
        )
        assert body["mode"] == "reverse"
        grouped = {
            index for group in body["groups"] for index in group["sources"]
        }
        assert grouped | set(body["unmatched"]) == {0}
        for group in body["groups"]:
            assert group["target"] in _TARGETS
            assert group["sources"]

    def test_unknown_field_is_structured_400(self, server):
        error = self._post_error(
            server, "/v1/join", self._join_payload(topk=3)
        )
        assert error["code"] == "unknown_field"
        assert error["field"] == "topk"

    def test_unknown_transform_field_is_structured_400(self, server):
        error = self._post_error(
            server,
            "/v1/transform",
            {"sources": ["a"], "examples": [], "targets": ["b"]},
        )
        assert error["code"] == "unknown_field"
        assert error["field"] == "targets"

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"mode": "nearest"}, "mode"),
            ({"mode": 3}, "mode"),
            ({"k": 0}, "k"),
            ({"k": "2"}, "k"),
            ({"k": True}, "k"),
            ({"margin": -0.5}, "margin"),
            ({"margin": "wide"}, "margin"),
            ({"margin": True}, "margin"),
            ({"sources": "nope"}, "sources"),
            ({"targets": [1, 2]}, "targets"),
            ({"timeout_s": True}, "timeout_s"),
        ],
    )
    def test_invalid_values_are_structured_400(self, server, overrides, field):
        error = self._post_error(
            server, "/v1/join", self._join_payload(**overrides)
        )
        assert error["code"] == "invalid_value"
        assert error["field"] == field

    def test_empty_targets_is_structured_400(self, server):
        error = self._post_error(
            server, "/v1/join", self._join_payload(targets=[])
        )
        assert error["code"] == "invalid_request"

    def test_not_found_is_structured(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server, "/v1/nope", {"sources": []})
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["code"] == "not_found"

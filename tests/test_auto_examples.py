"""Tests for automatic example generation by token matching (§2)."""

from __future__ import annotations

import pytest

from repro.datagen.auto_examples import AutoExampleGenerator
from repro.datagen.benchmarks import get_dataset


class TestAutoExampleGenerator:
    def test_pairs_rows_sharing_tokens(self):
        generator = AutoExampleGenerator()
        sources = ["Justin Trudeau", "Stephen Harper", "Paul Martin"]
        targets = ["trudeau, justin", "harper, stephen", "martin, paul"]
        examples = generator.example_pool(sources, targets)
        mapping = {e.source: e.target for e in examples}
        assert mapping["Justin Trudeau"] == "trudeau, justin"
        assert mapping["Stephen Harper"] == "harper, stephen"

    def test_each_row_used_once(self):
        generator = AutoExampleGenerator()
        sources = ["alpha one", "alpha two"]
        targets = ["alpha one x", "alpha two y"]
        examples = generator.generate(sources, targets)
        assert len({e.pair.source for e in examples}) == len(examples)
        assert len({e.pair.target for e in examples}) == len(examples)

    def test_no_overlap_no_examples(self):
        generator = AutoExampleGenerator()
        assert generator.example_pool(["aaa bbb"], ["ccc ddd"]) == []

    def test_scores_sorted_descending(self):
        generator = AutoExampleGenerator(min_score=0.1)
        sources = ["green apple pie", "blue sky"]
        targets = ["green apple pie recipe", "blue bird"]
        examples = generator.generate(sources, targets)
        scores = [e.score for e in examples]
        assert scores == sorted(scores, reverse=True)

    def test_max_examples_cap(self):
        generator = AutoExampleGenerator(max_examples=1)
        sources = ["tok1 a", "tok2 b"]
        targets = ["tok1 c", "tok2 d"]
        assert len(generator.generate(sources, targets)) == 1

    def test_invalid_min_score(self):
        with pytest.raises(ValueError):
            AutoExampleGenerator(min_score=2.0)

    def test_generated_examples_can_drive_the_pipeline(self):
        # End-to-end: auto-generate (noisy) examples on a benchmark
        # table, run DTT with them — the §2 "no user examples" workflow.
        from repro import DTTPipeline, PretrainedDTT
        from repro.metrics import score_join

        table = get_dataset("WT", seed=4, scale=0.2)[1]  # last-first topic
        pool_rows, test_rows = table.split()
        generator = AutoExampleGenerator()
        examples = generator.example_pool(
            [r.source for r in pool_rows], [r.target for r in pool_rows]
        )
        assert len(examples) >= 3
        pipeline = DTTPipeline(PretrainedDTT(), seed=4)
        results = pipeline.join(
            [r.source for r in test_rows],
            list(table.targets),
            examples,
            expected=[r.target for r in test_rows],
        )
        assert score_join(results).f1 > 0.5

"""IndexCache behaviour: content keys, hit/miss/eviction, adaptive q.

The cache is the staleness-correctness layer of the blocked join engine
— indexes are keyed on column *content*, so any mutation of a cached
column must produce a different key — and the sharing layer that lets
eval runs and repeated pipelines reuse one index per target column.
"""

from __future__ import annotations

import pytest

from repro.index import IndexCache, QGramIndex, adaptive_q, default_index_cache


class TestIndexCache:
    def test_miss_builds_then_hits(self):
        cache = IndexCache()
        column = ("alpha", "beta", "gamma")
        index = cache.get(column, q=2)
        assert isinstance(index, QGramIndex)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.get(column, q=2) is index
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_equal_columns_share_one_index(self):
        cache = IndexCache()
        index = cache.get(["alpha", "beta"], q=2)
        assert cache.get(("alpha", "beta"), q=2) is index

    def test_same_length_in_place_edit_misses(self):
        # The exact hole of the old identity+length guard: overwriting
        # a cell with a same-length value must change the key.
        cache = IndexCache()
        column = ["aaa", "bbb", "ccc"]
        first = cache.get(column, q=2)
        column[1] = "zzz"
        assert cache.get(column, q=2) is not first

    def test_row_order_is_significant(self):
        # Earliest-row tie-breaking makes order part of the semantics.
        cache = IndexCache()
        assert cache.get(("a", "b"), q=2) is not cache.get(("b", "a"), q=2)

    def test_distinct_q_cached_separately(self):
        cache = IndexCache()
        column = ("alpha", "beta")
        two = cache.get(column, q=2)
        three = cache.get(column, q=3)
        assert two is not three
        assert two.q == 2 and three.q == 3
        assert len(cache) == 2

    def test_adaptive_q_resolution(self):
        cache = IndexCache()
        short = ("ab", "cd", "ef")
        assert cache.get(short).q == adaptive_q(short) == 2
        long = tuple("abcdefghijklmnopqrstuv" + str(i) for i in range(3))
        assert cache.get(long).q == adaptive_q(long) == 3

    def test_lru_eviction(self):
        cache = IndexCache(capacity=2)
        first = cache.get(("a", "b"), q=2)
        cache.get(("c", "d"), q=2)
        # Touch the first entry so the second becomes least recent.
        assert cache.get(("a", "b"), q=2) is first
        cache.get(("e", "f"), q=2)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The survivor is still a hit; the evicted entry rebuilds.
        assert cache.get(("a", "b"), q=2) is first
        misses_before = cache.misses
        cache.get(("c", "d"), q=2)
        assert cache.misses == misses_before + 1

    def test_byte_budget_eviction(self):
        cache = IndexCache(capacity=100, max_bytes=1)
        first = cache.get(("alpha", "beta"), q=2)
        assert len(cache) == 1  # the most recent entry is always kept
        assert cache.total_bytes == first.nbytes
        cache.get(("gamma", "delta"), q=2)
        # Over budget: the older entry is evicted, the newest survives.
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.get(("alpha", "beta"), q=2) is not first

    def test_clear_drops_entries(self):
        cache = IndexCache()
        index = cache.get(("a", "b"), q=2)
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.get(("a", "b"), q=2) is not index

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)
        with pytest.raises(ValueError):
            IndexCache(max_bytes=0)

    def test_default_cache_is_process_wide(self):
        assert default_index_cache() is default_index_cache()


class TestAdaptiveQ:
    def test_steps_with_median_length(self):
        assert adaptive_q([]) == 2
        assert adaptive_q(["ab", "cde", "f"]) == 2
        assert adaptive_q(["x" * 19] * 5) == 2
        assert adaptive_q(["x" * 20] * 5) == 3
        assert adaptive_q(["x" * 39] * 5) == 3
        assert adaptive_q(["x" * 40] * 5) == 4

    def test_median_not_mean(self):
        # One pathological mega-cell must not drag q upward.
        column = ["abc"] * 9 + ["y" * 500]
        assert adaptive_q(column) == 2

"""IndexCache behaviour: content keys, hit/miss/eviction, adaptive q.

The cache is the staleness-correctness layer of the blocked join engine
— indexes are keyed on column *content*, so any mutation of a cached
column must produce a different key — and the sharing layer that lets
eval runs and repeated pipelines reuse one index per target column.
The on-disk tier extends that sharing across processes, so its tests
target the failure modes of files: torn writes, truncation, garbage,
format-version drift, and concurrent readers.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.index import (
    IndexCache,
    QGramIndex,
    adaptive_q,
    column_fingerprint,
    default_index_cache,
)
from repro.index import cache as cache_module


class TestIndexCache:
    def test_miss_builds_then_hits(self):
        cache = IndexCache()
        column = ("alpha", "beta", "gamma")
        index = cache.get(column, q=2)
        assert isinstance(index, QGramIndex)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.get(column, q=2) is index
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_equal_columns_share_one_index(self):
        cache = IndexCache()
        index = cache.get(["alpha", "beta"], q=2)
        assert cache.get(("alpha", "beta"), q=2) is index

    def test_same_length_in_place_edit_misses(self):
        # The exact hole of the old identity+length guard: overwriting
        # a cell with a same-length value must change the key.
        cache = IndexCache()
        column = ["aaa", "bbb", "ccc"]
        first = cache.get(column, q=2)
        column[1] = "zzz"
        assert cache.get(column, q=2) is not first

    def test_row_order_is_significant(self):
        # Earliest-row tie-breaking makes order part of the semantics.
        cache = IndexCache()
        assert cache.get(("a", "b"), q=2) is not cache.get(("b", "a"), q=2)

    def test_distinct_q_cached_separately(self):
        cache = IndexCache()
        column = ("alpha", "beta")
        two = cache.get(column, q=2)
        three = cache.get(column, q=3)
        assert two is not three
        assert two.q == 2 and three.q == 3
        assert len(cache) == 2

    def test_adaptive_q_resolution(self):
        cache = IndexCache()
        short = ("ab", "cd", "ef")
        assert cache.get(short).q == adaptive_q(short) == 2
        long = tuple("abcdefghijklmnopqrstuv" + str(i) for i in range(3))
        assert cache.get(long).q == adaptive_q(long) == 3

    def test_lru_eviction(self):
        cache = IndexCache(capacity=2)
        first = cache.get(("a", "b"), q=2)
        cache.get(("c", "d"), q=2)
        # Touch the first entry so the second becomes least recent.
        assert cache.get(("a", "b"), q=2) is first
        cache.get(("e", "f"), q=2)
        assert len(cache) == 2
        assert cache.evictions == 1
        # The survivor is still a hit; the evicted entry rebuilds.
        assert cache.get(("a", "b"), q=2) is first
        misses_before = cache.misses
        cache.get(("c", "d"), q=2)
        assert cache.misses == misses_before + 1

    def test_byte_budget_eviction(self):
        cache = IndexCache(capacity=100, max_bytes=1)
        first = cache.get(("alpha", "beta"), q=2)
        assert len(cache) == 1  # the most recent entry is always kept
        assert cache.total_bytes == first.nbytes
        cache.get(("gamma", "delta"), q=2)
        # Over budget: the older entry is evicted, the newest survives.
        assert len(cache) == 1
        assert cache.evictions == 1
        assert cache.get(("alpha", "beta"), q=2) is not first

    def test_clear_drops_entries(self):
        cache = IndexCache()
        index = cache.get(("a", "b"), q=2)
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.get(("a", "b"), q=2) is not index

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)
        with pytest.raises(ValueError):
            IndexCache(max_bytes=0)

    def test_default_cache_is_process_wide(self):
        assert default_index_cache() is default_index_cache()


class TestColumnFingerprint:
    def test_same_length_mutation_changes_fingerprint(self):
        # The same-length in-place edit is the classic staleness hole:
        # equal row count, equal lengths, different content.
        base = ("aaa", "bbb", "ccc")
        mutated = ("aaa", "zzz", "ccc")
        assert column_fingerprint(base, 2) != column_fingerprint(mutated, 2)

    def test_value_boundaries_are_unambiguous(self):
        # Length-prefixed encoding: shifting characters across value
        # boundaries must not collide.
        assert column_fingerprint(("ab", "c"), 2) != column_fingerprint(
            ("a", "bc"), 2
        )
        assert column_fingerprint(("ab",), 2) != column_fingerprint(
            ("a", "b"), 2
        )

    def test_row_order_and_q_matter(self):
        assert column_fingerprint(("a", "b"), 2) != column_fingerprint(
            ("b", "a"), 2
        )
        assert column_fingerprint(("ab", "cd"), 2) != column_fingerprint(
            ("ab", "cd"), 3
        )

    def test_equal_columns_agree_across_container_types(self):
        assert column_fingerprint(["ab", "cd"], 2) == column_fingerprint(
            ("ab", "cd"), 2
        )

    def test_lone_surrogates_hash(self):
        assert column_fingerprint(("a\ud800b",), 2) != column_fingerprint(
            ("ab",), 2
        )


class TestDiskTier:
    COLUMN = ("alpha", "beta", "gamma", "beta")

    def test_fresh_cache_loads_from_disk(self, tmp_path):
        writer = IndexCache(cache_dir=tmp_path)
        built = writer.get(self.COLUMN)
        assert (writer.disk_hits, writer.disk_misses) == (0, 1)
        assert list(tmp_path.glob("qgram-*.npz"))
        reader = IndexCache(cache_dir=tmp_path)
        loaded = reader.get(self.COLUMN)
        assert (reader.disk_hits, reader.disk_misses) == (1, 0)
        assert loaded is not built
        assert loaded.values == built.values
        assert loaded.q == built.q
        assert (loaded.first_rows == built.first_rows).all()
        assert loaded.value_id("beta") == built.value_id("beta")
        assert loaded.rows_for(loaded.value_id("beta")) == [1, 3]

    def test_adaptive_and_explicit_share_one_file(self, tmp_path):
        writer = IndexCache(cache_dir=tmp_path)
        writer.get(self.COLUMN)  # adaptive resolves to q=2
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 1
        reader = IndexCache(cache_dir=tmp_path)
        reader.get(self.COLUMN, q=2)
        assert (reader.disk_hits, reader.disk_misses) == (1, 0)
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 1

    def test_truncated_file_falls_back_to_rebuild(self, tmp_path):
        IndexCache(cache_dir=tmp_path).get(self.COLUMN)
        path = next(tmp_path.glob("qgram-*.npz"))
        path.write_bytes(path.read_bytes()[:64])
        cache = IndexCache(cache_dir=tmp_path)
        index = cache.get(self.COLUMN)
        assert (cache.disk_hits, cache.disk_misses) == (0, 1)
        assert index.values == ["alpha", "beta", "gamma"]
        # The rebuild atomically replaced the corrupt file.
        healed = IndexCache(cache_dir=tmp_path)
        assert healed.get(self.COLUMN).values == index.values
        assert (healed.disk_hits, healed.disk_misses) == (1, 0)

    def test_garbage_file_falls_back_to_rebuild(self, tmp_path):
        IndexCache(cache_dir=tmp_path).get(self.COLUMN)
        path = next(tmp_path.glob("qgram-*.npz"))
        path.write_bytes(b"\x00\xffnot-a-zip" * 30)
        cache = IndexCache(cache_dir=tmp_path)
        assert cache.get(self.COLUMN).values == ["alpha", "beta", "gamma"]
        assert cache.disk_misses == 1

    def test_version_stamp_mismatch_invalidates(self, tmp_path, monkeypatch):
        IndexCache(cache_dir=tmp_path).get(self.COLUMN)
        monkeypatch.setattr(cache_module, "DISK_FORMAT_VERSION", 999)
        cache = IndexCache(cache_dir=tmp_path)
        index = cache.get(self.COLUMN)
        assert (cache.disk_hits, cache.disk_misses) == (0, 1)
        assert index.values == ["alpha", "beta", "gamma"]
        # The rewrite stamped the new version, so the next load hits.
        restamped = IndexCache(cache_dir=tmp_path)
        restamped.get(self.COLUMN)
        assert (restamped.disk_hits, restamped.disk_misses) == (1, 0)

    def test_mutated_column_misses_on_disk(self, tmp_path):
        IndexCache(cache_dir=tmp_path).get(("aaa", "bbb", "ccc"))
        cache = IndexCache(cache_dir=tmp_path)
        cache.get(("aaa", "zzz", "ccc"))
        assert (cache.disk_hits, cache.disk_misses) == (0, 1)
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 2

    def test_concurrent_readers_and_writers_never_tear(self, tmp_path):
        # Hammer one fingerprint file with rewriters while readers load
        # it: every load must come back either as the complete index or
        # as a clean rebuild — never a torn/partial structure.
        column = tuple(f"value-{i:04d}" for i in range(200))
        seed_cache = IndexCache(cache_dir=tmp_path)
        expected = seed_cache.get(column)
        path = seed_cache.disk_path(column, expected.q)
        stop = threading.Event()
        failures: list[Exception] = []

        def rewriter():
            while not stop.is_set():
                seed_cache._save_disk(path, expected)

        def reader():
            try:
                for _ in range(20):
                    index = IndexCache(cache_dir=tmp_path).get(column)
                    assert index.values == expected.values
                    assert (index.lengths == expected.lengths).all()
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        writer = threading.Thread(target=rewriter)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer.join()
        assert not failures
        assert not list(tmp_path.glob("*.tmp"))

    def test_unwritable_cache_dir_is_non_fatal(self, tmp_path):
        # A file where the directory should be: every save fails, every
        # load misses, and the join still gets a correct index.
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        cache = IndexCache(cache_dir=blocked)
        assert cache.get(self.COLUMN).values == ["alpha", "beta", "gamma"]
        assert cache.disk_misses == 1

    def test_memory_only_cache_has_no_disk_path(self):
        with pytest.raises(ValueError):
            IndexCache().disk_path(("a", "b"), 2)

    def test_state_round_trip_preserves_lookup_behaviour(self):
        column = ("alpha", "beta", "", "beta", "a\ud800b")
        index = QGramIndex(column, q=2)
        state = index.to_state()
        clone = QGramIndex.from_state(
            {k: np.asarray(v) for k, v in state.items()}
        )
        assert clone.values == index.values
        assert clone.max_length == index.max_length
        for probe in ("alpha", "beta", "nope", ""):
            assert clone.value_id(probe) == index.value_id(probe)
        for cap in (1, 3):
            for probe in ("alph", "betaa", "zzz"):
                assert (
                    clone.candidates(probe, cap) == index.candidates(probe, cap)
                ).all()

    def test_default_cache_reads_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(cache_module, "_DEFAULT_CACHE", None)
        cache = cache_module.default_index_cache()
        assert cache.cache_dir == tmp_path
        cache.get(self.COLUMN)
        assert list(tmp_path.glob("qgram-*.npz"))

    def test_default_cache_memory_only_without_env(self, monkeypatch):
        monkeypatch.delenv(cache_module.CACHE_DIR_ENV, raising=False)
        monkeypatch.setattr(cache_module, "_DEFAULT_CACHE", None)
        assert cache_module.default_index_cache().cache_dir is None


class TestDiskGarbageCollection:
    COLUMNS = (
        tuple(f"alpha-{i:03d}" for i in range(40)),
        tuple(f"beta-{i:03d}" for i in range(40)),
        tuple(f"gamma-{i:03d}" for i in range(40)),
    )

    @staticmethod
    def _age(path, seconds):
        import os

        stat = path.stat()
        os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))

    def test_size_bound_evicts_lru_by_mtime(self, tmp_path):
        probe = IndexCache(cache_dir=tmp_path)
        probe.get(self.COLUMNS[0])
        file_size = next(tmp_path.glob("qgram-*.npz")).stat().st_size
        for path in tmp_path.glob("qgram-*.npz"):
            path.unlink()
        cache = IndexCache(
            cache_dir=tmp_path, max_disk_bytes=2 * file_size + file_size // 2
        )
        for i, column in enumerate(self.COLUMNS[:2]):
            cache.get(column)
            # Distinct mtimes, oldest first (coarse-clock filesystems).
            self._age(cache.disk_path(column, cache.get(column).q), 10 - i)
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 2
        cache.get(self.COLUMNS[2])
        remaining = set(tmp_path.glob("qgram-*.npz"))
        assert len(remaining) == 2
        assert cache.disk_evictions == 1
        # The oldest snapshot went; the newest survived.
        assert cache.disk_path(self.COLUMNS[0], 2) not in remaining
        assert cache.disk_path(self.COLUMNS[2], 2) in remaining

    def test_disk_load_refreshes_lru_position(self, tmp_path):
        probe = IndexCache(cache_dir=tmp_path)
        probe.get(self.COLUMNS[0])
        file_size = next(tmp_path.glob("qgram-*.npz")).stat().st_size
        probe.get(self.COLUMNS[1])
        for i, column in enumerate(self.COLUMNS[:2]):
            self._age(probe.disk_path(column, 2), 20 - i)
        # A fresh cache loads column 0 from disk: that access must
        # refresh its mtime so the *other* file is now least recent.
        cache = IndexCache(
            cache_dir=tmp_path, max_disk_bytes=2 * file_size + file_size // 2
        )
        cache.get(self.COLUMNS[0])
        assert cache.disk_hits == 1
        cache.get(self.COLUMNS[2])
        remaining = set(tmp_path.glob("qgram-*.npz"))
        assert cache.disk_path(self.COLUMNS[0], 2) in remaining
        assert cache.disk_path(self.COLUMNS[1], 2) not in remaining

    def test_age_bound_prunes_stale_snapshots(self, tmp_path):
        writer = IndexCache(cache_dir=tmp_path)
        writer.get(self.COLUMNS[0])
        self._age(writer.disk_path(self.COLUMNS[0], 2), 3600)
        cache = IndexCache(cache_dir=tmp_path, max_disk_age_seconds=60)
        cache.get(self.COLUMNS[1])
        remaining = set(tmp_path.glob("qgram-*.npz"))
        assert cache.disk_path(self.COLUMNS[0], 2) not in remaining
        assert cache.disk_path(self.COLUMNS[1], 2) in remaining
        assert cache.disk_evictions == 1

    def test_backwards_clock_step_does_not_mass_evict(self, tmp_path):
        # The GC clock steps back two hours (NTP correction): every
        # snapshot on disk is now "future-dated".  Ages clamp to zero
        # instead of going negative, so nothing is evicted, and each
        # file is restamped as written *now* so it ages normally from
        # this GC onward.
        writer = IndexCache(cache_dir=tmp_path)
        writer.get(self.COLUMNS[0])
        writer.get(self.COLUMNS[1])

        stepped_back = time.time() - 7200
        cache = IndexCache(
            cache_dir=tmp_path,
            max_disk_age_seconds=60,
            clock=lambda: stepped_back,
        )
        cache.get(self.COLUMNS[2])
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 3
        assert cache.disk_evictions == 0
        for i in range(2):
            mtime = cache.disk_path(self.COLUMNS[i], 2).stat().st_mtime
            assert mtime == pytest.approx(stepped_back, abs=2.0)

    def test_future_dated_snapshot_unpinned_and_ages_normally(self, tmp_path):
        # A peer host's fast clock stamped a snapshot an hour in the
        # future.  Raw mtime arithmetic gives it a negative age the
        # expiry check never trips and the LRU sort ranks permanently
        # most-recent — the stale file is pinned until the local clock
        # catches up.  The skew guard treats it as written now: kept on
        # sight (age zero), restamped, then expired like any other file
        # once it is genuinely older than the bound.
        writer = IndexCache(cache_dir=tmp_path)
        writer.get(self.COLUMNS[0])
        stale = writer.disk_path(self.COLUMNS[0], 2)
        self._age(stale, -3600)  # push the mtime into the future

        now = time.time()
        clock_now = [now]
        cache = IndexCache(
            cache_dir=tmp_path,
            max_disk_age_seconds=60,
            clock=lambda: clock_now[0],
        )
        cache.get(self.COLUMNS[1])  # first GC: clamp to age zero, restamp
        assert stale.exists()
        assert stale.stat().st_mtime == pytest.approx(now, abs=2.0)

        clock_now[0] = now + 3600
        cache.get(self.COLUMNS[2])  # second GC: ordinary expiry applies
        assert not stale.exists()

    def test_budget_smaller_than_one_file_keeps_newest(self, tmp_path):
        cache = IndexCache(cache_dir=tmp_path, max_disk_bytes=1)
        cache.get(self.COLUMNS[0])
        cache.get(self.COLUMNS[1])
        remaining = list(tmp_path.glob("qgram-*.npz"))
        assert len(remaining) == 1
        assert remaining[0] == cache.disk_path(self.COLUMNS[1], 2)

    def test_gc_tolerates_concurrent_deletion(self, tmp_path, monkeypatch):
        # Another process may GC the same directory: files vanishing
        # between the scan and the unlink must not raise or miscount.
        cache = IndexCache(cache_dir=tmp_path, max_disk_bytes=1)
        cache.get(self.COLUMNS[0])
        original_unlink = os.unlink

        def racing_unlink(path, *args, **kwargs):
            original_unlink(path)  # the "other process" wins the race
            return original_unlink(path)  # then ours fails

        monkeypatch.setattr(os, "unlink", racing_unlink)
        cache.get(self.COLUMNS[1])
        assert cache.disk_evictions == 0  # failed unlink is not counted

    def test_unbounded_tier_never_collects(self, tmp_path):
        cache = IndexCache(cache_dir=tmp_path)
        for column in self.COLUMNS:
            cache.get(column)
        assert len(list(tmp_path.glob("qgram-*.npz"))) == 3
        assert cache.disk_evictions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexCache(max_disk_bytes=0)
        with pytest.raises(ValueError):
            IndexCache(max_disk_age_seconds=0)

    def test_default_cache_reads_max_bytes_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(cache_module.CACHE_MAX_BYTES_ENV, "12345")
        monkeypatch.setattr(cache_module, "_DEFAULT_CACHE", None)
        cache = cache_module.default_index_cache()
        assert cache.max_disk_bytes == 12345


class TestAdaptiveQ:
    def test_steps_with_median_length(self):
        assert adaptive_q([]) == 2
        assert adaptive_q(["ab", "cde", "f"]) == 2
        assert adaptive_q(["x" * 19] * 5) == 2
        assert adaptive_q(["x" * 20] * 5) == 3
        assert adaptive_q(["x" * 39] * 5) == 3
        assert adaptive_q(["x" * 40] * 5) == 4

    def test_median_not_mean(self):
        # One pathological mega-cell must not drag q upward.
        column = ["abc"] * 9 + ["y" * 500]
        assert adaptive_q(column) == 2

"""Tests for the knowledge base."""

from __future__ import annotations

import pytest

from repro.exceptions import KnowledgeBaseError
from repro.kb import KnowledgeBase, Relation, build_default_kb
from repro.kb.store import knows_fact


class TestRelation:
    def test_lookup(self):
        relation = Relation("r", {"a": "1", "b": "2"})
        assert relation.lookup("a") == "1"
        assert relation.lookup("missing") is None

    def test_reverse_lookup(self):
        relation = Relation("r", {"a": "1"})
        assert relation.reverse_lookup("1") == "a"
        assert relation.reverse_lookup("2") is None

    def test_len(self):
        assert len(Relation("r", {"a": "1"})) == 1


class TestKnowledgeBase:
    def test_duplicate_relation_rejected(self):
        kb = KnowledgeBase()
        kb.add_relation(Relation("r"))
        with pytest.raises(KnowledgeBaseError):
            kb.add_relation(Relation("r"))

    def test_unknown_relation(self):
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase().relation("nope")

    def test_find_relation(self):
        kb = KnowledgeBase()
        kb.add_relation(Relation("r1", {"a": "1"}))
        kb.add_relation(Relation("r2", {"a": "1", "b": "2"}))
        assert kb.find_relation("a", "1") == ["r1", "r2"]
        assert kb.find_relation("b", "2") == ["r2"]

    def test_infer_from_examples_unique(self):
        kb = KnowledgeBase()
        kb.add_relation(Relation("r1", {"a": "1", "b": "2"}))
        relation = kb.infer_from_examples([("a", "1"), ("b", "2")])
        assert relation is not None and relation.name == "r1"

    def test_infer_tolerates_one_noisy_example(self):
        kb = KnowledgeBase()
        kb.add_relation(Relation("r1", {"a": "1", "b": "2", "c": "3"}))
        relation = kb.infer_from_examples(
            [("a", "1"), ("b", "2"), ("c", "GARBAGE")]
        )
        assert relation is not None and relation.name == "r1"

    def test_infer_rejects_mostly_wrong(self):
        kb = KnowledgeBase()
        kb.add_relation(Relation("r1", {"a": "1"}))
        assert kb.infer_from_examples([("a", "x"), ("b", "y")]) is None

    def test_infer_empty(self):
        assert KnowledgeBase().infer_from_examples([]) is None


class TestDefaultKB:
    def test_expected_relations_present(self):
        kb = build_default_kb()
        names = kb.relation_names()
        for expected in (
            "state_to_abbreviation",
            "country_to_capital",
            "country_to_citizen",
            "isbn_to_author",
            "city_to_zip",
        ):
            assert expected in names

    def test_well_known_facts(self):
        kb = build_default_kb()
        assert kb.lookup("state_to_abbreviation", "Texas") == "TX"
        assert kb.lookup("country_to_capital", "Canada") == "Ottawa"
        assert kb.lookup("country_to_citizen", "Netherlands") == "Dutch"
        assert kb.lookup("month_to_number", "March") == "03"

    def test_parametric_relations_flagged(self):
        kb = build_default_kb()
        assert kb.relation("isbn_to_author").parametric
        assert kb.relation("city_to_zip").parametric
        assert not kb.relation("country_to_capital").parametric

    def test_parametric_relations_deterministic(self):
        a = build_default_kb(seed=9).relation("isbn_to_author").pairs
        b = build_default_kb(seed=9).relation("isbn_to_author").pairs
        assert a == b

    def test_parametric_relations_vary_with_seed(self):
        a = build_default_kb(seed=1).relation("isbn_to_author").pairs
        b = build_default_kb(seed=2).relation("isbn_to_author").pairs
        assert a != b

    def test_relation_sizes(self):
        kb = build_default_kb()
        assert len(kb.relation("state_to_abbreviation")) == 50
        assert len(kb.relation("month_to_number")) == 12
        assert len(kb.relation("isbn_to_author")) >= 100


class TestKnowsFact:
    def test_deterministic(self):
        assert knows_fact("m", "r", "s", 0.5) == knows_fact("m", "r", "s", 0.5)

    def test_boundary_coverages(self):
        assert not knows_fact("m", "r", "s", 0.0)
        assert knows_fact("m", "r", "s", 1.0)

    def test_coverage_fraction_approximate(self):
        known = sum(
            1 for i in range(1000) if knows_fact("m", "r", f"s{i}", 0.3)
        )
        assert 230 <= known <= 370

    def test_models_have_different_knowledge(self):
        facts_a = {knows_fact("model-a", "r", f"s{i}", 0.5) for i in range(20)}
        facts_b = [knows_fact("model-b", "r", f"s{i}", 0.5) for i in range(20)]
        assert len(facts_a) == 2 or any(facts_b)  # sanity: both vary

"""Tests for the similarity-function family."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    char_ngrams,
    containment_similarity,
    cosine_ngram_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    token_jaccard,
)

words = st.text(alphabet="abcdef 123", max_size=20)


class TestCharNgrams:
    def test_counts(self):
        grams = char_ngrams("aba", n=2, pad=False)
        assert grams == {"ab": 1, "ba": 1}

    def test_padded_edges(self):
        grams = char_ngrams("ab", n=2, pad=True)
        assert "#a" in grams and "b#" in grams

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n=0)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity("hello", "hello") == 1.0

    def test_disjoint(self):
        assert jaccard_similarity("aaaa", "zzzz") == 0.0

    def test_both_empty(self):
        assert jaccard_similarity("", "") == 1.0

    @given(words, words)
    @settings(max_examples=100)
    def test_range_and_symmetry(self, a, b):
        value = jaccard_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaccard_similarity(b, a))


class TestTokenJaccard:
    def test_order_invariant(self):
        assert token_jaccard("hello world", "world hello") == 1.0

    def test_case_insensitive(self):
        assert token_jaccard("Hello", "hello") == 1.0

    def test_partial(self):
        assert token_jaccard("a b", "b c") == pytest.approx(1 / 3)


class TestCosine:
    def test_identical(self):
        assert cosine_ngram_similarity("abc", "abc") == pytest.approx(1.0)

    @given(words, words)
    @settings(max_examples=80)
    def test_range(self, a, b):
        assert 0.0 <= cosine_ngram_similarity(a, b) <= 1.0 + 1e-9


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic example: MARTHA vs MARHTA.
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.9611, abs=1e-3
        )

    def test_empty(self):
        assert jaro_winkler_similarity("", "abc") == 0.0

    @given(words, words)
    @settings(max_examples=80)
    def test_range(self, a, b):
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0


class TestContainment:
    def test_substring_is_contained(self):
        assert containment_similarity("abcdefghij", "cdefgh") == 1.0

    def test_short_targets_are_degenerate(self):
        # Two-character strings carry no containment evidence.
        assert containment_similarity("Wisconsin", "WI") == 0.0

    def test_disjoint(self):
        assert containment_similarity("aaaaaa", "zzzzzz") == 0.0

"""Tests for the evaluation runner, table rendering, and experiments."""

from __future__ import annotations

import pytest

from repro.baselines import CSTJoiner
from repro.eval.runner import DTTJoinerAdapter, evaluate_on_dataset, evaluate_on_table
from repro.eval.tables import render_dataset_table
from repro.surrogate import PretrainedDTT
from repro.types import TablePair


@pytest.fixture(scope="module")
def small_table() -> TablePair:
    names = [
        ("Justin Trudeau", "jtrudeau"), ("Stephen Harper", "sharper"),
        ("Paul Martin", "pmartin"), ("Jean Chretien", "jchretien"),
        ("Kim Campbell", "kcampbell"), ("Brian Mulroney", "bmulroney"),
        ("John Turner", "jturner"), ("Pierre Trudeau", "ptrudeau"),
        ("Joe Clark", "jclark"), ("Lester Pearson", "lpearson"),
        ("John Diefenbaker", "jdiefenbaker"), ("Louis Laurent", "llaurent"),
    ]
    return TablePair(
        name="pm",
        sources=tuple(n for n, _ in names),
        targets=tuple(u for _, u in names),
        dataset="PM",
    )


class TestEvaluateOnTable:
    def test_dtt_scores_high_on_clean_table(self, small_table):
        adapter = DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=1)
        report = evaluate_on_table(adapter, small_table)
        assert report.join.f1 > 0.8
        assert report.edits is not None
        assert report.seconds > 0.0

    def test_noise_injection_applies_to_examples_only(self, small_table):
        adapter = DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=1)
        clean = evaluate_on_table(adapter, small_table, noise_ratio=0.0)
        noisy = evaluate_on_table(adapter, small_table, noise_ratio=0.9, noise_seed=5)
        assert noisy.join.f1 <= clean.join.f1 + 1e-9

    def test_baseline_without_predictions_has_no_edits(self, small_table):
        report = evaluate_on_table(CSTJoiner(), small_table)
        assert report.edits is None

    def test_method_name_recorded(self, small_table):
        report = evaluate_on_table(CSTJoiner(), small_table)
        assert report.method == "CST"


class TestEvaluateOnDataset:
    def test_averages_tables(self, small_table):
        adapter = DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=2)
        report = evaluate_on_dataset(adapter, [small_table, small_table])
        assert report.tables == 2
        assert 0.0 <= report.f1 <= 1.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            evaluate_on_dataset(CSTJoiner(), [])


class TestRenderTable:
    def test_renders_all_columns(self, small_table):
        adapter = DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=3)
        report = evaluate_on_dataset(adapter, [small_table])
        text = render_dataset_table(
            {"PM": {"DTT": report}},
            methods=["DTT"],
            columns=("P", "R", "F", "AED", "ANED"),
            title="demo",
        )
        assert "demo" in text
        assert "DTT:F" in text
        assert "PM" in text

    def test_missing_method_renders_dash(self, small_table):
        adapter = DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=3)
        report = evaluate_on_dataset(adapter, [small_table])
        text = render_dataset_table(
            {"PM": {"DTT": report}}, methods=["DTT", "CST"], columns=("F",)
        )
        assert "-" in text

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError):
            render_dataset_table({}, methods=[], columns=("bogus",))


class TestExperimentsSmoke:
    """Tiny-scale smoke runs of every experiment definition."""

    def test_table1(self):
        from repro.eval.experiments import run_table1

        result = run_table1(scale=0.08, seed=11, datasets=("SS", "Syn-RP"))
        assert set(result) == {"SS", "Syn-RP"}
        assert "DTT" in result["SS"]

    def test_table2(self):
        from repro.eval.experiments import run_table2

        result = run_table2(
            scale=0.08, seed=11, example_counts=(2,), datasets=("Syn-RP",)
        )
        assert "GPT3-2e" in result["Syn-RP"]
        assert "GPT3-DTT-2e" in result["Syn-RP"]

    def test_figure5(self):
        from repro.eval.experiments import run_figure5

        result = run_figure5(
            scale=0.08, seed=11, noise_ratios=(0.0, 0.4), datasets=("SS",)
        )
        assert result["DTT"]["SS"][0].f1 == 0.0  # drop at ratio 0 is 0

    def test_figure6(self):
        from repro.eval.experiments import run_figure6

        result = run_figure6(scale=0.05, seed=11, trial_counts=(2, 3))
        assert "WT" in result and "WT-n" in result

    def test_figure4(self):
        from repro.eval.experiments import run_figure4

        curves = run_figure4(
            scale=0.08, seed=11, sample_counts=(0, 2000), datasets=("Syn-RP",)
        )
        points = {p.x: p for p in curves["Syn-RP"]}
        assert points[2000].f1 >= points[0].f1

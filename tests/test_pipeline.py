"""End-to-end tests of the DTT pipeline (Figure 2)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import DTTPipeline
from repro.surrogate import GPT3Surrogate, PretrainedDTT
from repro.types import ExamplePair


class TestTransformColumn:
    def test_paper_running_example(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, seed=1)
        predictions = pipeline.transform_column(
            ["Jean Chretien", "Kim Campbell"], pm_examples
        )
        assert [p.value for p in predictions] == ["jchretien", "kcampbell"]
        assert all(p.votes >= 3 for p in predictions)

    def test_empty_sources(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model)
        assert pipeline.transform_column([], pm_examples) == []

    def test_prediction_order_matches_input(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, seed=2)
        sources = ["Kim Campbell", "Jean Chretien"]
        predictions = pipeline.transform_column(sources, pm_examples)
        assert [p.source for p in predictions] == sources

    def test_trial_count_controls_candidates(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, n_trials=3, seed=3)
        predictions = pipeline.transform_column(["Jean Chretien"], pm_examples)
        assert len(predictions[0].candidates) == 3

    def test_multi_model_doubles_candidates(self, pm_examples):
        pipeline = DTTPipeline(
            [PretrainedDTT(seed=0), GPT3Surrogate(seed=0)], n_trials=2, seed=4
        )
        predictions = pipeline.transform_column(["Jean Chretien"], pm_examples)
        assert len(predictions[0].candidates) == 4

    def test_requires_model(self):
        with pytest.raises(ValueError):
            DTTPipeline([])

    def test_name_mentions_models(self, pretrained_model):
        assert "DTT" in DTTPipeline(pretrained_model).name

    def test_stopwatch_records_stages(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, seed=5)
        pipeline.transform_column(["Jean Chretien"], pm_examples)
        assert {"decompose", "predict", "aggregate"} <= set(
            pipeline.stopwatch.laps
        )


class TestJoin:
    def test_join_with_imperfect_predictions(self, pretrained_model, pm_examples):
        # Even if the model's output differs slightly, the edit-distance
        # join should still find the right row (the paper's key point).
        pipeline = DTTPipeline(pretrained_model, seed=6)
        targets = ["jchretien", "kcampbell", "jtrudeau", "sharper", "pmartin"]
        results = pipeline.join(
            ["Jean Chretien", "Kim Campbell"],
            targets,
            pm_examples,
            expected=["jchretien", "kcampbell"],
        )
        assert all(r.correct for r in results)

    def test_join_without_expected(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, seed=7)
        results = pipeline.join(["Jean Chretien"], ["jchretien"], pm_examples)
        assert results[0].matched == "jchretien"
        assert results[0].expected == ""

    def test_join_records_time(self, pretrained_model, pm_examples):
        pipeline = DTTPipeline(pretrained_model, seed=8)
        pipeline.join(["Jean Chretien"], ["jchretien"], pm_examples)
        assert "join" in pipeline.stopwatch.laps

"""Tests for join metrics, edit metrics, and report averaging (§5.4)."""

from __future__ import annotations

import pytest

from repro.metrics import (
    average_reports,
    score_edits,
    score_join,
)
from repro.metrics.report import TableReport
from repro.types import JoinResult


def _result(matched: str | None, expected: str) -> JoinResult:
    return JoinResult(source="s", predicted="p", matched=matched, expected=expected)


class TestScoreJoin:
    def test_perfect(self):
        scores = score_join([_result("t", "t")] * 4)
        assert scores.precision == scores.recall == scores.f1 == 1.0

    def test_unmatched_rows_hit_recall_not_precision(self):
        results = [_result("t", "t"), _result(None, "t")]
        scores = score_join(results)
        assert scores.precision == 1.0
        assert scores.recall == 0.5
        assert scores.f1 == pytest.approx(2 / 3)

    def test_wrong_match_hits_both(self):
        results = [_result("u", "t"), _result("t", "t")]
        scores = score_join(results)
        assert scores.precision == 0.5
        assert scores.recall == 0.5

    def test_empty_results(self):
        scores = score_join([])
        assert scores.f1 == 0.0
        assert scores.total == 0

    def test_no_matches(self):
        scores = score_join([_result(None, "t")])
        assert scores.precision == 0.0
        assert scores.f1 == 0.0


class TestScoreEdits:
    def test_exact_predictions(self):
        scores = score_edits(["abc", "d"], ["abc", "d"])
        assert scores.aed == 0.0
        assert scores.aned == 0.0

    def test_known_values(self):
        scores = score_edits(["ab"], ["abcd"])
        assert scores.aed == 2.0
        assert scores.aned == pytest.approx(0.5)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            score_edits(["a"], [])

    def test_empty_inputs(self):
        scores = score_edits([], [])
        assert scores.count == 0


class TestAverageReports:
    def _table(self, f1: float, aned: float) -> TableReport:
        from repro.metrics.edit_metrics import EditScores
        from repro.metrics.join_metrics import JoinScores

        return TableReport(
            table="t",
            method="m",
            join=JoinScores(
                precision=f1, recall=f1, f1=f1, matched=1, correct=1, total=1
            ),
            edits=EditScores(aed=aned * 10, aned=aned, count=1),
            seconds=1.0,
        )

    def test_averages(self):
        report = average_reports("D", "m", [self._table(1.0, 0.0), self._table(0.5, 0.4)])
        assert report.f1 == pytest.approx(0.75)
        assert report.aned == pytest.approx(0.2)
        assert report.seconds == pytest.approx(2.0)
        assert report.tables == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_reports("D", "m", [])

    def test_handles_missing_edit_scores(self):
        from repro.metrics.join_metrics import JoinScores

        table = TableReport(
            table="t",
            method="m",
            join=JoinScores(
                precision=1.0, recall=1.0, f1=1.0, matched=1, correct=1, total=1
            ),
            edits=None,
        )
        report = average_reports("D", "m", [table])
        assert report.aned == 0.0

"""Setup shim for editable installs in environments without `wheel`."""

from setuptools import setup

setup()

#!/usr/bin/env python
"""One-command reproduction: every gated bench + the eval tables -> one manifest.

Re-runs the seven ``BENCH_*.json`` emitters (via their shared
``--smoke`` / ``--json-out`` CLI) and a scaled-down slice of the eval
tables, then folds everything into a single machine-readable **run
manifest** (schema in :mod:`repro.obs.manifest`): environment and host
provenance, per-bench seeds and key metrics, deltas against the
committed artifacts at the repository root, per-bench floor verdicts,
and self-describing flags for committed artifacts whose recorded host
invalidates a class of claims (e.g. parallel speedups recorded on a
single-core runner).

Floor verdicts come from two independent gates: the emitter's own exit
status and the shared :data:`repro.obs.manifest.BENCH_FLOORS` schema
re-applied to the fresh key metrics (so the manifest names the exact
bar that failed or was skipped on a starved host).  ``--against`` adds
run-over-run trend history: per-metric deltas versus a previous
manifest, recorded in the new manifest's ``trends`` block.

Usage::

    python scripts/reproduce_all.py --smoke            # CI: seconds-scale
    python scripts/reproduce_all.py                    # full sweeps (slow)
    python scripts/reproduce_all.py --smoke --out m.json --skip-eval
    python scripts/reproduce_all.py --smoke --against run_manifest.json

Exit status is the manifest verdict: 0 when every bench ran, every
committed artifact was found, and every floor held; 1 otherwise.  The
fresh reports are written next to the manifest (``<out>.reports/``) so
a failing run leaves its evidence behind.  Committed ``BENCH_*.json``
artifacts are **never** overwritten by this script — refreshing the
trajectory stays an explicit per-bench act.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.manifest import (  # noqa: E402 - path bootstrap above
    GATED_BENCHES,
    artifact_flags,
    bench_deltas,
    build_manifest,
    check_floors,
    key_metrics,
    load_manifest,
    manifest_trends,
    new_run_id,
    provenance,
    save_manifest,
)

#: Eval slice: dataset name -> registry scale.  Small enough for the CI
#: slow lane, real enough to expose a scoring regression.
_EVAL_DATASETS_SMOKE = {"WT": 0.05, "Syn": 0.2, "JAB": 0.1}
_EVAL_DATASETS_FULL = {"WT": 0.2, "SS": 0.05, "Syn": 0.5, "JAB": 0.5}


def _bench_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_bench(
    name: str, smoke: bool, report_dir: Path, cores: int | None = None
) -> dict:
    """Run one emitter subprocess; returns its manifest block.

    The emitter writes its fresh report to ``report_dir`` via
    ``--json-out`` (which never touches the committed artifact) and
    enforces its own smoke floors by exit status — the report is
    emitted *before* the floor assertions, so a floor regression still
    leaves the numbers behind for the delta section.  On top of the
    emitter's exit status, the :data:`~repro.obs.manifest.BENCH_FLOORS`
    schema is re-applied here to the fresh key metrics, so the manifest
    records *which* bar failed (or was skipped on a starved host), not
    just that the subprocess exited non-zero.

    The serve bench additionally records a full trace dump
    (``serve_traces.json`` next to the fresh reports) so a slow-lane
    failure leaves span-level evidence behind for CI to archive.
    """
    script = REPO_ROOT / "benchmarks" / f"bench_{name}.py"
    report_path = report_dir / f"BENCH_{name}.json"
    cmd = [sys.executable, str(script), "--json-out", str(report_path)]
    if smoke:
        cmd.append("--smoke")
    if name == "serve":
        cmd += ["--trace-dump", str(report_dir / "serve_traces.json")]
    print(f"[reproduce] {name}: {' '.join(cmd[1:])}", flush=True)
    proc = subprocess.run(
        cmd,
        cwd=REPO_ROOT,
        env=_bench_env(),
        capture_output=True,
        text=True,
    )
    block: dict = {"ran": False, "committed_found": False}
    report: dict | None = None
    if report_path.exists():
        try:
            report = json.loads(report_path.read_text())
        except json.JSONDecodeError:
            report = None
    if report is not None:
        block["ran"] = True
        block["seed"] = report.get("seed")
        block["metrics"] = key_metrics(name, report)
        block["flags"] = artifact_flags(name, report)
        block["provenance"] = report.get("provenance")
    schema = check_floors(name, block.get("metrics") or {}, cores=cores)
    emitter_ok = proc.returncode == 0 and report is not None
    if not emitter_ok:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()
        detail = " | ".join(tail[-3:]) if tail else "emitter failed"
    elif not schema["passed"]:
        detail = f"schema floors failed: {schema['detail']}"
    else:
        detail = f"emitter ok; schema: {schema['detail']}"
    block["floors"] = {
        "passed": emitter_ok and schema["passed"],
        "detail": detail,
        "schema": schema,
    }

    committed_path = REPO_ROOT / f"BENCH_{name}.json"
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        committed_metrics = key_metrics(name, committed)
        block["committed_found"] = True
        block["committed"] = {
            "metrics": committed_metrics,
            "provenance": committed.get("provenance"),
            "flags": artifact_flags(name, committed),
        }
        if report is not None:
            deltas = bench_deltas(block["metrics"], committed_metrics)
            deltas["scale_matches_committed"] = not (
                deltas["only_current"] or deltas["only_committed"]
            )
            block["deltas"] = deltas
    return block


def run_eval(datasets: dict[str, float], seed: int = 0) -> list[dict]:
    """Score the DTT surrogate on scaled registry datasets."""
    from repro.datagen.benchmarks.registry import get_dataset
    from repro.eval.runner import (
        DTTJoinerAdapter,
        evaluate_on_dataset,
        manifest_rows,
    )
    from repro.surrogate import PretrainedDTT

    reports = []
    for name, scale in datasets.items():
        print(f"[reproduce] eval: {name} (scale {scale})", flush=True)
        tables = get_dataset(name, seed=seed, scale=scale)
        adapter = DTTJoinerAdapter(
            PretrainedDTT(seed=seed), name="DTT", seed=seed
        )
        reports.append(evaluate_on_dataset(adapter, tables))
    return manifest_rows(reports)


def _render_summary(manifest: dict) -> str:
    lines = [
        f"run {manifest['run_id']} ({manifest['mode']}) on "
        f"{manifest['environment']['platform']} "
        f"[{manifest['environment']['cpu_affinity']} cores granted]"
    ]
    for name, block in manifest["benches"].items():
        if not block.get("ran"):
            lines.append(f"  {name:<14s} DID NOT RUN")
            continue
        floors = "ok" if block["floors"]["passed"] else "FLOOR FAILED"
        deltas = block.get("deltas", {}).get("metrics", {})
        headline = deltas.get("headline")
        delta_note = (
            f" headline {headline['current']:.2f}x vs committed "
            f"{headline['committed']:.2f}x"
            if headline
            else ""
        )
        flag_note = ""
        flags = (block.get("committed") or {}).get("flags") or []
        if flags:
            flag_note = f"  [committed artifact flags: {'; '.join(flags)}]"
        lines.append(f"  {name:<14s} {floors}{delta_note}{flag_note}")
    for row in manifest["eval"]:
        lines.append(
            f"  eval {row['dataset']:<9s} {row['method']}: "
            f"F1 {row['f1']:.3f} over {row['tables']} tables"
        )
    trends = manifest.get("trends")
    if trends is not None:
        note = "" if trends["comparable"] else " [DIFFERENT MODE]"
        lines.append(
            f"trends vs {trends['against_run_id']} "
            f"({trends['against_mode']}){note}"
        )
        for name, block in trends["benches"].items():
            headline = block["metrics"].get("headline")
            if headline is None:
                continue
            lines.append(
                f"  {name:<14s} headline {headline['current']:.2f}x "
                f"was {headline['previous']:.2f}x "
                f"(delta {headline['delta']:+.2f})"
            )
    verdict = manifest["verdict"]
    lines.append(
        "VERDICT: PASS"
        if verdict["passed"]
        else "VERDICT: FAIL\n    " + "\n    ".join(verdict["failures"])
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale sweeps with the emitters' CI floors enforced",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "run_manifest.json",
        help="manifest destination (fresh bench reports land in "
        "<out>.reports/)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=GATED_BENCHES,
        help="run only these benches (repeatable; missing ones still "
        "fail the verdict — a partial run is not a reproduction)",
    )
    parser.add_argument(
        "--skip-eval",
        action="store_true",
        help="skip the eval-table slice",
    )
    parser.add_argument(
        "--against",
        type=Path,
        default=None,
        help="previous manifest to trend against; the new manifest "
        "gains a 'trends' block with per-metric run-over-run deltas "
        "(read before --out is written, so trending against the "
        "manifest being replaced works)",
    )
    args = parser.parse_args(argv)

    # Load the trend baseline up front: it fails fast on a schema
    # mismatch, and --against may name the very file --out overwrites.
    previous = (
        load_manifest(args.against) if args.against is not None else None
    )

    report_dir = args.out.with_name(args.out.name + ".reports")
    report_dir.mkdir(parents=True, exist_ok=True)
    selected = args.bench or list(GATED_BENCHES)
    environment = provenance()

    benches = {
        name: run_bench(
            name,
            smoke=args.smoke,
            report_dir=report_dir,
            cores=environment["cpu_affinity"],
        )
        for name in selected
    }
    eval_rows: list[dict] = []
    if not args.skip_eval:
        datasets = (
            _EVAL_DATASETS_SMOKE if args.smoke else _EVAL_DATASETS_FULL
        )
        eval_rows = run_eval(datasets)

    manifest = build_manifest(
        run_id=new_run_id(),
        environment=environment,
        benches=benches,
        eval_rows=eval_rows,
        mode="smoke" if args.smoke else "full",
    )
    if previous is not None:
        manifest["trends"] = manifest_trends(manifest, previous)
    save_manifest(manifest, args.out)
    print(_render_summary(manifest))
    print(f"[reproduce] manifest written to {args.out}")
    return 0 if manifest["verdict"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Docs link-and-freshness check: the ``docs/`` site must stay true.

Three classes of rot this catches, each a CI failure:

* **Dead links** — every relative markdown link in ``README.md`` and
  ``docs/*.md`` must resolve to a file inside the repository, and a
  ``#fragment`` pointing into a markdown file must match one of that
  file's heading anchors (GitHub slug rules).  Links that leave the
  repository (``https://``, the CI badge's ``../../actions/...``) are
  out of scope — we cannot validate the outside world from a checkout.
* **Undocumented benchmarks** — every committed ``BENCH_*.json``
  artifact at the repository root must be mentioned by name somewhere
  in the docs, so a new gated artifact cannot land invisibly.
* **Undocumented endpoints** — every path in
  ``repro.serve.http.PUBLIC_ENDPOINTS`` must appear in
  ``docs/http_api.md``, so the API reference cannot silently lag the
  server.

Usage::

    python scripts/check_docs.py          # exit 0 clean, 1 with findings

``tests/test_docs.py`` runs the same functions in the tier-1 lane, so
the check gates merges even before the dedicated CI step runs.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: The pages the docs site must always have; a rename without updating
#: this tuple (and every inbound link) is a failure, not a drive-by.
REQUIRED_PAGES = (
    "architecture.md",
    "http_api.md",
    "observability.md",
    "operations.md",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*\S)\s*$")


def collect_doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown set under check: ``README.md`` + ``docs/*.md``."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def _heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchor slugs for every heading outside code fences."""
    anchors: set[str] = set()
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            heading = match.group(1).lower()
            slug = re.sub(r"[^\w\- ]", "", heading).replace(" ", "-")
            anchors.add(slug)
    return anchors


def check_links(files: list[Path], root: Path = REPO_ROOT) -> list[str]:
    """Dead relative links and dangling ``#fragment`` anchors."""
    problems: list[str] = []
    root = root.resolve()
    for doc in files:
        text = doc.read_text()
        rel_doc = doc.resolve().relative_to(root)
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:
                # Same-page anchor.
                if fragment and fragment not in _heading_anchors(text):
                    problems.append(
                        f"{rel_doc}: dangling same-page anchor #{fragment}"
                    )
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.is_relative_to(root):
                # Points outside the checkout (e.g. the CI badge's
                # GitHub-relative URL) — unverifiable from here.
                continue
            if not resolved.exists():
                problems.append(f"{rel_doc}: dead link {target}")
                continue
            if fragment and resolved.suffix == ".md":
                anchors = _heading_anchors(resolved.read_text())
                if fragment not in anchors:
                    problems.append(
                        f"{rel_doc}: link {target} points at a heading "
                        f"{resolved.name} does not have"
                    )
    return problems


def check_bench_coverage(
    files: list[Path], root: Path = REPO_ROOT
) -> list[str]:
    """Every committed ``BENCH_*.json`` must be named in the docs."""
    corpus = "\n".join(f.read_text() for f in files)
    problems = []
    for artifact in sorted(root.glob("BENCH_*.json")):
        if artifact.name not in corpus:
            problems.append(
                f"{artifact.name}: committed benchmark artifact is never "
                "mentioned in README.md or docs/"
            )
    return problems


def check_endpoint_coverage(root: Path = REPO_ROOT) -> list[str]:
    """Every public HTTP endpoint must appear in ``docs/http_api.md``."""
    from repro.serve.http import PUBLIC_ENDPOINTS

    api_doc = root / "docs" / "http_api.md"
    if not api_doc.is_file():
        return ["docs/http_api.md: missing (the API reference page)"]
    text = api_doc.read_text()
    return [
        f"docs/http_api.md: public endpoint {endpoint} is undocumented"
        for endpoint in PUBLIC_ENDPOINTS
        if endpoint not in text
    ]


def check_required_pages(root: Path = REPO_ROOT) -> list[str]:
    """The pages the README promises must exist."""
    return [
        f"docs/{page}: required page is missing"
        for page in REQUIRED_PAGES
        if not (root / "docs" / page).is_file()
    ]


def run_all(root: Path = REPO_ROOT) -> list[str]:
    """Every check; the full problem list (empty means clean)."""
    files = collect_doc_files(root)
    problems = check_required_pages(root)
    problems += check_links(files, root)
    problems += check_bench_coverage(files, root)
    problems += check_endpoint_coverage(root)
    return problems


def main() -> int:
    problems = run_all()
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    files = collect_doc_files()
    print(f"check_docs: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Quickstart: transform a column from a few examples (paper §2).

The running example of the paper: given three (name, user id) pairs,
predict the user ids of the remaining prime ministers, then join the
columns.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DTTPipeline, ExamplePair, PretrainedDTT

EXAMPLES = [
    ExamplePair("Justin Trudeau", "jtrudeau"),
    ExamplePair("Stephen Harper", "sharper"),
    ExamplePair("Paul Martin", "pmartin"),
]
REMAINING = ["Jean Chretien", "Kim Campbell", "Brian Mulroney"]
TARGET_COLUMN = [
    "jtrudeau", "sharper", "pmartin", "jchretien", "kcampbell", "bmulroney",
]


def main() -> None:
    model = PretrainedDTT()
    pipeline = DTTPipeline(model, context_size=2, n_trials=5, seed=0)

    print("Missing-value prediction (paper §2):")
    predictions = pipeline.transform_column(REMAINING, EXAMPLES)
    for prediction in predictions:
        print(
            f"  {prediction.source:18s} -> {prediction.value:12s} "
            f"({prediction.votes}/{len(prediction.candidates)} trials agree)"
        )

    print("\nHeterogeneous join (paper §4.4, Eq. 5):")
    results = pipeline.join(REMAINING, TARGET_COLUMN, EXAMPLES)
    for result in results:
        print(
            f"  {result.source:18s} -> predicted {result.predicted!r}, "
            f"matched {result.matched!r} (edit distance {result.distance})"
        )


if __name__ == "__main__":
    main()

"""Train the byte-level seq2seq transformer from scratch (paper §4.2, §5.1).

Generates a small corpus of transformation groupings, fine-tunes the
numpy encoder-decoder on serialized subsets, and plugs the trained model
into the same DTT pipeline used everywhere else.  This exercises the
paper's full training recipe at laptop scale (the released-checkpoint
behaviour in the benchmarks is provided by the PretrainedDTT stand-in —
see DESIGN.md §2).

Run:  python examples/train_model.py          (~1-2 minutes on CPU)
"""

from __future__ import annotations

from repro import DTTPipeline, ExamplePair
from repro.datagen.training import TrainingDataGenerator
from repro.model import ByteSeq2SeqModel, Trainer
from repro.model.config import DTTModelConfig


def main() -> None:
    # A deliberately easy training distribution so the tiny model
    # converges quickly: short inputs, shallow transformations.
    generator = TrainingDataGenerator(
        seed=3, min_length=4, max_length=8, pairs_per_grouping=8
    )
    instances = generator.generate_instances(
        grouping_count=120, subsets_per_grouping=6
    )
    print(f"training instances: {len(instances)}")

    config = DTTModelConfig(
        dim=48,
        n_heads=4,
        encoder_layers=2,
        decoder_layers=1,
        ffn_hidden=96,
        max_input_length=96,
        max_output_length=24,
    )
    model = ByteSeq2SeqModel(config)
    print(f"model parameters: {model.network.n_parameters:,}")

    trainer = Trainer(model, learning_rate=3e-3, batch_size=32, patience=3)
    report = trainer.fit(instances, epochs=6)
    print("train loss per epoch:", [f"{x:.3f}" for x in report.train_losses])
    print("validation loss     :", [f"{x:.3f}" for x in report.validation_losses])

    # The trained network drops into the identical pipeline.
    pipeline = DTTPipeline(model, seed=0)
    examples = [ExamplePair("abcd", "ABCD"), ExamplePair("wxyz", "WXYZ"),
                ExamplePair("pqrs", "PQRS")]
    predictions = pipeline.transform_column(["lmno"], examples)
    print(f"\npipeline with the trained transformer: 'lmno' -> "
          f"{predictions[0].value!r} (uppercase mapping)")


if __name__ == "__main__":
    main()

"""Multi-model aggregation: DTT + GPT-3 in one framework (paper §5.7).

The fine-tuned model excels at textual transformations; the large
general-purpose LLM carries world knowledge (state abbreviations,
capitals).  Pooling equally weighted trials from both lets the
aggregator pick whichever model is consistent on each table.

Run:  python examples/multi_model_ensemble.py
"""

from __future__ import annotations

from repro import (
    DTTPipeline,
    ExamplePair,
    GPT3Surrogate,
    PretrainedDTT,
)

TEXTUAL_EXAMPLES = [
    ExamplePair("Gerard Little", "g.little"),
    ExamplePair("Norm Adams", "n.adams"),
    ExamplePair("Julie Lauzon", "j.lauzon"),
]
SEMANTIC_EXAMPLES = [
    ExamplePair("Texas", "TX"),
    ExamplePair("Ohio", "OH"),
    ExamplePair("Maine", "ME"),
]


def run(pipeline: DTTPipeline, label: str) -> None:
    textual = pipeline.transform_column(["Max Anderson"], TEXTUAL_EXAMPLES)[0]
    semantic = pipeline.transform_column(["Florida"], SEMANTIC_EXAMPLES)[0]
    print(
        f"{label:12s} textual: {textual.value!r:14s} "
        f"semantic: {semantic.value!r:8s} "
        f"(consistency {textual.consistency:.1f}/{semantic.consistency:.1f})"
    )


def main() -> None:
    dtt_only = DTTPipeline(PretrainedDTT(), seed=0)
    gpt_only = DTTPipeline(GPT3Surrogate(), seed=0)
    combined = DTTPipeline([PretrainedDTT(), GPT3Surrogate()], seed=0)

    print("name -> user id (textual) and state -> abbreviation (semantic):")
    run(dtt_only, "DTT")
    run(gpt_only, "GPT3")
    run(combined, "DTT+GPT3")
    print(
        "\nThe ensemble tracks the better model on each task — the "
        "aggregator selects the output with the higher cross-trial "
        "consistency (Table 3 of the paper)."
    )


if __name__ == "__main__":
    main()

"""Drive the serving layer over HTTP, end to end, in one process.

Starts a ``TransformService`` (the same thing ``python -m repro.serve``
runs) behind the stdlib JSON front end on an ephemeral port, then acts
as a swarm of HTTP clients: concurrent transform requests that the
service coalesces into shared micro-batches, a join request, a repeat
request served from the memoized result cache, and a stats read.

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import DTTPipeline, PretrainedDTT, TransformService
from repro.serve import start_http_server

EXAMPLES = [
    ["Justin Trudeau", "jtrudeau"],
    ["Stephen Harper", "sharper"],
    ["Paul Martin", "pmartin"],
]
SOURCES = ["Jean Chretien", "Kim Campbell", "Brian Mulroney"]
TARGETS = [
    "jtrudeau", "sharper", "pmartin", "jchretien", "kcampbell", "bmulroney",
]


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        json.dumps(payload).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def main() -> None:
    service = TransformService(
        DTTPipeline(PretrainedDTT(), seed=0), max_wait_ms=5.0
    )
    server = start_http_server(service)  # port 0 = pick a free one
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"service up at {base}\n")

    print("8 concurrent clients, coalesced into shared micro-batches:")
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [
            pool.submit(
                post,
                base,
                "/v1/transform",
                {"sources": [source], "examples": EXAMPLES},
            )
            for source in SOURCES * 2
        ]
        for future in futures[: len(SOURCES)]:
            prediction = future.result()["predictions"][0]
            print(f"  {prediction['source']:18s} -> {prediction['value']}")

    print("\nA join request (Eq. 5 against the target column):")
    joined = post(
        base,
        "/v1/join",
        {"sources": SOURCES, "targets": TARGETS, "examples": EXAMPLES},
    )
    for row in joined["results"]:
        print(f"  {row['source']:18s} -> {row['matched']} (d={row['distance']})")

    print("\nThe same join again — served from the memoized result cache:")
    started = time.perf_counter()
    post(
        base,
        "/v1/join",
        {"sources": SOURCES, "targets": TARGETS, "examples": EXAMPLES},
    )
    print(f"  replay took {(time.perf_counter() - started) * 1000:.1f} ms")

    with urllib.request.urlopen(base + "/v1/stats") as response:
        stats = json.load(response)
    print(
        f"\nstats: {stats['requests']} requests in {stats['batches']} "
        f"batches, {stats['cache_hits']} cache hits / "
        f"{stats['cache_misses']} misses"
    )

    server.shutdown()
    server.server_close()
    service.close()
    print("clean shutdown complete")


if __name__ == "__main__":
    main()

"""The no-user-examples workflow: auto-generate examples, then join (§2).

When nobody labels example pairs, Auto-join/CST-style *token matching*
can bootstrap them from the two unjoined columns — at the cost of noise
and invalid pairs, which DTT's aggregation absorbs (§5.10).

Run:  python examples/auto_examples_workflow.py
"""

from __future__ import annotations

from repro import DTTPipeline, PretrainedDTT, get_dataset
from repro.datagen.auto_examples import AutoExampleGenerator
from repro.metrics import score_join


def main() -> None:
    table = get_dataset("WT", seed=4, scale=0.2)[1]  # a name-rearrange topic
    pool_rows, test_rows = table.split()
    print(f"table {table.name!r}: no user-provided examples available")

    generator = AutoExampleGenerator(min_score=0.25)
    generated = generator.generate(
        [r.source for r in pool_rows], [r.target for r in pool_rows]
    )
    print(f"\nauto-generated {len(generated)} example pairs, e.g.:")
    for auto in generated[:4]:
        print(
            f"  {auto.pair.source!r} <-> {auto.pair.target!r} "
            f"(score {auto.score:.2f})"
        )

    pipeline = DTTPipeline(PretrainedDTT(), seed=4)
    results = pipeline.join(
        [r.source for r in test_rows],
        list(table.targets),
        [auto.pair for auto in generated],
        expected=[r.target for r in test_rows],
    )
    scores = score_join(results)
    print(
        f"\njoin quality with auto-generated examples: "
        f"P={scores.precision:.3f} R={scores.recall:.3f} F1={scores.f1:.3f}"
    )


if __name__ == "__main__":
    main()

"""Noise robustness via multi-trial aggregation (paper §5.10).

Automatically generated example pairs often contain garbage.  This demo
corrupts a growing fraction of the example pool and shows how DTT's
decompose-and-vote design keeps the join accurate while CST degrades.

Run:  python examples/noisy_examples.py
"""

from __future__ import annotations

from repro import PretrainedDTT, get_dataset
from repro.baselines import CSTJoiner
from repro.eval.runner import DTTJoinerAdapter, evaluate_on_dataset

NOISE_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8)


def main() -> None:
    tables = get_dataset("SS", seed=1, scale=0.15)
    print(f"SS benchmark sample: {len(tables)} tables")
    methods = [
        DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=1),
        CSTJoiner(),
    ]
    header = "noise ratio " + "".join(f"{r:>8.1f}" for r in NOISE_RATIOS)
    print(header)
    for method in methods:
        f1_values = []
        for ratio in NOISE_RATIOS:
            report = evaluate_on_dataset(
                method, tables, noise_ratio=ratio, noise_seed=1
            )
            f1_values.append(report.f1)
        print(
            f"{method.name:11s} "
            + "".join(f"{value:8.3f}" for value in f1_values)
        )
    print(
        "\nDTT stays near-perfect through 40% noise thanks to the "
        "decompose-and-vote design (Figure 5 of the paper); at this tiny "
        "demo scale the example pools are small, so the extreme-noise "
        "points are choppier than the full benchmark in "
        "benchmarks/bench_figure5.py."
    )


if __name__ == "__main__":
    main()

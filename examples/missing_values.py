"""Missing-value imputation and error detection (paper §1, §4.4, §6).

Two downstream tasks beyond joining:

1. **Imputation** — a spreadsheet column of reformatted dates has gaps;
   DTT fills them from the populated rows.
2. **Error detection** — rows whose given value disagrees with the
   model's confident prediction are flagged as suspect.

Run:  python examples/missing_values.py
"""

from __future__ import annotations

from repro import DTTPipeline, ExamplePair, PretrainedDTT

# A spreadsheet with a partially filled 'EU format' column.
ROWS: list[tuple[str, str | None]] = [
    ("2021-03-05", "05/03/2021"),
    ("1999-12-31", "31/12/1999"),
    ("2010-07-22", "22/07/2010"),
    ("2024-01-15", None),  # missing
    ("2018-11-02", None),  # missing
    ("2005-06-30", "30/06/2005"),
    ("2012-09-08", "08/09/2012"),
    ("2020-02-29", "92/02/2020"),  # transposed digits — an entry error
]


def main() -> None:
    pipeline = DTTPipeline(PretrainedDTT(), seed=0)
    examples = [
        ExamplePair(src, val) for src, val in ROWS if val is not None
    ]

    print("Filling missing values:")
    missing = [src for src, val in ROWS if val is None]
    for prediction in pipeline.transform_column(missing, examples):
        print(f"  {prediction.source} -> {prediction.value}")

    print("\nScanning populated rows for entry errors:")
    populated = [(src, val) for src, val in ROWS if val is not None]
    predictions = pipeline.transform_column([s for s, _ in populated], examples)
    for (source, given), prediction in zip(populated, predictions):
        if prediction.value != given and prediction.consistency >= 0.6:
            print(
                f"  SUSPECT row: {source} recorded as {given!r}, "
                f"model predicts {prediction.value!r} "
                f"({prediction.votes}/{len(prediction.candidates)} trials)"
            )


if __name__ == "__main__":
    main()

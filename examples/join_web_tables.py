"""Join simulated web tables end-to-end and score every method.

Reproduces a slice of the paper's Table 1 on the WT benchmark: DTT
against CST, Auto-FuzzyJoin, and Ditto, with per-dataset precision /
recall / F1.

Run:  python examples/join_web_tables.py
"""

from __future__ import annotations

from repro import PretrainedDTT, get_dataset
from repro.baselines import AFJJoiner, CSTJoiner, DittoJoiner
from repro.eval.runner import DTTJoinerAdapter, evaluate_on_dataset

SCALE = 0.3  # fraction of the full benchmark, for a quick demo
SEED = 0


def main() -> None:
    tables = get_dataset("WT", seed=SEED, scale=SCALE)
    print(
        f"WT benchmark: {len(tables)} table pairs, topics "
        f"{sorted({t.topic for t in tables})[:6]} ..."
    )
    sample = tables[0]
    print(f"\nSample rows from {sample.name!r}:")
    for source, target in list(zip(sample.sources, sample.targets))[:4]:
        print(f"  {source!r} -> {target!r}")

    methods = [
        DTTJoinerAdapter(PretrainedDTT(), name="DTT", seed=SEED),
        CSTJoiner(),
        AFJJoiner(),
        DittoJoiner(),
    ]
    print(f"\n{'method':10s} {'P':>7s} {'R':>7s} {'F1':>7s} {'ANED':>7s}")
    for method in methods:
        report = evaluate_on_dataset(method, tables)
        print(
            f"{method.name:10s} {report.precision:7.3f} {report.recall:7.3f} "
            f"{report.f1:7.3f} {report.aned:7.3f}"
        )


if __name__ == "__main__":
    main()

"""Ditto baseline — Li et al. [27].

Ditto casts entity matching as sequence-pair classification with a
fine-tuned pretrained LM (DistilBERT in the paper's experiments).  With
no GPU or HF checkpoints offline, the backbone is replaced by a numpy
logistic-regression classifier over string-similarity features — the
same *matcher* mechanism (score every candidate pair, accept above a
confidence), trained per table on the provided examples as positives
and sampled cross-pairs as negatives.  It inherits Ditto's
characteristic failure: when source and target share little text
(Syn-RV) or many targets look alike, the matcher produces misses and
false positives.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

import numpy as np

from repro.baselines.base import JoinOutput
from repro.text.similarity import jaro_winkler_similarity
from repro.types import ExamplePair
from repro.utils.rng import derive_rng

_N_FEATURES = 3
_WORD_PATTERN = re.compile(r"[A-Za-z0-9]+")


def _subword_tokens(text: str) -> set[str]:
    """The token vocabulary a subword-level LM effectively matches on.

    Whole alphanumeric words plus word prefixes of length >= 3 — the
    granularity at which a DistilBERT-style matcher perceives overlap.
    It does *not* see arbitrary character n-grams, which is why Ditto
    collapses on random-string benchmarks whose targets only share
    character fragments with their sources (paper §5.5, Syn/Syn-RV).
    """
    tokens: set[str] = set()
    for word in _WORD_PATTERN.findall(text.lower()):
        if len(word) < 2:
            continue  # single characters merge into larger subwords
        tokens.add(word)
        if len(word) > 4:
            tokens.add(word[:4])
    return tokens


def _subword_overlap(a: str, b: str) -> float:
    tokens_a = _subword_tokens(a)
    tokens_b = _subword_tokens(b)
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)


def match_features(source: str, target: str) -> np.ndarray:
    """Similarity feature vector for a candidate (source, target) pair.

    Deliberately limited to the token/subword-level signals a fine-tuned
    LM matcher picks up — word and word-prefix overlap plus coarse
    string similarity.  No character-multiset, character-n-gram, or
    length-equality features: a transformer sees subwords, not sorted
    character bags or character counts.  Features are quantized because
    such a matcher does not resolve single-character differences
    between near-identical candidates (the paper's false-positive mode).
    """
    source_low, target_low = source.lower(), target.lower()
    max_len = max(len(source), len(target), 1)
    prefix = 0
    for ch_a, ch_b in zip(source_low, target_low, strict=False):
        if ch_a != ch_b:
            break
        prefix += 1
    features = np.array(
        [
            _subword_overlap(source, target),
            jaro_winkler_similarity(source_low, target_low),
            prefix / max_len,
        ],
        dtype=np.float64,
    )
    return np.round(features * 4.0) / 4.0


class DittoJoiner:
    """Learned entity matcher with a logistic-regression backbone.

    Args:
        epochs: Gradient-descent epochs per table.
        learning_rate: Step size.
        negatives_per_positive: Sampled non-matching pairs per example.
        accept_probability: Match-confidence threshold.
        seed: Seed for negative sampling and initialization.
    """

    def __init__(
        self,
        epochs: int = 200,
        learning_rate: float = 0.5,
        negatives_per_positive: int = 3,
        accept_probability: float = 0.55,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.negatives_per_positive = negatives_per_positive
        self.accept_probability = accept_probability
        self.seed = seed

    @property
    def name(self) -> str:
        return "Ditto"

    def _train(
        self, examples: Sequence[ExamplePair]
    ) -> tuple[np.ndarray, float]:
        rng = derive_rng(self.seed, "ditto", len(examples))
        features: list[np.ndarray] = []
        labels: list[float] = []
        examples = list(examples)
        for i, pair in enumerate(examples):
            features.append(match_features(pair.source, pair.target))
            labels.append(1.0)
            for _ in range(self.negatives_per_positive):
                j = int(rng.integers(0, len(examples)))
                if j == i and len(examples) > 1:
                    j = (j + 1) % len(examples)
                features.append(
                    match_features(pair.source, examples[j].target)
                )
                labels.append(0.0 if j != i else 1.0)
        x = np.stack(features)
        y = np.array(labels)
        weights = np.zeros(_N_FEATURES)
        bias = 0.0
        for _ in range(self.epochs):
            logits = x @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            gradient = probs - y
            weights -= self.learning_rate * (x.T @ gradient) / len(y)
            bias -= self.learning_rate * float(gradient.mean())
        return weights, bias

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Score every candidate pair; accept the best above threshold."""
        weights, bias = self._train(examples)
        matches: list[str | None] = []
        for source in sources:
            best_value: str | None = None
            best_prob = 0.0
            for target in targets:
                logit = float(match_features(source, target) @ weights + bias)
                prob = 1.0 / (1.0 + np.exp(-logit))
                if prob > best_prob:
                    best_prob = prob
                    best_value = target
            if best_prob < self.accept_probability:
                best_value = None
            matches.append(best_value)
        return JoinOutput(matches=tuple(matches))

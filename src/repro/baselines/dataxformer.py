"""DataXFormer baseline — Abedjan et al. [1].

DataXFormer discovers transformations by querying web tables and
knowledge bases: given example pairs it finds the KB relation(s) that
explain them and applies the relation to the remaining rows, with
voting across sources.  Our re-implementation grounds it in
:mod:`repro.kb` — including the *parametric* relations (ISBN → author,
city → zip) that pure textual or general-knowledge systems cannot
recover, which is exactly where the paper says DataXFormer retains an
edge over DTT (§5.5).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import JoinOutput
from repro.kb import KnowledgeBase, build_default_kb
from repro.kb.store import knows_fact
from repro.types import ExamplePair


class DataXFormerJoiner:
    """KB-relation lookup joiner (the extra KBWT baseline).

    Args:
        kb: Knowledge base to query; defaults to the built-in KB.
        kb_coverage: Fraction of facts the harvested web-table/KB corpus
            actually contains.  DataXFormer's corpus is broad but far
            from complete (the paper reports it roughly on par with DTT
            on KBWT overall); coverage is deterministic per fact.
    """

    def __init__(
        self, kb: KnowledgeBase | None = None, kb_coverage: float = 0.35
    ) -> None:
        self.kb = kb or build_default_kb()
        self.kb_coverage = kb_coverage

    @property
    def name(self) -> str:
        return "DataXFormer"

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Infer the explaining relation, then join by KB lookup."""
        pairs = [(e.source, e.target) for e in examples]
        relation = self.kb.infer_from_examples(pairs)
        target_set = set(targets)
        matches: list[str | None] = []
        predictions: list[str] = []
        for source in sources:
            value = relation.lookup(source) if relation is not None else None
            if value is not None and not knows_fact(
                "dataxformer", relation.name, source, self.kb_coverage
            ):
                value = None
            predictions.append(value or "")
            if value is not None and value in target_set:
                matches.append(value)
            else:
                matches.append(None)
        return JoinOutput(matches=tuple(matches), predictions=tuple(predictions))

"""Auto-FuzzyJoin (AFJ) baseline — Li et al. [25].

AFJ programs a fuzzy join *without labelled examples*: it scores every
source-target pair with a family of similarity functions and picks a
join configuration (function + threshold) that maximizes estimated
precision.  Our re-implementation keeps that structure: per-table it
sweeps a threshold grid over the best-of-family similarity and selects
the largest-recall configuration whose *estimated* precision (a
margin-based uniqueness proxy, since no labels exist) stays above the
target.  The mechanism gives AFJ the paper's profile: excellent when
source and target share text (Syn-RP/Syn-ST), near-zero recall when
they do not (Syn-RV).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import JoinOutput
from repro.text.similarity import (
    containment_similarity,
    cosine_ngram_similarity,
    jaccard_similarity,
    jaro_winkler_similarity,
    token_jaccard,
)
from repro.types import ExamplePair

_THRESHOLD_GRID = (0.30, 0.40, 0.50, 0.60, 0.70, 0.80)


def _family_similarity(a: str, b: str) -> float:
    """Best score over AFJ's similarity-function family (case-folded)."""
    a_low, b_low = a.lower(), b.lower()
    return max(
        jaccard_similarity(a_low, b_low),
        token_jaccard(a, b),
        jaro_winkler_similarity(a_low, b_low),
        cosine_ngram_similarity(a_low, b_low, n=2),
        containment_similarity(a_low, b_low),
    )


class AFJJoiner:
    """Similarity-based fuzzy join with auto-tuned precision threshold.

    Args:
        precision_target: Estimated-precision floor the tuned threshold
            must respect (the paper's AFJ optimizes precision first).
        margin_weight: Weight of the best-vs-second-best margin in the
            precision estimate.
    """

    def __init__(
        self, precision_target: float = 0.85, margin_weight: float = 4.0
    ) -> None:
        self.precision_target = precision_target
        self.margin_weight = margin_weight

    @property
    def name(self) -> str:
        return "AFJ"

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Join by tuned fuzzy similarity.  ``examples`` are unused (AFJ
        is unsupervised); they are accepted for interface uniformity."""
        del examples
        scored: list[tuple[str | None, float, float]] = []
        for source in sources:
            best_value: str | None = None
            best = 0.0
            second = 0.0
            for target in targets:
                similarity = _family_similarity(source, target)
                if similarity > best:
                    second = best
                    best = similarity
                    best_value = target
                elif similarity > second:
                    second = similarity
            scored.append((best_value, best, best - second))

        threshold = self._tune_threshold(scored)
        matches = tuple(
            value if value is not None and score >= threshold else None
            for value, score, _ in scored
        )
        return JoinOutput(matches=matches)

    def _tune_threshold(
        self, scored: list[tuple[str | None, float, float]]
    ) -> float:
        """Pick the smallest threshold whose estimated precision passes.

        The estimate follows AFJ's intuition that an accepted match is
        probably right when its score is high *and* clearly separated
        from the runner-up.
        """
        best_threshold = _THRESHOLD_GRID[-1]
        best_recall = -1.0
        for threshold in _THRESHOLD_GRID:
            accepted = [
                (score, margin)
                for _, score, margin in scored
                if score >= threshold
            ]
            if not accepted:
                continue
            estimated_precision = sum(
                min(1.0, score * min(1.0, self.margin_weight * margin + 0.2))
                for score, margin in accepted
            ) / len(accepted)
            recall = len(accepted) / max(1, len(scored))
            if estimated_precision >= self.precision_target and recall > best_recall:
                best_threshold = threshold
                best_recall = recall
        return best_threshold

"""Common interface for end-to-end table joiners.

Every method (DTT and all baselines) consumes the same inputs — a source
column, a target column, and an example pool — and emits one match (or
abstention) per source row, plus optionally the predicted target strings
for AED/ANED scoring (only generative methods produce those).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.types import ExamplePair


@dataclass(frozen=True)
class JoinOutput:
    """Result of joining one table.

    Attributes:
        matches: One entry per source row: the matched target value, or
            ``None`` when the method left the row unmatched.
        predictions: Predicted target strings (generative methods only).
        stats: Optional execution counters for the run — e.g. the DTT
            pipeline reports its generation-engine scheduling stats
            under ``"engine"`` and its join-engine batch/parallel/cache
            stats under ``"join"``.  Baselines may leave this ``None``.
    """

    matches: tuple[str | None, ...]
    predictions: tuple[str, ...] | None = None
    stats: dict | None = None


@runtime_checkable
class TableJoiner(Protocol):
    """An end-to-end heterogeneous-join method."""

    @property
    def name(self) -> str:
        """Short method name used in report tables."""
        ...

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Join ``sources`` into ``targets`` guided by ``examples``."""
        ...

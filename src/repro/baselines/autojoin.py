"""Auto-join baseline — Zhu et al. [58].

Auto-join searches (by recursive backtracking) for **one** unit-sequence
transformation that covers the examples, handling noise by retrying on
random subsets of the examples.  Unlike CST it commits to a single
transformation, so tables that need several conditional rules defeat it
— the limitation the paper highlights for single-transformation systems.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines._units import (
    UnitTransformation,
    coverage,
    synthesize_transformations,
)
from repro.baselines.base import JoinOutput
from repro.types import ExamplePair
from repro.utils.rng import derive_rng


class AutoJoinJoiner:
    """Auto-join re-implementation on the flat-unit language.

    Args:
        n_subsets: Number of example subsets tried for noise handling.
        subset_fraction: Fraction of examples per subset.
        seed: Seed for subset sampling.
    """

    def __init__(
        self,
        n_subsets: int = 4,
        subset_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        self.n_subsets = n_subsets
        self.subset_fraction = subset_fraction
        self.seed = seed

    @property
    def name(self) -> str:
        return "Auto-join"

    def learn(self, examples: Sequence[ExamplePair]) -> UnitTransformation | None:
        """Find the single transformation with the best example coverage."""
        pairs = [(e.source, e.target) for e in examples]
        if not pairs:
            return None
        rng = derive_rng(self.seed, "autojoin-subsets", len(pairs))
        subset_size = max(1, int(len(pairs) * self.subset_fraction))
        subsets: list[list[tuple[str, str]]] = [pairs]
        for _ in range(self.n_subsets):
            picks = rng.choice(len(pairs), size=subset_size, replace=False)
            subsets.append([pairs[int(p)] for p in picks])

        best: UnitTransformation | None = None
        best_coverage = 0
        for subset in subsets:
            for source, target in subset:
                for candidate in synthesize_transformations(
                    source, target, max_results=3
                ):
                    if candidate.literal_only:
                        continue
                    covered = coverage(candidate, pairs)
                    if covered > best_coverage:
                        best, best_coverage = candidate, covered
        return best

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Apply the learned transformation; exact matches only."""
        transformation = self.learn(examples)
        target_set = set(targets)
        matches: list[str | None] = []
        for source in sources:
            matched: str | None = None
            if transformation is not None:
                output = transformation.apply(source)
                if output is not None and output in target_set:
                    matched = output
            matches.append(matched)
        return JoinOutput(matches=tuple(matches))

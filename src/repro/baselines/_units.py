"""Transformation units and synthesis shared by the CST and Auto-join
baselines.

Both systems (Zhu et al. [58], Nobari et al. [31]) describe a
transformation as a *flat* sequence of basic units — ``substring``,
``split``, ``lowercase``, ``uppercase``, ``literal`` — each applied to
the **original** input, with the unit outputs concatenated.  Crucially,
units do **not** stack (no case-mapping of a substring), which is the
expressiveness gap the paper exploits: mappings like lowercased initials
are outside this language.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

_SPLIT_DELIMITERS = " -_./,:;@()"
# Backtracking search over unit sequences is exponential in sequence
# length, so CST/Auto-join bound it; transformations longer than this
# are outside their search space.
_MAX_UNITS = 10


@dataclass(frozen=True)
class USubstr:
    """``source[start:end]`` with endpoints anchored at either string end."""

    start_offset: int
    start_from_end: bool
    end_offset: int | None  # None = to end of string
    end_from_end: bool

    def apply(self, source: str) -> str | None:
        n = len(source)
        start = n - self.start_offset if self.start_from_end else self.start_offset
        if self.end_offset is None:
            end = n
        elif self.end_from_end:
            end = n - self.end_offset
        else:
            end = self.end_offset
        if start < 0 or end > n or start > end:
            return None
        return source[start:end]


@dataclass(frozen=True)
class USplit:
    """Select one part of ``source.split(delimiter)``."""

    delimiter: str
    index: int
    from_end: bool

    def apply(self, source: str) -> str | None:
        parts = source.split(self.delimiter)
        position = len(parts) - 1 - self.index if self.from_end else self.index
        if not 0 <= position < len(parts):
            return None
        return parts[position]


@dataclass(frozen=True)
class ULower:
    """The whole input, lowercased (no stacking on other units)."""

    def apply(self, source: str) -> str | None:
        return source.lower()


@dataclass(frozen=True)
class UUpper:
    """The whole input, uppercased."""

    def apply(self, source: str) -> str | None:
        return source.upper()


@dataclass(frozen=True)
class ULiteral:
    """A constant string."""

    text: str

    def apply(self, source: str) -> str | None:
        return self.text


Unit = USubstr | USplit | ULower | UUpper | ULiteral


@dataclass(frozen=True)
class UnitTransformation:
    """A flat unit sequence; output is the concatenation of unit outputs."""

    units: tuple[Unit, ...]

    def apply(self, source: str) -> str | None:
        pieces: list[str] = []
        for unit in self.units:
            piece = unit.apply(source)
            if piece is None:
                return None
            pieces.append(piece)
        return "".join(pieces)

    @property
    def literal_only(self) -> bool:
        return all(isinstance(u, ULiteral) for u in self.units)


def synthesize_transformations(
    source: str, target: str, max_results: int = 4, beam_width: int = 5
) -> list[UnitTransformation]:
    """Synthesize unit sequences mapping ``source`` to ``target``.

    A beam-searched cover of the target by unit outputs, mirroring the
    common-substring anchoring of CST: at each target position the
    candidates are the longest copied substring, matching split parts,
    the whole (case-mapped) input, and a one-character literal fallback.
    """
    if not target:
        return [UnitTransformation(units=(ULiteral(""),))]
    # beams[pos] = list of (score, units)
    beams: list[list[tuple[float, tuple[Unit, ...]]]] = [
        [] for _ in range(len(target) + 1)
    ]
    beams[0].append((0.0, ()))
    for pos in range(len(target)):
        if not beams[pos]:
            continue
        candidates = _unit_candidates(source, target, pos)
        for score, units in beams[pos]:
            for unit, consumed, gain in candidates:
                new_pos = pos + consumed
                beams[new_pos].append((score + gain, units + (unit,)))
        for future in range(pos + 1, len(target) + 1):
            if len(beams[future]) > beam_width:
                beams[future].sort(key=lambda item: -item[0])
                del beams[future][beam_width:]
    finished = sorted(beams[len(target)], key=lambda item: -item[0])
    results: list[UnitTransformation] = []
    seen: set[tuple[Unit, ...]] = set()
    for _, units in finished:
        merged = _merge_literals(units)
        if merged in seen or len(merged) > _MAX_UNITS:
            continue
        seen.add(merged)
        results.append(UnitTransformation(units=merged))
        if len(results) >= max_results:
            break
    return results


def _unit_candidates(
    source: str, target: str, pos: int
) -> list[tuple[Unit, int, float]]:
    remaining = target[pos:]
    candidates: list[tuple[Unit, int, float]] = []

    # Longest copied substring (the CST 'textual evidence' anchor).
    # CST anchors need common sequences of length >= 2 — it "performs
    # well only when long matching sequences exist" (paper §3.1);
    # single characters are not usable evidence.
    limit = min(len(source), len(remaining))
    for length in range(limit, 1, -1):
        found = source.find(remaining[:length])
        if found < 0:
            continue
        end = found + length
        candidates.append(
            (USubstr(found, False, end, False), length, 2.0 * length)
        )
        candidates.append(
            (
                USubstr(len(source) - found, True, len(source) - end, True),
                length,
                2.0 * length,
            )
        )
        if end == len(source):
            candidates.append(
                (USubstr(found, False, None, False), length, 2.1 * length)
            )
        break

    # Split parts that match at this position.
    for delimiter in _SPLIT_DELIMITERS:
        if delimiter not in source:
            continue
        parts = source.split(delimiter)
        for index, part in enumerate(parts):
            if part and remaining.startswith(part):
                candidates.append(
                    (USplit(delimiter, index, False), len(part), 2.5 * len(part))
                )
                candidates.append(
                    (
                        USplit(delimiter, len(parts) - 1 - index, True),
                        len(part),
                        2.5 * len(part),
                    )
                )

    # Whole-input case maps.
    lowered = source.lower()
    if remaining.startswith(lowered) and lowered != source:
        candidates.append((ULower(), len(lowered), 1.5 * len(lowered)))
    uppered = source.upper()
    if remaining.startswith(uppered) and uppered != source:
        candidates.append((UUpper(), len(uppered), 1.5 * len(uppered)))

    # Literal fallback.
    candidates.append((ULiteral(remaining[0]), 1, 0.2))

    # Dedupe identical units, keep a bounded fanout.
    unique: dict[Unit, tuple[Unit, int, float]] = {}
    for unit, consumed, gain in candidates:
        if unit not in unique or unique[unit][2] < gain:
            unique[unit] = (unit, consumed, gain)
    ranked = sorted(unique.values(), key=lambda item: -item[2])
    return ranked[:10]


def _merge_literals(units: tuple[Unit, ...]) -> tuple[Unit, ...]:
    merged: list[Unit] = []
    for unit in units:
        if (
            isinstance(unit, ULiteral)
            and merged
            and isinstance(merged[-1], ULiteral)
        ):
            merged[-1] = ULiteral(merged[-1].text + unit.text)
        else:
            merged.append(unit)
    return tuple(merged)


def coverage(
    transformation: UnitTransformation,
    examples: Sequence[tuple[str, str]],
) -> int:
    """Number of example pairs the transformation maps exactly."""
    return sum(
        1 for source, target in examples if transformation.apply(source) == target
    )

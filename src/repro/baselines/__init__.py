"""Baseline systems the paper compares against (§5.5).

* :class:`CSTJoiner` — Common String-based Transformer (Nobari et al.):
  per-example transformation synthesis over the basic units, coverage
  ranking, exact-match joining.
* :class:`AutoJoinJoiner` — Auto-join (Zhu et al.): backtracking search
  for a single unit sequence covering the examples, with noise handling
  via example subsets.
* :class:`AFJJoiner` — Auto-FuzzyJoin (Li et al.): similarity-function
  fuzzy join with an automatically tuned precision threshold; uses no
  examples.
* :class:`DittoJoiner` — Ditto (Li et al.): a learned entity matcher;
  our stand-in for its DistilBERT backbone is a numpy logistic
  classifier over string-similarity features, trained per table on the
  provided examples.
* :class:`DataXFormerJoiner` — DataXFormer (Abedjan et al.): KB-backed
  transformation discovery, used as the extra KBWT baseline.
"""

from repro.baselines.base import JoinOutput, TableJoiner
from repro.baselines.cst import CSTJoiner
from repro.baselines.autojoin import AutoJoinJoiner
from repro.baselines.afj import AFJJoiner
from repro.baselines.ditto import DittoJoiner
from repro.baselines.dataxformer import DataXFormerJoiner

__all__ = [
    "TableJoiner",
    "JoinOutput",
    "CSTJoiner",
    "AutoJoinJoiner",
    "AFJJoiner",
    "DittoJoiner",
    "DataXFormerJoiner",
]

"""Common String-based Transformer (CST) baseline — Nobari et al. [31].

CST synthesizes candidate transformations *per example pair
independently* (which is what gives it noise tolerance), anchors them on
common substrings between source and target, ranks the pooled
candidates by *coverage* over all examples, and keeps a small set of
top transformations.  To join, each source row is pushed through the
ranked transformations and matched when an output **exactly** equals a
target value; rows with no exact hit stay unmatched — the behaviour
behind CST's high-precision / lower-recall profile in Table 1 and its
0 F1 on Syn-RV (no copying relationship to anchor on).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines._units import (
    UnitTransformation,
    coverage,
    synthesize_transformations,
)
from repro.baselines.base import JoinOutput
from repro.types import ExamplePair


class CSTJoiner:
    """CST re-implementation on the flat-unit language.

    Args:
        max_transformations: Size cap of the final ranked set.
        candidates_per_example: Synthesized candidates kept per example.
        min_coverage: Minimum examples a transformation must map exactly
            to be retained (filters noise-fit candidates).
    """

    def __init__(
        self,
        max_transformations: int = 8,
        candidates_per_example: int = 4,
        min_coverage: int = 2,
    ) -> None:
        self.max_transformations = max_transformations
        self.candidates_per_example = candidates_per_example
        self.min_coverage = min_coverage

    @property
    def name(self) -> str:
        return "CST"

    def learn(
        self, examples: Sequence[ExamplePair]
    ) -> list[UnitTransformation]:
        """Synthesize and rank transformations from the example pool."""
        pairs = [(e.source, e.target) for e in examples]
        pooled: dict[UnitTransformation, int] = {}
        for source, target in pairs:
            for transformation in synthesize_transformations(
                source, target, max_results=self.candidates_per_example
            ):
                if transformation.literal_only:
                    continue  # memorized targets never generalize
                if transformation not in pooled:
                    pooled[transformation] = coverage(transformation, pairs)
        ranked = sorted(pooled.items(), key=lambda item: -item[1])
        min_cover = self.min_coverage if len(pairs) >= 3 else 1
        kept = [t for t, c in ranked if c >= min_cover]
        if not kept and ranked:
            kept = [ranked[0][0]]
        return kept[: self.max_transformations]

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        """Join by exact match of transformed rows against the target."""
        transformations = self.learn(examples)
        target_set = set(targets)
        matches: list[str | None] = []
        for source in sources:
            matched: str | None = None
            for transformation in transformations:
                output = transformation.apply(source)
                if output is not None and output in target_set:
                    matched = output
                    break
            matches.append(matched)
        return JoinOutput(matches=tuple(matches))

"""The pretrained-DTT model stand-in.

Implements the :class:`~repro.core.interface.SequenceModel` protocol: it
consumes serialized DTT prompts and emits predicted target strings.  Per
prompt it:

1. parses the context examples and the query (§4.1 markup),
2. induces a program explaining the context (:mod:`.induction`),
3. applies the program to the query,
4. corrupts the output with the auto-regressive error model, whose rate
   depends on mapping difficulty, input length vs. the training range,
   and the training profile's maturity (:mod:`.profiles`).

An induced *reversal* is only acted on with the profile's detection
rate — reversal is absent from the training units, so the paper's model
recognizes it only sometimes (Syn-RV: ANED 0.85 yet join F1 0.63); the
remaining trials emit a scrambled copy whose character multiset still
lets the edit-distance join rescue many rows.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.serializer import PromptSerializer
from repro.exceptions import SerializationError
from repro.kb import KnowledgeBase, build_default_kb
from repro.kb.store import knows_fact
from repro.surrogate.errors import corrupt, mapping_difficulty, scrambled_copy
from repro.surrogate.induction import InductionEngine, InductionResult
from repro.surrogate.profiles import DEFAULT_PROFILE, TrainingProfile
from repro.surrogate.programs import Program, ReverseProgram
from repro.text.naturalness import naturalness
from repro.utils.rng import derive_rng


class PretrainedDTT:
    """Example-driven induction model standing in for fine-tuned ByT5.

    The paper observes that, although fine-tuned only on textual
    transformations, the model "can cover some semantic transformations
    that require information from a knowledge base because of its prior
    knowledge of natural language and web data" (§5.5).  That residual
    world knowledge is modelled as a small, *deterministic* fact
    coverage over the built-in KB: when no textual program explains the
    context, the model answers the ~30% of general-knowledge facts its
    pretraining retained (never the parametric relations).

    Args:
        profile: Training profile (defaults to the released-checkpoint
            configuration: 2,000 groupings, lengths 8-35).
        seed: Seed for the deterministic corruption sampling.
        beam_width: Beam width of the general program synthesizer.
        kb: World-knowledge store backing the pretraining prior.
        fact_coverage: Fraction of general-knowledge facts retained.
    """

    def __init__(
        self,
        profile: TrainingProfile | None = None,
        seed: int = 0,
        beam_width: int = 6,
        kb: KnowledgeBase | None = None,
        fact_coverage: float = 0.30,
    ) -> None:
        self.profile = profile or DEFAULT_PROFILE
        self.seed = seed
        self.beam_width = beam_width
        self.kb = kb or build_default_kb()
        self.fact_coverage = fact_coverage
        families = set(self.profile.enabled_families())
        # Reversal detection is probabilistic per trial, so the engine
        # always checks for it cheaply; the model gates the result below.
        families.add("reverse")
        self._engine = InductionEngine(
            beam_width=beam_width, enabled_families=frozenset(families)
        )
        self._serializer = PromptSerializer()

    @property
    def name(self) -> str:
        return "DTT"

    def fingerprint(self) -> str:
        """Content fingerprint of the deterministic parameter set.

        The stand-in is a pure function of its profile, seed, beam
        width, fact coverage, and knowledge base, so hashing those
        identifies its outputs exactly.  The KB is covered by its
        relation names and sizes — relations are built-in and immutable
        in practice, and the names pin which default was wired in.
        """
        kb_summary = [
            (name, len(self.kb.relation(name)))
            for name in self.kb.relation_names()
        ]
        parts = (
            "repro.pretrained-dtt",
            repr(self.profile),
            self.seed,
            self.beam_width,
            self.fact_coverage,
            kb_summary,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()

    def generate(self, prompts: list[str]) -> list[str]:
        """Predict one output string per serialized prompt.

        Repeated prompts within one batch draw independent corruption
        samples (the analogue of sampling-temperature decoding when the
        example pool is too small for distinct contexts); a prompt's
        first occurrence is always deterministic.
        """
        occurrences: dict[str, int] = {}
        outputs: list[str] = []
        for prompt in prompts:
            occurrence = occurrences.get(prompt, 0)
            occurrences[prompt] = occurrence + 1
            outputs.append(self._generate_one(prompt, occurrence))
        return outputs

    def _generate_one(self, prompt: str, occurrence: int = 0) -> str:
        try:
            context, query = self._serializer.parse(prompt)
        except SerializationError:
            return ""
        rng = derive_rng(self.seed, "dtt", prompt, occurrence)

        if self.profile.is_untrained:
            # No fine-tuning: ByT5 without task training mostly degrades
            # into copy/garbage behaviour (Figure 4 at x = 0: ANED > 0.8).
            return corrupt(query, 0.85, rng, truncate_rate=0.04)

        result = self._engine.induce(context)
        if not result.exact:
            # No textual program explains the whole context; the model
            # may still recognize the mapping from its pretraining.
            recalled = self._recall_fact(context, query)
            if recalled is not None:
                return corrupt(recalled, self.profile.base_error, rng)
        if result.program is None:
            return self._fallback(query, rng)

        program = self._gate_reversal(result, rng)
        raw = program.apply(query)
        if raw is None:
            return self._fallback(query, rng)
        if isinstance(program, ReverseProgram) and program is not result.program:
            # Confused-reversal path (gated off): scrambled copy.
            return raw

        difficulty = mapping_difficulty(query, raw)
        rate = self._char_error_rate(query, raw, difficulty, result)
        return corrupt(raw, rate, rng)

    def _gate_reversal(
        self, result: InductionResult, rng: np.random.Generator
    ) -> Program:
        program = result.program
        assert program is not None
        if not isinstance(program, ReverseProgram):
            return program
        if rng.random() < self.profile.reverse_detection_rate:
            return program
        # Not recognized this trial: behave like a confused decoder.
        return _ConfusedReversal(rng)

    def _char_error_rate(
        self,
        query: str,
        output: str,
        difficulty: float,
        result: InductionResult,
    ) -> float:
        profile = self.profile
        rate = profile.base_error * (0.25 + 1.75 * difficulty)
        rate += profile.length_penalty(len(query), difficulty)
        if profile.overfit_bias > 0.0 and naturalness(query) > 0.6:
            rate += profile.overfit_bias
        return rate

    def _recall_fact(self, context: list, query: str) -> str | None:
        """Answer from pretraining world knowledge, when retained."""
        if self.profile.is_untrained or self.fact_coverage <= 0.0:
            return None
        pairs = [(p.source, p.target) for p in context]
        relation = self.kb.infer_from_examples(pairs)
        if relation is None or relation.parametric:
            return None
        answer = relation.lookup(query)
        if answer is None:
            return None
        if not knows_fact("byt5-dtt", relation.name, query, self.fact_coverage):
            return None
        return answer

    def _fallback(self, query: str, rng: np.random.Generator) -> str:
        """No explanation found: echo-with-errors, or abstain."""
        if rng.random() < 0.05:
            return ""  # only <eos> — footnote 2
        return corrupt(query, 0.30, rng, truncate_rate=0.02)


class _ConfusedReversal(ReverseProgram):
    """A reversal the model failed to recognize: emits a scrambled copy."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(case="none")
        object.__setattr__(self, "_rng", rng)

    def apply(self, source: str) -> str | None:
        return scrambled_copy(source, self._rng)

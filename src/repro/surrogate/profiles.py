"""Training-profile capability schedule.

The paper studies how the fine-tuned model's quality depends on the
*number of training groupings* and the *length range* of training
samples (§5.8, Figure 4; §5.9).  We cannot re-train a 582M-parameter
ByT5 per configuration, so the pretrained-model stand-in exposes the
same two knobs through a documented capability schedule:

* **maturity** grows as ``min(1, n/2000)**0.5`` — the paper reports a
  steep rise that plateaus at ~2,000 groupings;
* each induction *family* unlocks at a maturity threshold (simple
  copying first, general composition later, emergent generalization to
  unseen operation families last);
* the base per-character error decays with maturity to a small floor;
* past the plateau a slight *overfitting bias* appears on natural text
  (the paper: "a slight decrease ... attributed to the bias that the
  model acquires from seeing more transformations of the same type");
* inputs longer than the trained length range incur an extra error that
  grows with how far they exceed it (§5.9).

This schedule is a **simulation of the fine-tuning process** — it is the
one component whose constants are calibrated to the paper's Figure 4
curves rather than derived mechanically.  Everything downstream of it
(induction, corruption, aggregation, joining) is mechanistic.
"""

from __future__ import annotations

from dataclasses import dataclass

_PLATEAU_GROUPINGS = 2000
_FAMILY_THRESHOLDS: dict[str, float] = {
    "case": 0.10,
    "substring": 0.30,
    "general": 0.45,
    "replace": 0.55,  # unseen family; needs a mature model to generalize
    "reverse": 0.55,  # unseen family; gated further by detection_rate
}


@dataclass(frozen=True)
class TrainingProfile:
    """Describes how the stand-in model was 'fine-tuned'.

    Attributes:
        n_groupings: Number of transformation groupings in training
            (paper default 2,000 → 20,000 source-target pairs).
        min_length: Shortest training source (paper default 8).
        max_length: Longest training source (paper default 35).
    """

    n_groupings: int = _PLATEAU_GROUPINGS
    min_length: int = 8
    max_length: int = 35

    def __post_init__(self) -> None:
        if self.n_groupings < 0:
            raise ValueError(f"n_groupings must be >= 0, got {self.n_groupings}")
        if self.min_length < 1 or self.max_length < self.min_length:
            raise ValueError(
                f"invalid length range [{self.min_length}, {self.max_length}]"
            )

    @property
    def maturity(self) -> float:
        """Training progress in [0, 1]; plateaus at 2,000 groupings."""
        if self.n_groupings <= 0:
            return 0.0
        return min(1.0, (self.n_groupings / _PLATEAU_GROUPINGS) ** 0.5)

    @property
    def is_untrained(self) -> bool:
        """True for the no-fine-tuning configuration (Figure 4, x = 0)."""
        return self.maturity < 0.05

    def enabled_families(self) -> frozenset[str]:
        """Program families the model has mastered at this maturity."""
        maturity = self.maturity
        return frozenset(
            family
            for family, threshold in _FAMILY_THRESHOLDS.items()
            if maturity >= threshold
        )

    @property
    def base_error(self) -> float:
        """Per-character error floor at this maturity."""
        maturity = self.maturity
        return 0.55 * (1.0 - maturity) ** 1.5 + 0.012

    @property
    def overfit_bias(self) -> float:
        """Extra error on natural text past the 2,000-grouping plateau."""
        excess = max(0, self.n_groupings - _PLATEAU_GROUPINGS)
        return min(0.05, 0.05 * excess / 8000.0)

    @property
    def reverse_detection_rate(self) -> float:
        """Per-trial probability of recognizing an (unseen) full reversal."""
        if "reverse" not in self.enabled_families():
            return 0.0
        return max(0.0, 0.08 * self.maturity - self.overfit_bias)

    def length_penalty(self, input_length: int, difficulty: float) -> float:
        """Extra per-character error for inputs beyond the trained range.

        Negligible on easy mappings and pronounced on hard ones — the
        §5.9 observation that the decline "begins when the input length
        surpasses this threshold" and is worse on challenging datasets.
        """
        if input_length <= self.max_length:
            return 0.0
        excess = (input_length - self.max_length) / self.max_length
        return excess * (0.02 + 0.25 * difficulty)


#: The released checkpoint configuration used across the paper's tables.
DEFAULT_PROFILE = TrainingProfile()

#: The 'longer training inputs' configuration of §5.8-§5.9.
LONG_PROFILE = TrainingProfile(min_length=5, max_length=60)

"""Induced-program representation.

A *program* is the induction engine's internal explanation of how target
strings derive from source strings.  Programs are total over their
domain: ``apply`` returns ``None`` when a spec does not fit an input
(e.g. a token index out of range), which the engine treats as a failed
generalization.

Segment programs mirror the transformation language of the paper's
training data (substring / split / case / literal, §5.1.2) but anchored
in ways that generalize: token-relative positions, offsets from either
string end, and per-segment case maps.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")

CaseMap = str  # one of: "none", "lower", "upper", "title"


def tokens_of(text: str) -> list[str]:
    """Return the alphanumeric tokens of ``text`` in order."""
    return _TOKEN_PATTERN.findall(text)


def apply_case(text: str, case: CaseMap) -> str:
    """Apply a case map to ``text``."""
    if case == "none":
        return text
    if case == "lower":
        return text.lower()
    if case == "upper":
        return text.upper()
    if case == "title":
        return text.title()
    raise ValueError(f"unknown case map: {case!r}")


class Program(ABC):
    """An induced source -> target mapping."""

    @abstractmethod
    def apply(self, source: str) -> str | None:
        """Apply to ``source``; ``None`` when the program does not fit."""

    @abstractmethod
    def describe(self) -> str:
        """Compact human-readable form, for debugging and reports."""

    #: Relative ordering of how 'surprising' a program family is for a
    #: model trained on the paper's unit repertoire.  Families present in
    #: training data are easy; unseen families (replace, reverse) depend
    #: on emergent generalization.
    family: str = "general"


@dataclass(frozen=True)
class IdentityProgram(Program):
    """Target equals source."""

    case: CaseMap = "none"
    family = "case"

    def apply(self, source: str) -> str | None:
        return apply_case(source, self.case)

    def describe(self) -> str:
        return f"identity[{self.case}]"


@dataclass(frozen=True)
class ReplaceProgram(Program):
    """Replace every occurrence of one character with a string."""

    old: str
    new: str
    family = "replace"

    def apply(self, source: str) -> str | None:
        return source.replace(self.old, self.new)

    def describe(self) -> str:
        return f"replace[{self.old!r}->{self.new!r}]"


@dataclass(frozen=True)
class ReverseProgram(Program):
    """Reverse the character order (optionally case-mapped)."""

    case: CaseMap = "none"
    family = "reverse"

    def apply(self, source: str) -> str | None:
        return apply_case(source[::-1], self.case)

    def describe(self) -> str:
        return f"reverse[{self.case}]"


@dataclass(frozen=True)
class SliceProgram(Program):
    """A single contiguous slice with anchored endpoints.

    ``start_from_end``/``end_from_end`` anchor the respective offset to
    the end of the string, which is what generalizes across inputs of
    different lengths (e.g. "last 4 characters").  ``end_offset=None``
    means "to the end of the string".
    """

    start_offset: int
    start_from_end: bool
    end_offset: int | None
    end_from_end: bool
    case: CaseMap = "none"
    family = "substring"

    def apply(self, source: str) -> str | None:
        length = len(source)
        start = length - self.start_offset if self.start_from_end else self.start_offset
        if self.end_offset is None:
            end = length
        elif self.end_from_end:
            end = length - self.end_offset
        else:
            end = self.end_offset
        # Python-slice truncating semantics, matching the paper's
        # substring unit (out-of-range selections shrink, never fail).
        start = max(0, min(start, length))
        end = max(start, min(end, length))
        return apply_case(source[start:end], self.case)

    def describe(self) -> str:
        start = (
            f"-{self.start_offset}" if self.start_from_end else f"{self.start_offset}"
        )
        if self.end_offset is None:
            end = "$"
        else:
            end = f"-{self.end_offset}" if self.end_from_end else f"{self.end_offset}"
        return f"slice[{start}:{end},{self.case}]"


@dataclass(frozen=True)
class LiteralSegment:
    """Emit a constant string."""

    text: str

    def apply(self, source: str) -> str | None:
        return self.text

    def describe(self) -> str:
        return f"lit({self.text!r})"

    @property
    def generality(self) -> int:
        # Literals generalize worst: they carry zero input dependence.
        return 0


@dataclass(frozen=True)
class TokenPieceSegment:
    """A piece of the k-th alphanumeric token of the source.

    Attributes:
        index: Token index; counted from the end when ``from_end``.
        from_end: Anchor the token index at the end of the token list.
        part: ``"full"``, ``"prefix"``, or ``"suffix"``.
        length: Piece length for prefix/suffix parts.
        case: Case map applied to the piece.
    """

    index: int
    from_end: bool
    part: str
    length: int
    case: CaseMap = "none"

    def apply(self, source: str) -> str | None:
        tokens = tokens_of(source)
        position = len(tokens) - 1 - self.index if self.from_end else self.index
        if not 0 <= position < len(tokens):
            return ""  # like the paper's split unit: missing part -> empty
        token = tokens[position]
        if self.part == "full":
            piece = token
        elif self.part == "prefix":
            piece = token[: self.length]
        elif self.part == "suffix":
            piece = token[-self.length :] if self.length else ""
        else:
            raise ValueError(f"unknown token part: {self.part!r}")
        return apply_case(piece, self.case)

    def describe(self) -> str:
        anchor = f"-{self.index + 1}" if self.from_end else f"{self.index}"
        length = self.length if self.part != "full" else ""
        return f"tok[{anchor}].{self.part}{length}({self.case})"

    @property
    def generality(self) -> int:
        # Token-relative specs generalize best for tabular text.
        return 2


@dataclass(frozen=True)
class CharSliceSegment:
    """A slice anchored at the start or end of the source.

    ``length=None`` means "to the end of the string" — the segment form
    that expresses whole-string copies (possibly case-mapped) and
    open-ended suffixes, both of which generalize across inputs of
    different lengths.
    """

    offset: int
    from_end: bool
    length: int | None
    case: CaseMap = "none"

    def apply(self, source: str) -> str | None:
        size = len(source)
        start = size - self.offset if self.from_end else self.offset
        end = size if self.length is None else start + self.length
        start = max(0, min(start, size))
        end = max(start, min(end, size))
        return apply_case(source[start:end], self.case)

    def describe(self) -> str:
        anchor = f"-{self.offset}" if self.from_end else f"{self.offset}"
        length = "$" if self.length is None else f"+{self.length}"
        return f"chars[{anchor}{length},{self.case}]"

    @property
    def generality(self) -> int:
        return 2 if self.length is None else 1


@dataclass(frozen=True)
class DelimiterPartSegment:
    """One full part of ``source.split(delimiter)`` with a case map.

    Token-piece segments only see alphanumeric runs; this segment
    expresses the paper's ``split`` unit over arbitrary delimiters (a
    dash-separated field may itself contain spaces or symbols).
    """

    delimiter: str
    index: int
    from_end: bool
    case: CaseMap = "none"

    def apply(self, source: str) -> str | None:
        parts = source.split(self.delimiter)
        position = len(parts) - 1 - self.index if self.from_end else self.index
        if not 0 <= position < len(parts):
            return ""  # like the paper's split unit: missing part -> empty
        return apply_case(parts[position], self.case)

    def describe(self) -> str:
        anchor = f"-{self.index + 1}" if self.from_end else f"{self.index}"
        return f"part[{self.delimiter!r}:{anchor},{self.case}]"

    @property
    def generality(self) -> int:
        return 2


@dataclass(frozen=True)
class PartSliceSegment:
    """A slice *inside* one part of ``source.split(delimiter)``.

    Expresses the paper's stacked ``substring ∘ split`` transformations
    (§5.1.2): select a delimiter-separated field, then a character
    window within it.  ``length=None`` means "to the end of the part".
    """

    delimiter: str
    index: int
    from_end: bool
    start: int
    start_from_end: bool
    length: int | None
    case: CaseMap = "none"

    def apply(self, source: str) -> str | None:
        parts = source.split(self.delimiter)
        position = len(parts) - 1 - self.index if self.from_end else self.index
        if not 0 <= position < len(parts):
            return ""
        part = parts[position]
        start = len(part) - self.start if self.start_from_end else self.start
        end = len(part) if self.length is None else start + self.length
        start = max(0, min(start, len(part)))
        end = max(start, min(end, len(part)))
        return apply_case(part[start:end], self.case)

    def describe(self) -> str:
        part_anchor = f"-{self.index + 1}" if self.from_end else f"{self.index}"
        start = f"-{self.start}" if self.start_from_end else f"{self.start}"
        length = "$" if self.length is None else f"+{self.length}"
        return (
            f"part[{self.delimiter!r}:{part_anchor}]"
            f"[{start}{length},{self.case}]"
        )

    @property
    def generality(self) -> int:
        return 2


Segment = (
    LiteralSegment
    | TokenPieceSegment
    | CharSliceSegment
    | DelimiterPartSegment
    | PartSliceSegment
)


@dataclass(frozen=True)
class ConcatProgram(Program):
    """Concatenation of segments — the general synthesized program."""

    segments: tuple[Segment, ...]
    family = "general"

    def apply(self, source: str) -> str | None:
        pieces: list[str] = []
        for segment in self.segments:
            piece = segment.apply(source)
            if piece is None:
                return None
            pieces.append(piece)
        return "".join(pieces)

    def describe(self) -> str:
        return "+".join(segment.describe() for segment in self.segments)

    @property
    def generality(self) -> int:
        """Total input dependence; higher explains more and overfits less."""
        return sum(segment.generality for segment in self.segments)

    @property
    def literal_fraction(self) -> float:
        """Fraction of output characters produced by literal segments."""
        total = 0
        literal = 0
        for segment in self.segments:
            if isinstance(segment, LiteralSegment):
                literal += len(segment.text)
                total += len(segment.text)
            elif isinstance(segment, TokenPieceSegment):
                total += max(segment.length, 1)
            elif isinstance(segment, CharSliceSegment):
                total += 3 if segment.length is None else segment.length
            else:
                total += 3
        if total == 0:
            return 1.0
        return literal / total

"""Example-driven program induction.

This is the reasoning core of the pretrained-model stand-in: given the
two (or more) in-context example pairs of a DTT sub-task, find a
:class:`~repro.surrogate.programs.Program` that explains *all* of them,
then apply it to the query.  Strategies are ordered from cheap/specific
to general:

1. identity / pure case mapping,
2. single-character replacement (the Syn-RP family),
3. a single anchored slice (the Syn-ST family),
4. full reversal (the Syn-RV family),
5. general segment concatenation — a **joint** beam search that builds
   the two example targets simultaneously, so every candidate segment
   spec must be consistent with both examples by construction (a
   single-example explanation followed by verification degenerates
   into an anchor-variant lottery; the joint search does not).

Per-position segment candidates and per-pair explanations are memoized:
in a benchmark table the same example pair appears in many sampled
contexts.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

from repro.surrogate.programs import (
    CharSliceSegment,
    ConcatProgram,
    DelimiterPartSegment,
    IdentityProgram,
    LiteralSegment,
    PartSliceSegment,
    Program,
    ReplaceProgram,
    ReverseProgram,
    Segment,
    SliceProgram,
    TokenPieceSegment,
    apply_case,
    tokens_of,
)
from repro.types import ExamplePair

_CASES = ("none", "lower", "upper", "title")
_DELIMITERS = " -_./,:;@"
_ALL_FAMILIES = frozenset({"case", "replace", "substring", "reverse", "general"})


@dataclass(frozen=True)
class InductionResult:
    """Outcome of inducing a program from a context.

    Attributes:
        program: The best program found (``None`` when nothing fit).
        support: How many context pairs the program explains exactly.
        exact: True when the program explains every context pair.
    """

    program: Program | None
    support: int
    exact: bool


class InductionEngine:
    """Finds programs that explain a set of example pairs.

    Args:
        beam_width: Beam width of the joint synthesizer.
        max_explanations: Candidate programs retained per example pair
            in the single-example fallback.
        enabled_families: Program families the engine may use; families
            outside this set are skipped (the training-profile gate).
    """

    def __init__(
        self,
        beam_width: int = 10,
        max_explanations: int = 12,
        enabled_families: frozenset[str] | None = None,
    ) -> None:
        self.beam_width = beam_width
        self.max_explanations = max_explanations
        self.families = (
            _ALL_FAMILIES if enabled_families is None else frozenset(enabled_families)
        )

    def induce(self, context: Sequence[ExamplePair]) -> InductionResult:
        """Induce the best program explaining the context pairs."""
        pairs = [(p.source, p.target) for p in context if p.source or p.target]
        if not pairs:
            return InductionResult(program=None, support=0, exact=False)

        program = self._induce_exact(pairs)
        if program is not None:
            return InductionResult(
                program=program, support=len(pairs), exact=True
            )

        # No program explains every pair (noise, or a mapping outside the
        # engine's reach).  Fall back to the best partially supported
        # explanation — the analogue of the model following the example
        # it "understood".  Ties on support are broken by *generality*:
        # an explanation that copies from the input beats one that
        # hard-codes the (possibly noisy) target.
        best: Program | None = None
        best_key = (0, -1.0)
        for source, target in pairs:
            for candidate in self._explanations(source, target):
                support = sum(
                    1 for s, t in pairs if candidate.apply(s) == t
                )
                generality = (
                    candidate.generality - 10.0 * candidate.literal_fraction
                    if isinstance(candidate, ConcatProgram)
                    else 100.0
                )
                key = (support, generality)
                if key > best_key:
                    best, best_key = candidate, key
        return InductionResult(program=best, support=best_key[0], exact=False)

    def _induce_exact(self, pairs: list[tuple[str, str]]) -> Program | None:
        for inducer in (
            self._induce_case,
            self._induce_replace,
            self._induce_slice,
            self._induce_reverse,
            self._induce_general,
        ):
            program = inducer(pairs)
            if program is not None:
                return program
        return None

    # -- specialized strategies ------------------------------------------

    def _induce_case(self, pairs: list[tuple[str, str]]) -> Program | None:
        if "case" not in self.families:
            return None
        for case in _CASES:
            if all(apply_case(s, case) == t for s, t in pairs):
                return IdentityProgram(case=case)
        return None

    def _induce_replace(self, pairs: list[tuple[str, str]]) -> Program | None:
        if "replace" not in self.families:
            return None
        source, target = pairs[0]
        for old in dict.fromkeys(source):  # preserves order, dedupes
            new = _solve_replacement(source, target, old)
            if new is None or new == old:
                continue
            program = ReplaceProgram(old=old, new=new)
            if all(program.apply(s) == t for s, t in pairs):
                return program
        return None

    def _induce_slice(self, pairs: list[tuple[str, str]]) -> Program | None:
        if "substring" not in self.families:
            return None
        source, target = pairs[0]
        if not target:
            return None
        for case in _CASES:
            cased = apply_case(source, case)
            start = cased.find(target)
            while start >= 0:
                end = start + len(target)
                for program in _slice_variants(len(source), start, end, case):
                    if all(program.apply(s) == t for s, t in pairs):
                        return program
                start = cased.find(target, start + 1)
        return None

    def _induce_reverse(self, pairs: list[tuple[str, str]]) -> Program | None:
        if "reverse" not in self.families:
            return None
        for case in _CASES:
            program = ReverseProgram(case=case)
            if all(program.apply(s) == t for s, t in pairs):
                return program
        return None

    def _induce_general(self, pairs: list[tuple[str, str]]) -> Program | None:
        if "general" not in self.families:
            return None
        if len(pairs) == 1:
            explanations = explain_pair(
                pairs[0][0], pairs[0][1], self.beam_width, 1
            )
            return explanations[0] if explanations else None
        # Joint synthesis over the first two pairs, verified on the rest.
        candidates = joint_synthesize(
            pairs[0][0], pairs[0][1], pairs[1][0], pairs[1][1], self.beam_width
        )
        for candidate in candidates:
            if all(candidate.apply(s) == t for s, t in pairs[2:]):
                return candidate
        return None

    def _explanations(self, source: str, target: str) -> tuple[ConcatProgram, ...]:
        if "general" not in self.families:
            return ()
        return explain_pair(
            source, target, self.beam_width, self.max_explanations
        )


def _solve_replacement(source: str, target: str, old: str) -> str | None:
    """Solve ``target == source.replace(old, new)`` for ``new``, if any."""
    parts = source.split(old)
    if len(parts) == 1:
        return None
    pattern = re.escape(parts[0]) + "(?P<r>.{0,4}?)"
    for part in parts[1:-1]:
        pattern += re.escape(part) + "(?P=r)"
    pattern += re.escape(parts[-1])
    match = re.fullmatch(pattern, target, flags=re.DOTALL)
    if match is None:
        return None
    return match.group("r")


def _slice_variants(
    source_length: int, start: int, end: int, case: str
) -> list[SliceProgram]:
    """All anchor combinations describing ``source[start:end]``."""
    starts = [(start, False), (source_length - start, True)]
    ends: list[tuple[int | None, bool]] = [
        (end, False),
        (source_length - end, True),
    ]
    if end == source_length:
        ends.insert(0, (None, False))
    variants = []
    for start_offset, start_from_end in starts:
        for end_offset, end_from_end in ends:
            variants.append(
                SliceProgram(
                    start_offset=start_offset,
                    start_from_end=start_from_end,
                    end_offset=end_offset,
                    end_from_end=end_from_end,
                    case=case,
                )
            )
    return variants


# -- segment candidate generation (shared by both synthesizers) ----------


@dataclass(frozen=True)
class _Candidate:
    segment: Segment
    consumed: int
    score: float

    @property
    def per_char_weight(self) -> float:
        return self.score / max(self.consumed, 1)


@lru_cache(maxsize=200_000)
def _prepared(source: str) -> tuple:
    tokens = tuple(tokens_of(source))
    cased_tokens = {
        case: tuple(apply_case(tok, case) for tok in tokens) for case in _CASES
    }
    cased_source = {case: apply_case(source, case) for case in _CASES}
    return tokens, cased_tokens, cased_source


@lru_cache(maxsize=500_000)
def segment_candidates(source: str, target: str, pos: int) -> tuple[_Candidate, ...]:
    """Candidate next segments explaining ``target[pos:]`` from ``source``."""
    tokens, cased_tokens, cased_source = _prepared(source)
    remaining = target[pos:]
    candidates: list[_Candidate] = []

    # Token pieces: prefixes, full tokens, suffixes, under each case map.
    for case in _CASES:
        for index, cased in enumerate(cased_tokens[case]):
            if not cased:
                continue
            prefix_len = _common_prefix_length(cased, remaining)
            if prefix_len >= 1:
                part = "full" if prefix_len == len(cased) else "prefix"
                # Full-token copies are the most generalizable spec on
                # tabular text: they outrank even open-ended slices.
                weight = 3.6 if part == "full" else 2.5
                for from_end in (False, True):
                    token_index = len(tokens) - 1 - index if from_end else index
                    segment = TokenPieceSegment(
                        index=token_index,
                        from_end=from_end,
                        part=part,
                        length=prefix_len,
                        case=case,
                    )
                    candidates.append(
                        _Candidate(segment, prefix_len, weight * prefix_len)
                    )
            suffix_len = _longest_suffix_match(cased, remaining)
            if suffix_len >= 2 and suffix_len < len(cased):
                for from_end in (False, True):
                    token_index = len(tokens) - 1 - index if from_end else index
                    segment = TokenPieceSegment(
                        index=token_index,
                        from_end=from_end,
                        part="suffix",
                        length=suffix_len,
                        case=case,
                    )
                    candidates.append(
                        _Candidate(segment, suffix_len, 2.2 * suffix_len)
                    )

    # Whole-delimiter parts (the paper's `split` unit) and slices inside
    # a part (stacked `substring ∘ split`).
    for delimiter in _DELIMITERS:
        if delimiter not in source:
            continue
        parts = source.split(delimiter)
        for index, part in enumerate(parts):
            if not part:
                continue
            for case in _CASES:
                cased_part = apply_case(part, case)
                if remaining.startswith(cased_part):
                    for from_end in (False, True):
                        part_index = len(parts) - 1 - index if from_end else index
                        segment = DelimiterPartSegment(
                            delimiter=delimiter,
                            index=part_index,
                            from_end=from_end,
                            case=case,
                        )
                        candidates.append(
                            _Candidate(segment, len(cased_part), 2.8 * len(cased_part))
                        )
                    continue  # the whole part subsumes inner slices here
                match_len, offset = _longest_source_match(cased_part, remaining)
                if match_len >= 2:
                    reaches_end = offset + match_len == len(part)
                    for from_end in (False, True):
                        part_index = len(parts) - 1 - index if from_end else index
                        candidates.append(
                            _Candidate(
                                PartSliceSegment(
                                    delimiter=delimiter,
                                    index=part_index,
                                    from_end=from_end,
                                    start=offset,
                                    start_from_end=False,
                                    length=match_len,
                                    case=case,
                                ),
                                match_len,
                                2.0 * match_len,
                            )
                        )
                        if reaches_end:
                            candidates.append(
                                _Candidate(
                                    PartSliceSegment(
                                        delimiter=delimiter,
                                        index=part_index,
                                        from_end=from_end,
                                        start=offset,
                                        start_from_end=False,
                                        length=None,
                                        case=case,
                                    ),
                                    match_len,
                                    2.3 * match_len,
                                )
                            )

    # Anchored character slices: longest match of the remaining target
    # inside the (case-mapped) source.
    for case in _CASES:
        haystack = cased_source[case]
        match_len, offset = _longest_source_match(haystack, remaining)
        if match_len >= 1:
            reaches_end = offset + match_len == len(source)
            # Single-character absolute slices rarely generalize; score
            # them below literals so they only win with corroboration.
            fixed_weight = 1.8 if match_len >= 2 else 0.6
            for from_end in (False, True):
                anchor = len(source) - offset if from_end else offset
                candidates.append(
                    _Candidate(
                        CharSliceSegment(
                            offset=anchor,
                            from_end=from_end,
                            length=match_len,
                            case=case,
                        ),
                        match_len,
                        fixed_weight * match_len,
                    )
                )
                if reaches_end:
                    # Open-ended suffix: generalizes across lengths, so
                    # it outranks a token-by-token reconstruction.
                    candidates.append(
                        _Candidate(
                            CharSliceSegment(
                                offset=anchor,
                                from_end=from_end,
                                length=None,
                                case=case,
                            ),
                            match_len,
                            3.4 * match_len,
                        )
                    )

    # Literal fallback: one character.  Separator characters are usually
    # emitted by `literal` units, so they score above 1-char slices.
    literal_char = remaining[0]
    literal_weight = 1.2 if not literal_char.isalnum() else 0.3
    literal = _Candidate(LiteralSegment(literal_char), 1, literal_weight)

    # Dedupe by spec identity and keep the strongest few to bound fanout.
    unique: dict[object, _Candidate] = {}
    for candidate in candidates:
        key = candidate.segment
        if key not in unique or unique[key].score < candidate.score:
            unique[key] = candidate
    ranked = sorted(unique.values(), key=lambda c: -c.score)[:16]
    if literal.segment not in {c.segment for c in ranked}:
        ranked.append(literal)
    return tuple(ranked)


# -- joint two-example synthesis ------------------------------------------


@lru_cache(maxsize=65536)
def joint_synthesize(
    source_a: str,
    target_a: str,
    source_b: str,
    target_b: str,
    beam_width: int = 10,
    max_results: int = 5,
) -> tuple[ConcatProgram, ...]:
    """Synthesize programs explaining BOTH example pairs simultaneously.

    A beam search over joint positions ``(pos_a, pos_b)``: a segment
    spec may extend a state only if applying it to *both* sources yields
    the next characters of the respective targets.  Any program reaching
    ``(len(target_a), len(target_b))`` is therefore consistent with both
    examples by construction.
    """
    if not target_a and not target_b:
        return (ConcatProgram(segments=(LiteralSegment(""),)),)

    apply_memo: dict[tuple[Segment, str], str | None] = {}

    def memo_apply(segment: Segment, source: str) -> str | None:
        key = (segment, source)
        if key not in apply_memo:
            apply_memo[key] = segment.apply(source)
        return apply_memo[key]

    # states[(pos_a, pos_b)] = list of (score, segments)
    states: dict[tuple[int, int], list[tuple[float, tuple[Segment, ...]]]] = {
        (0, 0): [(0.0, ())]
    }
    finished: list[tuple[float, tuple[Segment, ...]]] = []
    # Process states in order of total progress so predecessors are done.
    for total in range(len(target_a) + len(target_b)):
        keys = [k for k in states if k[0] + k[1] == total]
        for key in sorted(keys):
            pos_a, pos_b = key
            bucket = states.pop(key)
            bucket.sort(key=lambda item: -item[0])
            del bucket[beam_width:]
            if pos_a >= len(target_a) and pos_b >= len(target_b):
                finished.extend(bucket)
                continue
            specs: dict[Segment, float] = {}
            if pos_a < len(target_a):
                for cand in segment_candidates(source_a, target_a, pos_a):
                    weight = cand.per_char_weight
                    if cand.segment not in specs or specs[cand.segment] < weight:
                        specs[cand.segment] = weight
            if pos_b < len(target_b):
                for cand in segment_candidates(source_b, target_b, pos_b):
                    weight = cand.per_char_weight
                    if cand.segment not in specs or specs[cand.segment] < weight:
                        specs[cand.segment] = weight
            expansions: list[tuple[Segment, int, int, float]] = []
            for segment, weight in specs.items():
                out_a = memo_apply(segment, source_a)
                out_b = memo_apply(segment, source_b)
                if not out_a or not out_b:
                    continue
                if not target_a.startswith(out_a, pos_a):
                    continue
                if not target_b.startswith(out_b, pos_b):
                    continue
                gain = weight * (len(out_a) + len(out_b)) / 2.0
                expansions.append((segment, len(out_a), len(out_b), gain))
            if not expansions:
                continue
            expansions.sort(key=lambda item: -item[3])
            del expansions[12:]
            for segment, consumed_a, consumed_b, gain in expansions:
                new_key = (pos_a + consumed_a, pos_b + consumed_b)
                new_bucket = states.setdefault(new_key, [])
                for score, segments in bucket:
                    new_bucket.append((score + gain, segments + (segment,)))
    # Collect any states that reached the end exactly.
    for key, bucket in states.items():
        if key == (len(target_a), len(target_b)):
            finished.extend(bucket)
    finished.sort(key=lambda item: -item[0])
    programs: list[ConcatProgram] = []
    seen: set[tuple[Segment, ...]] = set()
    for _, segments in finished:
        merged = _merge_literals(segments)
        if merged in seen:
            continue
        seen.add(merged)
        programs.append(ConcatProgram(segments=merged))
        if len(programs) >= max_results:
            break
    return tuple(programs)


# -- single-example synthesis (fallback for noisy contexts) ---------------


@lru_cache(maxsize=65536)
def explain_pair(
    source: str, target: str, beam_width: int = 10, max_results: int = 12
) -> tuple[ConcatProgram, ...]:
    """Synthesize programs expressing ``target`` from ``source`` alone.

    Used when no program explains the full context (noisy examples): the
    engine explains each example individually and keeps the explanation
    with the best support.  Results are memoized — within one benchmark
    table the same example pair appears in many sampled contexts.
    """
    if not target:
        return (ConcatProgram(segments=(LiteralSegment(""),)),)
    # beams[pos] = list of (score, segments) partial explanations.
    beams: list[list[tuple[float, tuple[Segment, ...]]]] = [
        [] for _ in range(len(target) + 1)
    ]
    beams[0].append((0.0, ()))
    for pos in range(len(target)):
        if not beams[pos]:
            continue
        beams[pos].sort(key=lambda item: -item[0])
        del beams[pos][beam_width:]
        candidates = segment_candidates(source, target, pos)
        for score, segments in beams[pos]:
            for candidate in candidates:
                new_pos = pos + candidate.consumed
                beams[new_pos].append(
                    (score + candidate.score, segments + (candidate.segment,))
                )
    finished = sorted(beams[len(target)], key=lambda item: -item[0])
    programs: list[ConcatProgram] = []
    seen: set[tuple[Segment, ...]] = set()
    for _, segments in finished[: max_results * 2]:
        merged = _merge_literals(segments)
        if merged in seen:
            continue
        seen.add(merged)
        programs.append(ConcatProgram(segments=merged))
        if len(programs) >= max_results:
            break
    return tuple(programs)


def _common_prefix_length(a: str, b: str) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


def _longest_suffix_match(token: str, remaining: str) -> int:
    limit = min(len(token), len(remaining))
    for length in range(limit, 1, -1):
        if remaining[:length] == token[-length:]:
            return length
    return 0


def _longest_source_match(source: str, remaining: str) -> tuple[int, int]:
    limit = min(len(source), len(remaining))
    for length in range(limit, 0, -1):
        offset = source.find(remaining[:length])
        if offset >= 0:
            return length, offset
    return 0, -1


def _merge_literals(segments: tuple[Segment, ...]) -> tuple[Segment, ...]:
    merged: list[Segment] = []
    for segment in segments:
        if (
            isinstance(segment, LiteralSegment)
            and merged
            and isinstance(merged[-1], LiteralSegment)
        ):
            merged[-1] = LiteralSegment(merged[-1].text + segment.text)
        else:
            merged.append(segment)
    return tuple(merged)

"""A general-purpose-LLM stand-in for GPT-3 (paper §5.6).

The surrogate reproduces the mechanisms behind GPT-3's behaviour in the
paper, without looking up any paper numbers:

* **World knowledge** — when the context examples instantiate a known
  (non-parametric) KB relation, the model answers from the KB, which is
  why GPT-3 beats the fine-tuned model on KBWT-style data.  *Parametric*
  relations (ISBN → author, city → zip) are answered with a
  plausible-format hallucination — GPT-3 cannot recall arbitrary keys.
* **Few-shot scaling** — with one example the induced mapping is
  under-determined and the model over-fits the example's literal content
  (GPT3-1e is weak); each additional example both verifies the program
  and 'grounds' the character operations (error shrinks with k).
* **Tokenizer blindness** — per-character errors scale with how
  *unnatural* the text is: GPT-3's subword tokenizer and natural-text
  prior handle names and addresses well but random character strings
  poorly (weak on Syn-*).
* **No character reversal** — reversing a string is a notorious
  weakness of subword LLMs; the surrogate copies instead of reversing.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.serializer import PromptSerializer
from repro.exceptions import SerializationError
from repro.kb import KnowledgeBase, build_default_kb
from repro.kb.store import Relation, knows_fact
from repro.surrogate.errors import corrupt, mapping_difficulty
from repro.surrogate.induction import InductionEngine, explain_pair
from repro.surrogate.programs import ReverseProgram
from repro.text.naturalness import naturalness
from repro.types import ExamplePair
from repro.utils.rng import derive_rng

_LLM_FAMILIES = frozenset({"case", "substring", "replace", "general"})


class GPT3Surrogate:
    """Simulated GPT-3 implementing the ``SequenceModel`` protocol.

    Args:
        kb: World-knowledge store; defaults to the built-in KB.
        seed: Seed for deterministic corruption.
        base_error: Per-character error floor on perfectly natural text.
        max_context_tokens: Documented context budget (GPT-3 Curie:
            2048 subword tokens); prompts are not truncated here but the
            attribute drives the example-count configuration in
            experiments.
    """

    def __init__(
        self,
        kb: KnowledgeBase | None = None,
        seed: int = 0,
        base_error: float = 0.015,
        fact_coverage: float = 0.45,
        max_context_tokens: int = 2048,
    ) -> None:
        self.kb = kb or build_default_kb()
        self.seed = seed
        self.base_error = base_error
        self.fact_coverage = fact_coverage
        self.max_context_tokens = max_context_tokens
        self._engine = InductionEngine(enabled_families=_LLM_FAMILIES)
        self._serializer = PromptSerializer()

    @property
    def name(self) -> str:
        return "GPT3"

    def fingerprint(self) -> str:
        """Content fingerprint of the deterministic parameter set.

        Same contract as ``PretrainedDTT.fingerprint``: the surrogate
        is a pure function of these parameters plus its KB, so hashing
        them identifies its outputs exactly.
        """
        kb_summary = [
            (name, len(self.kb.relation(name)))
            for name in self.kb.relation_names()
        ]
        parts = (
            "repro.gpt3-surrogate",
            self.seed,
            self.base_error,
            self.fact_coverage,
            self.max_context_tokens,
            kb_summary,
        )
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()

    def generate(self, prompts: list[str]) -> list[str]:
        """Predict one output string per serialized prompt.

        Repeated prompts draw independent samples (temperature-style),
        mirroring API sampling; first occurrences are deterministic.
        """
        occurrences: dict[str, int] = {}
        outputs: list[str] = []
        for prompt in prompts:
            occurrence = occurrences.get(prompt, 0)
            occurrences[prompt] = occurrence + 1
            outputs.append(self._generate_one(prompt, occurrence))
        return outputs

    def _generate_one(self, prompt: str, occurrence: int = 0) -> str:
        try:
            context, query = self._serializer.parse(prompt)
        except SerializationError:
            return ""
        rng = derive_rng(self.seed, "gpt3", prompt, occurrence)

        kb_answer = self._answer_from_knowledge(context, query, rng)
        if kb_answer is not None:
            return kb_answer
        return self._answer_textually(context, query, rng)

    # -- world knowledge --------------------------------------------------

    def _answer_from_knowledge(
        self,
        context: list[ExamplePair],
        query: str,
        rng: np.random.Generator,
    ) -> str | None:
        pairs = [(p.source, p.target) for p in context]
        relation = self.kb.infer_from_examples(pairs)
        if relation is None:
            return None
        if relation.parametric:
            return self._hallucinate(relation, rng)
        answer = relation.lookup(query)
        if answer is None:
            return None
        # Parametric world knowledge: a fact is either retained or not,
        # deterministically (re-prompting does not create knowledge).
        if not knows_fact("gpt3-curie", relation.name, query, self.fact_coverage):
            return self._hallucinate(relation, rng)
        return corrupt(answer, self.base_error, rng)

    def _hallucinate(self, relation: Relation, rng: np.random.Generator) -> str:
        """A fluent but fabricated answer in the relation's format."""
        values = sorted(set(relation.pairs.values()))
        if not values:
            return ""
        return values[int(rng.integers(0, len(values)))]

    # -- textual pattern following ----------------------------------------

    def _answer_textually(
        self,
        context: list[ExamplePair],
        query: str,
        rng: np.random.Generator,
    ) -> str:
        # Reversal regime: subword LLMs cannot reliably reverse character
        # order, whether the mapping is recognized as ReverseProgram or
        # reconstructed piecewise by the synthesizer.
        if len(context) >= 1 and all(
            p.target == p.source[::-1] and len(p.source) >= 3 for p in context
        ):
            # Roughly half the attempts come back empty — the model
            # "gives up" on the instruction — and the rest are heavily
            # corrupted echoes.  Abstentions matter for the multi-model
            # ensemble: they leave the vote to the other model (§5.7).
            if rng.random() < 0.5:
                return ""
            return corrupt(query, 0.50, rng, truncate_rate=0.06)

        program = None
        exact = True
        if len(context) == 1:
            # One example under-determines the mapping.  Many programs
            # are consistent with it; the model commits to an arbitrary
            # one, frequently over-fitting the example's literal content
            # (the paper: GPT-3 "struggles on the task with just one
            # example", §5.6).
            pair = context[0]
            explanations = explain_pair(pair.source, pair.target)
            if explanations:
                program = explanations[int(rng.integers(0, len(explanations)))]
        else:
            result = self._engine.induce(context)
            program = result.program
            exact = result.exact
        if program is None:
            # Nothing understood: abstain or echo with uncertainty.
            if rng.random() < 0.3:
                return ""
            return corrupt(query, 0.35, rng, truncate_rate=0.03)
        if isinstance(program, ReverseProgram):
            # Subword LLMs cannot reliably reverse character order; the
            # attempt degrades into abstention or a corrupted echo.
            if rng.random() < 0.5:
                return ""
            return corrupt(query, 0.50, rng, truncate_rate=0.06)
        raw = program.apply(query)
        if raw is None:
            return corrupt(query, 0.35, rng, truncate_rate=0.03)

        difficulty = mapping_difficulty(query, raw)
        rate = self._char_error_rate(context, query, raw, difficulty, len(context))
        if not exact:
            rate += 0.10
        return corrupt(raw, rate, rng)

    def _char_error_rate(
        self,
        context: list[ExamplePair],
        query: str,
        output: str,
        difficulty: float,
        n_examples: int,
    ) -> float:
        texts = [query, output]
        for pair in context:
            texts.extend((pair.source, pair.target))
        nat = sum(naturalness(t) for t in texts) / len(texts)
        # More examples ground the character-level operation; the
        # unnatural-text penalty shrinks roughly like 1/k.
        grounding = 2.5 / (n_examples + 1.5)
        # The tokenizer penalty is sharply nonlinear: natural text is
        # nearly free, random character soup is near-hopeless.
        tokenizer_penalty = 2.5 * (1.0 - nat) ** 2
        return self.base_error + tokenizer_penalty * difficulty * grounding

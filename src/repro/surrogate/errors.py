"""Auto-regressive corruption model.

The paper's model generates the output character by character, so "as the
need for a greater number of edit operations increases ... the prediction
task becomes more challenging" (§5.2), and "a single incorrect prediction
can influence the prediction of subsequent characters" (§5.9).  The
surrogates reproduce both effects here:

* the per-character error probability grows with the *difficulty* of the
  induced mapping (how far the output is from the input), and
* once an error occurs, the error probability for subsequent characters
  is multiplied by a cascade factor — the derailment of an
  auto-regressive decoder.

All sampling is driven by a caller-provided RNG, so outputs are
deterministic per (seed, prompt).
"""

from __future__ import annotations

import numpy as np

_SUBSTITUTE_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .-_/"
)
_CASCADE_FACTOR = 2.5
_MAX_CHAR_ERROR = 0.92


def mapping_difficulty(source: str, output: str) -> float:
    """How hard a mapping is for a character-level auto-regressive model.

    Defined as the edit distance between input and output normalized by
    the longer of the two — 0 when the output copies the input, 1 when
    every character must change (the paper's §5.2 difficulty heuristic).
    """
    from repro.text.edit_distance import edit_distance

    longest = max(len(source), len(output))
    if longest == 0:
        return 0.0
    return min(1.0, edit_distance(source, output) / longest)


def corrupt(
    text: str,
    char_error_rate: float,
    rng: np.random.Generator,
    truncate_rate: float = 0.0,
) -> str:
    """Corrupt ``text`` with compounding character errors.

    Args:
        text: The clean model output.
        char_error_rate: Base per-character error probability.
        rng: Deterministic random source.
        truncate_rate: Probability of emitting ``<eos>`` prematurely at
            each position once past the first character.

    Returns:
        The corrupted string (possibly equal to ``text``).
    """
    if char_error_rate <= 0.0 and truncate_rate <= 0.0:
        return text
    rate = min(max(char_error_rate, 0.0), _MAX_CHAR_ERROR)
    out: list[str] = []
    derailed = False
    for i, ch in enumerate(text):
        if truncate_rate > 0.0 and i > 0 and rng.random() < truncate_rate:
            break
        effective = min(
            rate * (_CASCADE_FACTOR if derailed else 1.0), _MAX_CHAR_ERROR
        )
        if rng.random() >= effective:
            out.append(ch)
            continue
        derailed = True
        kind = rng.random()
        if kind < 0.5:  # substitution
            out.append(
                _SUBSTITUTE_ALPHABET[int(rng.integers(0, len(_SUBSTITUTE_ALPHABET)))]
            )
        elif kind < 0.8:  # deletion
            continue
        else:  # insertion (keep the char, add a random one)
            out.append(
                _SUBSTITUTE_ALPHABET[int(rng.integers(0, len(_SUBSTITUTE_ALPHABET)))]
            )
            out.append(ch)
    return "".join(out)


def scrambled_copy(text: str, rng: np.random.Generator) -> str:
    """A 'confused decoder' output: chunks of the input in shuffled order.

    Used when a model recognizes that the output is built from the input
    characters but cannot work out the arrangement (e.g. an unseen
    reversal).  The result preserves most of the character multiset —
    which is why edit-distance joins can sometimes still rescue it
    (the paper's Syn-RV observation: ANED > 0.8 yet F1 ≈ 0.63).
    """
    if len(text) <= 2:
        return text
    chunks: list[str] = []
    i = 0
    while i < len(text):
        size = int(rng.integers(2, 5))
        chunk = text[i : i + size]
        if rng.random() < 0.5:
            chunk = chunk[::-1]
        chunks.append(chunk)
        i += size
    order = rng.permutation(len(chunks))
    return "".join(chunks[int(k)] for k in order)

"""Model surrogates standing in for GPU-scale checkpoints.

The paper's experiments require (a) a fine-tuned ByT5-base checkpoint
and (b) GPT-3 API access — neither is available offline.  This package
provides behaviour-faithful stand-ins that implement the same
:class:`~repro.core.interface.SequenceModel` protocol as the from-scratch
numpy transformer in :mod:`repro.model`:

* :class:`PretrainedDTT` — an example-driven *program induction engine*
  plus an auto-regressive corruption model.  It genuinely induces the
  character-level mapping from the two in-context examples (it is not a
  lookup table of paper numbers) and degrades with mapping difficulty,
  input length, and training-profile maturity, mirroring §5.8-§5.9.
* :class:`GPT3Surrogate` — a general-purpose-LLM stand-in: strong world
  knowledge (backed by :mod:`repro.kb`), few-shot scaling with the
  number of examples, weak on non-natural character strings (§5.6).
"""

from repro.surrogate.profiles import TrainingProfile
from repro.surrogate.pretrained import PretrainedDTT
from repro.surrogate.llm import GPT3Surrogate

__all__ = ["PretrainedDTT", "GPT3Surrogate", "TrainingProfile"]

"""Masked cross-entropy over logits, with the gradient."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.functional import softmax


def masked_cross_entropy(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Average cross-entropy over unmasked positions.

    Args:
        logits: ``(batch, length, vocab)`` unnormalized scores.
        targets: ``(batch, length)`` integer labels.
        mask: ``(batch, length)`` with 1.0 at positions that count.

    Returns:
        ``(loss, grad_logits)`` where ``grad_logits`` is the gradient of
        the mean loss with respect to ``logits``.
    """
    if logits.shape[:2] != targets.shape:
        raise ShapeError(
            f"logits {logits.shape} and targets {targets.shape} disagree"
        )
    if mask is None:
        mask = np.ones(targets.shape, dtype=np.float64)
    count = float(mask.sum())
    if count == 0:
        return 0.0, np.zeros_like(logits)

    probs = softmax(logits, axis=-1)
    batch_idx, time_idx = np.indices(targets.shape)
    picked = probs[batch_idx, time_idx, targets]
    log_likelihood = np.log(np.clip(picked, 1e-12, None))
    loss = float(-(log_likelihood * mask).sum() / count)

    grad = probs.copy()
    grad[batch_idx, time_idx, targets] -= 1.0
    grad *= mask[:, :, None] / count
    return loss, grad

"""Basic layers: dense, embedding, layer norm.

Each layer's ``forward`` caches what its ``backward`` needs; layers are
single-use per step (call forward, then backward, then the optimizer).
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Module, Parameter


def init_matrix(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot-uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Module):
    """Affine map ``y = x @ W + b`` over the last axis."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.weight = Parameter(init_matrix(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward without caching activations (inference hot path)."""
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward must run before backward"
        x = self._x
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.accumulate(flat_x.T @ flat_grad)
        self.bias.accumulate(flat_grad.sum(axis=0))
        return grad_output @ self.weight.value.T


class Embedding(Module):
    """Token-id to vector lookup with scatter-add gradients."""

    def __init__(
        self, vocab_size: int, dim: int, rng: np.random.Generator
    ) -> None:
        self.table = Parameter(rng.normal(0.0, 0.02, size=(vocab_size, dim)))
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return self.table.value[ids]

    def infer(self, ids: np.ndarray) -> np.ndarray:
        """Lookup without caching ids (inference hot path)."""
        return self.table.value[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        assert self._ids is not None, "forward must run before backward"
        grad = np.zeros_like(self.table.value)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(grad, self._ids.reshape(-1), flat_grad)
        self.table.accumulate(grad)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gain = Parameter(np.ones(dim))
        self.shift = Parameter(np.zeros(dim))
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std, x)
        return normalized * self.gain.value + self.shift.value

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Normalize without caching activations (inference hot path)."""
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        return (x - mean) * inv_std * self.gain.value + self.shift.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "forward must run before backward"
        normalized, inv_std, x = self._cache
        dim = x.shape[-1]
        flat_norm = normalized.reshape(-1, dim)
        flat_grad = grad_output.reshape(-1, dim)
        self.gain.accumulate((flat_grad * flat_norm).sum(axis=0))
        self.shift.accumulate(flat_grad.sum(axis=0))
        grad_norm = grad_output * self.gain.value
        # d/dx of (x - mean) / std, the standard layer-norm backward.
        mean_grad = grad_norm.mean(axis=-1, keepdims=True)
        mean_grad_norm = (grad_norm * normalized).mean(axis=-1, keepdims=True)
        return inv_std * (grad_norm - mean_grad - normalized * mean_grad_norm)

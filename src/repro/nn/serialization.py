"""Save/load module weights as ``.npz`` archives keyed by parameter name."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import ModelError
from repro.nn.parameter import Module


def save_weights(module: Module, path: str | Path) -> None:
    """Write every parameter of ``module`` to an ``.npz`` archive."""
    parameters = module.parameters()
    names = [p.name for p in parameters]
    if len(set(names)) != len(names):
        raise ModelError("duplicate parameter names; cannot serialize")
    np.savez(Path(path), **{p.name: p.value for p in parameters})


def load_weights(module: Module, path: str | Path) -> None:
    """Load parameters saved by :func:`save_weights` into ``module``.

    Raises:
        ModelError: On missing parameters or shape mismatches.
    """
    archive = np.load(Path(path))
    for parameter in module.parameters():
        if parameter.name not in archive:
            raise ModelError(f"missing parameter in archive: {parameter.name!r}")
        stored = archive[parameter.name]
        if stored.shape != parameter.value.shape:
            raise ModelError(
                f"shape mismatch for {parameter.name!r}: archive "
                f"{stored.shape} vs model {parameter.value.shape}"
            )
        parameter.value[...] = stored

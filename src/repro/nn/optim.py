"""Optimizers: SGD and Adam, plus global-norm gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    for parameter in parameters:
        total += float((parameter.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            parameter.grad *= scale
    return norm


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 0.1,
        momentum: float = 0.0,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity, strict=True):
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += parameter.grad
                parameter.value -= self.learning_rate * velocity
            else:
                parameter.value -= self.learning_rate * parameter.grad

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v, strict=True):
            m *= self.beta1
            m += (1.0 - self.beta1) * parameter.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * parameter.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.eps
            )

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

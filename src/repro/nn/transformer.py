"""Pre-LN transformer blocks and the full encoder-decoder model.

The architecture mirrors ByT5's design choices at reduced scale:
byte-level vocabulary, learned positional embeddings, pre-layer-norm
blocks, and an *unbalanced* stack — the encoder deeper than the decoder
— which the paper adopts for character-level inputs (§4.2).

Decoding has two paths.  :meth:`Seq2SeqTransformer.decode` is the
teacher-forcing path: it attends the whole target prefix at once and
caches activations for the backward pass.  The incremental path
(:meth:`start_decoder_state` + :meth:`decode_step`) carries a
:class:`DecoderState` — per-block self-attention KV caches, one-time
cross-attention K/V projections of the encoder memory, and a position
offset — so each generated token costs O(T) instead of re-decoding the
O(T²) growing prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.nn.attention import KVCache, MultiHeadAttention
from repro.nn.functional import gelu, gelu_backward
from repro.nn.layers import Dense, Embedding, LayerNorm
from repro.nn.parameter import Module


class FeedForward(Module):
    """Position-wise two-layer MLP with GELU."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator) -> None:
        self.expand = Dense(dim, hidden, rng)
        self.contract = Dense(hidden, dim, rng)
        self._pre_activation: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        pre = self.expand.forward(x)
        self._pre_activation = pre
        return self.contract.forward(gelu(pre))

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward without caching activations (inference hot path)."""
        return self.contract.infer(gelu(self.expand.infer(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._pre_activation is not None
        grad_hidden = self.contract.backward(grad_output)
        grad_pre = gelu_backward(self._pre_activation, grad_hidden)
        return self.expand.backward(grad_pre)


class EncoderBlock(Module):
    """Pre-LN encoder block: self-attention + FFN with residuals."""

    def __init__(
        self, dim: int, n_heads: int, ffn_hidden: int, rng: np.random.Generator
    ) -> None:
        self.attn_norm = LayerNorm(dim)
        self.attention = MultiHeadAttention(dim, n_heads, rng, causal=False)
        self.ffn_norm = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, rng)

    def forward(self, x: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
        attended = self.attention.forward(self.attn_norm.forward(x), key_mask=mask)
        x = x + attended
        x = x + self.ffn.forward(self.ffn_norm.forward(x))
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output + self.ffn_norm.backward(
            self.ffn.backward(grad_output)
        )
        grad_attn, _ = self.attention.backward(grad)
        return grad + self.attn_norm.backward(grad_attn)


@dataclass
class DecoderBlockState:
    """Per-block incremental decode state.

    Attributes:
        self_kv: Growing KV cache of the block's causal self-attention.
        cross_keys: Pre-projected encoder-memory keys
            ``(batch, heads, mem_len, head_dim)``.
        cross_values: Pre-projected encoder-memory values.
    """

    self_kv: KVCache
    cross_keys: np.ndarray
    cross_values: np.ndarray

    def select(self, keep: np.ndarray) -> None:
        """Keep only the batch rows flagged in boolean ``keep``."""
        self.self_kv.select(keep)
        self.cross_keys = self.cross_keys[keep]
        self.cross_values = self.cross_values[keep]


@dataclass
class DecoderState:
    """Whole-decoder incremental state: one entry per decoder block.

    Attributes:
        blocks: Per-block KV caches and cross projections.
        memory_mask: ``(batch, mem_len)`` encoder padding mask.
        position: Index of the *next* position to decode (0 = ``<sos>``).
    """

    blocks: list[DecoderBlockState]
    memory_mask: np.ndarray | None
    position: int = 0

    @property
    def batch_size(self) -> int:
        return self.blocks[0].cross_keys.shape[0]

    def select(self, keep: np.ndarray) -> None:
        """Compact the batch down to the rows flagged in boolean ``keep``.

        Used by the generation engine to drop finished rows out of the
        micro-batch mid-decode.
        """
        for block in self.blocks:
            block.select(keep)
        if self.memory_mask is not None:
            self.memory_mask = self.memory_mask[keep]


class DecoderBlock(Module):
    """Pre-LN decoder block: causal self-attn, cross-attn, FFN."""

    def __init__(
        self, dim: int, n_heads: int, ffn_hidden: int, rng: np.random.Generator
    ) -> None:
        self.self_norm = LayerNorm(dim)
        self.self_attention = MultiHeadAttention(dim, n_heads, rng, causal=True)
        self.cross_norm = LayerNorm(dim)
        self.cross_attention = MultiHeadAttention(dim, n_heads, rng, causal=False)
        self.ffn_norm = LayerNorm(dim)
        self.ffn = FeedForward(dim, ffn_hidden, rng)

    def forward(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        memory_mask: np.ndarray | None,
    ) -> np.ndarray:
        x = x + self.self_attention.forward(self.self_norm.forward(x))
        x = x + self.cross_attention.forward(
            self.cross_norm.forward(x), keys_values=memory, key_mask=memory_mask
        )
        x = x + self.ffn.forward(self.ffn_norm.forward(x))
        return x

    def start_state(self, memory: np.ndarray, capacity: int) -> DecoderBlockState:
        """Build this block's incremental state for a decode micro-batch."""
        cross_keys, cross_values = self.cross_attention.project_kv(memory)
        batch = memory.shape[0]
        attn = self.self_attention
        return DecoderBlockState(
            self_kv=KVCache(batch, attn.n_heads, capacity, attn.head_dim),
            cross_keys=cross_keys,
            cross_values=cross_values,
        )

    def step(
        self,
        x: np.ndarray,
        state: DecoderBlockState,
        memory_mask: np.ndarray | None,
    ) -> np.ndarray:
        """Incremental forward for one position ``(batch, 1, dim)``."""
        x = x + self.self_attention.step(self.self_norm.infer(x), state.self_kv)
        x = x + self.cross_attention.attend_cached(
            self.cross_norm.infer(x),
            state.cross_keys,
            state.cross_values,
            key_mask=memory_mask,
        )
        x = x + self.ffn.infer(self.ffn_norm.infer(x))
        return x

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Returns ``(d_input, d_memory)``."""
        grad = grad_output + self.ffn_norm.backward(self.ffn.backward(grad_output))
        grad_cross_q, grad_memory = self.cross_attention.backward(grad)
        grad = grad + self.cross_norm.backward(grad_cross_q)
        grad_self, _ = self.self_attention.backward(grad)
        grad = grad + self.self_norm.backward(grad_self)
        assert grad_memory is not None
        return grad, grad_memory


class Seq2SeqTransformer(Module):
    """Byte-level encoder-decoder transformer (the DTT model class).

    Args:
        vocab_size: Token vocabulary size (specials + 256 bytes).
        dim: Model width.
        n_heads: Attention heads.
        encoder_layers: Encoder depth.
        decoder_layers: Decoder depth (ByT5-style unbalanced stacks use
            a deeper encoder; the default ratio here is 2:1).
        ffn_hidden: FFN hidden width.
        max_length: Longest supported sequence (positional table size).
        seed: Initializer seed.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int = 64,
        n_heads: int = 4,
        encoder_layers: int = 2,
        decoder_layers: int = 1,
        ffn_hidden: int = 128,
        max_length: int = 256,
        seed: int = 0,
    ) -> None:
        if encoder_layers < 1 or decoder_layers < 1:
            raise ModelError("encoder and decoder need at least one layer each")
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.dim = dim
        self.max_length = max_length
        self.token_embedding = Embedding(vocab_size, dim, rng)
        self.position_embedding = Embedding(max_length, dim, rng)
        self.decoder_token_embedding = Embedding(vocab_size, dim, rng)
        self.decoder_position_embedding = Embedding(max_length, dim, rng)
        self.encoder_blocks = [
            EncoderBlock(dim, n_heads, ffn_hidden, rng)
            for _ in range(encoder_layers)
        ]
        self.encoder_norm = LayerNorm(dim)
        self.decoder_blocks = [
            DecoderBlock(dim, n_heads, ffn_hidden, rng)
            for _ in range(decoder_layers)
        ]
        self.decoder_norm = LayerNorm(dim)
        self.output_proj = Dense(dim, vocab_size, rng)
        self._cache: tuple | None = None

    # -- forward -----------------------------------------------------------

    def encode(
        self, input_ids: np.ndarray, input_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Encode input token ids into memory states."""
        self._check_length(input_ids.shape[1])
        positions = np.arange(input_ids.shape[1])[None, :].repeat(
            input_ids.shape[0], axis=0
        )
        x = self.token_embedding.forward(input_ids) + self.position_embedding.forward(
            positions
        )
        for block in self.encoder_blocks:
            x = block.forward(x, input_mask)
        return self.encoder_norm.forward(x)

    def decode(
        self,
        target_ids: np.ndarray,
        memory: np.ndarray,
        memory_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode (teacher-forced) target ids into logits."""
        self._check_length(target_ids.shape[1])
        positions = np.arange(target_ids.shape[1])[None, :].repeat(
            target_ids.shape[0], axis=0
        )
        y = self.decoder_token_embedding.forward(
            target_ids
        ) + self.decoder_position_embedding.forward(positions)
        for block in self.decoder_blocks:
            y = block.forward(y, memory, memory_mask)
        return self.output_proj.forward(self.decoder_norm.forward(y))

    def start_decoder_state(
        self,
        memory: np.ndarray,
        memory_mask: np.ndarray | None = None,
        capacity: int | None = None,
    ) -> DecoderState:
        """Initialize incremental decoding over encoded ``memory``.

        Projects the encoder memory into every block's cross-attention
        K/V once and allocates the self-attention KV caches.

        Args:
            memory: ``(batch, mem_len, dim)`` encoder output.
            memory_mask: ``(batch, mem_len)`` padding mask.
            capacity: Maximum decode steps (defaults to ``max_length``).
        """
        if capacity is None:
            capacity = self.max_length
        self._check_length(capacity)
        return DecoderState(
            blocks=[
                block.start_state(memory, capacity)
                for block in self.decoder_blocks
            ],
            memory_mask=memory_mask,
        )

    def decode_step(
        self, token_ids: np.ndarray, state: DecoderState
    ) -> np.ndarray:
        """Decode one token per row and return next-token logits.

        Equivalent to the last position of :meth:`decode` over the full
        prefix, but costs O(prefix) instead of O(prefix²): self-attention
        K/V come from the per-block caches in ``state`` and the encoder
        memory's cross K/V were projected once at state creation.

        Args:
            token_ids: ``(batch,)`` current tokens (``<sos>`` first).
            state: Mutable decode state; advanced by one position.

        Returns:
            ``(batch, vocab_size)`` logits for the next token.
        """
        self._check_length(state.position + 1)
        positions = np.full(
            (token_ids.shape[0], 1), state.position, dtype=np.int64
        )
        y = self.decoder_token_embedding.infer(
            token_ids[:, None]
        ) + self.decoder_position_embedding.infer(positions)
        for block, block_state in zip(self.decoder_blocks, state.blocks, strict=True):
            y = block.step(y, block_state, state.memory_mask)
        state.position += 1
        logits = self.output_proj.infer(self.decoder_norm.infer(y))
        return logits[:, 0, :]

    def forward(
        self,
        input_ids: np.ndarray,
        target_ids: np.ndarray,
        input_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full teacher-forced forward pass returning logits."""
        memory = self.encode(input_ids, input_mask)
        logits = self.decode(target_ids, memory, input_mask)
        self._cache = (input_mask,)
        return logits

    # -- backward ----------------------------------------------------------

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop from logits gradient through decoder then encoder."""
        grad = self.decoder_norm.backward(self.output_proj.backward(grad_logits))
        grad_memory_total: np.ndarray | None = None
        for block in reversed(self.decoder_blocks):
            grad, grad_memory = block.backward(grad)
            if grad_memory_total is None:
                grad_memory_total = grad_memory
            else:
                grad_memory_total = grad_memory_total + grad_memory
        self.decoder_token_embedding.backward(grad)
        self.decoder_position_embedding.backward(grad)

        assert grad_memory_total is not None
        grad_enc = self.encoder_norm.backward(grad_memory_total)
        for block in reversed(self.encoder_blocks):
            grad_enc = block.backward(grad_enc)
        self.token_embedding.backward(grad_enc)
        self.position_embedding.backward(grad_enc)

    def _check_length(self, length: int) -> None:
        if length > self.max_length:
            raise ModelError(
                f"sequence length {length} exceeds max_length {self.max_length}"
            )

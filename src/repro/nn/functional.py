"""Stateless numerical functions with hand-derived gradients."""

from __future__ import annotations

import numpy as np

_SQRT_2_OVER_PI = np.sqrt(2.0 / np.pi)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax_backward(
    probs: np.ndarray, grad_output: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Gradient of softmax given its output ``probs``."""
    dot = (grad_output * probs).sum(axis=axis, keepdims=True)
    return probs * (grad_output - dot)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as in most transformers)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def gelu_backward(x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
    """Gradient of the tanh-approximated GELU."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner**2
    d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
    return grad_output * derivative


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU activation."""
    return np.maximum(x, 0.0)


def relu_backward(x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
    """Gradient of ReLU."""
    return grad_output * (x > 0.0)

"""Parameters and the module base class."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        value: The parameter tensor.
        grad: Accumulated gradient, same shape as ``value``.
        name: Dotted path used by the optimizer and serialization.
    """

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        """Add a gradient contribution, validating the shape."""
        if grad.shape != self.value.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} != parameter shape "
                f"{self.value.shape} for {self.name!r}"
            )
        self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Module:
    """Base class: recursive parameter discovery over attributes.

    Subclasses implement ``forward`` (storing whatever cache their
    ``backward`` needs) and ``backward``.
    """

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its submodules, in a
        deterministic order."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen, prefix="")
        return found

    def _collect(self, found: list[Parameter], seen: set[int], prefix: str) -> None:
        for key in sorted(vars(self)):
            value = vars(self)[key]
            path = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    if not value.name:
                        value.name = path
                    found.append(value)
            elif isinstance(value, Module):
                value._collect(found, seen, path)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect(found, seen, f"{path}.{i}")
                    elif isinstance(item, Parameter):
                        if id(item) not in seen:
                            seen.add(id(item))
                            if not item.name:
                                item.name = f"{path}.{i}"
                            found.append(item)

    def zero_grad(self) -> None:
        """Reset every parameter gradient to zero."""
        for parameter in self.parameters():
            parameter.zero_grad()

    @property
    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(int(np.prod(p.shape)) for p in self.parameters())

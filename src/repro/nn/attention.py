"""Multi-head attention with hand-derived backward pass.

Supports self-attention (queries, keys, values from one sequence),
cross-attention (keys/values from encoder memory), causal masking for
the auto-regressive decoder, and key padding masks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.functional import softmax, softmax_backward
from repro.nn.layers import Dense
from repro.nn.parameter import Module

_NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Scaled dot-product attention over ``n_heads`` heads.

    Args:
        dim: Model width (must divide evenly by ``n_heads``).
        n_heads: Number of attention heads.
        rng: Initializer random source.
        causal: Apply a lower-triangular mask (decoder self-attention).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        causal: bool = False,
    ) -> None:
        if dim % n_heads != 0:
            raise ModelError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.causal = causal
        self.query_proj = Dense(dim, dim, rng)
        self.key_proj = Dense(dim, dim, rng)
        self.value_proj = Dense(dim, dim, rng)
        self.output_proj = Dense(dim, dim, rng)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.n_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(
        self,
        queries: np.ndarray,
        keys_values: np.ndarray | None = None,
        key_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Attend ``queries`` over ``keys_values`` (self-attend if None).

        Args:
            queries: ``(batch, q_len, dim)``.
            keys_values: ``(batch, kv_len, dim)`` or None for self-attn.
            key_mask: ``(batch, kv_len)`` with 1.0 for real tokens.
        """
        source = queries if keys_values is None else keys_values
        q = self._split_heads(self.query_proj.forward(queries))
        k = self._split_heads(self.key_proj.forward(source))
        v = self._split_heads(self.value_proj.forward(source))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if key_mask is not None:
            scores = scores + (1.0 - key_mask[:, None, None, :]) * _NEG_INF
        if self.causal:
            q_len, kv_len = scores.shape[-2], scores.shape[-1]
            causal_mask = np.tril(np.ones((q_len, kv_len)))
            scores = scores + (1.0 - causal_mask) * _NEG_INF
        probs = softmax(scores, axis=-1)
        context = probs @ v
        output = self.output_proj.forward(self._merge_heads(context))
        self._cache = (q, k, v, probs, scale, keys_values is None)
        return output

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Backprop; returns ``(d_queries, d_keys_values)``.

        ``d_keys_values`` is ``None`` for self-attention (already folded
        into ``d_queries``).
        """
        assert self._cache is not None, "forward must run before backward"
        q, k, v, probs, scale, is_self = self._cache
        grad_context = self._split_heads(self.output_proj.backward(grad_output))

        grad_probs = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = probs.transpose(0, 1, 3, 2) @ grad_context
        grad_scores = softmax_backward(probs, grad_probs, axis=-1)
        grad_q = (grad_scores @ k) * scale
        grad_k = (grad_scores.transpose(0, 1, 3, 2) @ q) * scale

        d_queries = self.query_proj.backward(self._merge_heads(grad_q))
        d_source = self.key_proj.backward(self._merge_heads(grad_k))
        d_source = d_source + self.value_proj.backward(self._merge_heads(grad_v))
        if is_self:
            return d_queries + d_source, None
        return d_queries, d_source

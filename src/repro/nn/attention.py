"""Multi-head attention with hand-derived backward pass.

Supports self-attention (queries, keys, values from one sequence),
cross-attention (keys/values from encoder memory), causal masking for
the auto-regressive decoder, and key padding masks.

Two execution styles share the projection weights:

* the **batch** path (:meth:`MultiHeadAttention.forward`) attends a full
  query sequence and caches activations for :meth:`backward`; and
* the **incremental** path (:meth:`MultiHeadAttention.step` /
  :meth:`attend_cached`) attends a length-1 query against a
  :class:`KVCache` of previously projected keys/values, which is what
  makes auto-regressive decoding O(T) per step instead of O(T²).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.nn.functional import softmax, softmax_backward
from repro.nn.layers import Dense
from repro.nn.parameter import Module

_NEG_INF = -1e9

# One process-level additive causal mask, grown to the largest shape
# requested (rounded up to soften reallocation churn) and served as
# read-only top-aligned views, so repeated full-prefix decodes retain a
# single max_length² array instead of one mask per prefix length.
_CAUSAL_BIAS: np.ndarray = np.empty((0, 0))
_CAUSAL_GROWTH = 64


def causal_bias(q_len: int, kv_len: int) -> np.ndarray:
    """Return the cached additive causal mask ``(1 - tril) * -1e9``.

    The returned array is a read-only ``(q_len, kv_len)`` view; row
    ``i`` admits keys ``j <= i`` (top-aligned, matching
    ``np.tril(np.ones((q_len, kv_len)))``).
    """
    global _CAUSAL_BIAS
    size = max(q_len, kv_len)
    if _CAUSAL_BIAS.shape[0] < size:
        size = -(-size // _CAUSAL_GROWTH) * _CAUSAL_GROWTH
        bias = (1.0 - np.tril(np.ones((size, size)))) * _NEG_INF
        bias.setflags(write=False)
        _CAUSAL_BIAS = bias
    return _CAUSAL_BIAS[:q_len, :kv_len]


class KVCache:
    """Preallocated per-layer key/value store for incremental decoding.

    Keys and values are appended one step at a time (already split into
    heads) and read back as views, so the decode loop never reprojects
    or copies the growing prefix.

    Args:
        batch: Batch size of the decode micro-batch.
        n_heads: Attention heads.
        capacity: Maximum number of steps that will be appended.
        head_dim: Per-head width.
    """

    def __init__(self, batch: int, n_heads: int, capacity: int, head_dim: int) -> None:
        self.keys = np.zeros((batch, n_heads, capacity, head_dim))
        self.values = np.zeros((batch, n_heads, capacity, head_dim))
        self.length = 0

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append one step of projected keys/values ``(batch, heads, 1, hd)``."""
        step = keys.shape[2]
        if self.length + step > self.keys.shape[2]:
            raise ModelError(
                f"KV cache overflow: {self.length} + {step} exceeds "
                f"capacity {self.keys.shape[2]}"
            )
        self.keys[:, :, self.length : self.length + step] = keys
        self.values[:, :, self.length : self.length + step] = values
        self.length += step

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Views of the filled prefix ``(batch, heads, length, head_dim)``."""
        return self.keys[:, :, : self.length], self.values[:, :, : self.length]

    def select(self, keep: np.ndarray) -> None:
        """Keep only the batch rows flagged in boolean ``keep``."""
        self.keys = self.keys[keep]
        self.values = self.values[keep]


class MultiHeadAttention(Module):
    """Scaled dot-product attention over ``n_heads`` heads.

    Args:
        dim: Model width (must divide evenly by ``n_heads``).
        n_heads: Number of attention heads.
        rng: Initializer random source.
        causal: Apply a lower-triangular mask (decoder self-attention).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        causal: bool = False,
    ) -> None:
        if dim % n_heads != 0:
            raise ModelError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.causal = causal
        self.query_proj = Dense(dim, dim, rng)
        self.key_proj = Dense(dim, dim, rng)
        self.value_proj = Dense(dim, dim, rng)
        self.output_proj = Dense(dim, dim, rng)
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.n_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, length, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(
        self,
        queries: np.ndarray,
        keys_values: np.ndarray | None = None,
        key_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Attend ``queries`` over ``keys_values`` (self-attend if None).

        Args:
            queries: ``(batch, q_len, dim)``.
            keys_values: ``(batch, kv_len, dim)`` or None for self-attn.
            key_mask: ``(batch, kv_len)`` with 1.0 for real tokens.  A
                row with *zero* real keys is degenerate: every score is
                ``-1e9`` and the softmax falls back to a uniform average
                over padding positions.  Callers must not feed fully
                padded rows through this batch path (the incremental
                :meth:`attend_cached` defines the result as a zero
                context instead).
        """
        source = queries if keys_values is None else keys_values
        q = self._split_heads(self.query_proj.forward(queries))
        k = self._split_heads(self.key_proj.forward(source))
        v = self._split_heads(self.value_proj.forward(source))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if key_mask is not None:
            scores = scores + (1.0 - key_mask[:, None, None, :]) * _NEG_INF
        if self.causal:
            scores = scores + causal_bias(scores.shape[-2], scores.shape[-1])
        probs = softmax(scores, axis=-1)
        context = probs @ v
        output = self.output_proj.forward(self._merge_heads(context))
        self._cache = (q, k, v, probs, scale, keys_values is None)
        return output

    # -- incremental decoding ---------------------------------------------

    def project_kv(self, source: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project ``source`` into split-head keys/values once.

        Used for cross-attention: the encoder memory is fixed for the
        whole decode, so its K/V projections are computed one time and
        reused by every :meth:`attend_cached` step.
        """
        keys = self._split_heads(self.key_proj.infer(source))
        values = self._split_heads(self.value_proj.infer(source))
        return keys, values

    def attend_cached(
        self,
        queries: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        key_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Attend ``queries`` over pre-projected split-head keys/values.

        Args:
            queries: ``(batch, q_len, dim)`` (length-1 during decoding).
            keys: ``(batch, heads, kv_len, head_dim)``.
            values: ``(batch, heads, kv_len, head_dim)``.
            key_mask: ``(batch, kv_len)`` with 1.0 for real tokens.  A
                row with zero real keys yields a *zero* context vector
                (only the output projection's bias survives) instead of
                the batch path's degenerate uniform-over-padding mix.
        """
        q = self._split_heads(self.query_proj.infer(queries))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ keys.transpose(0, 1, 3, 2)) * scale
        if key_mask is not None:
            scores = scores + (1.0 - key_mask[:, None, None, :]) * _NEG_INF
        probs = softmax(scores, axis=-1)
        context = probs @ values
        if key_mask is not None:
            empty = ~key_mask.any(axis=-1)
            if empty.any():
                context[empty] = 0.0
        return self.output_proj.infer(self._merge_heads(context))

    def step(self, queries: np.ndarray, cache: KVCache) -> np.ndarray:
        """Causal self-attention for one decode step.

        Projects the new position's K/V, appends them to ``cache``, and
        attends the length-1 query against the filled prefix.  No causal
        mask is needed: every cached position precedes the query.

        Args:
            queries: ``(batch, 1, dim)`` — the current position only.
            cache: This layer's :class:`KVCache`.
        """
        keys_new = self._split_heads(self.key_proj.infer(queries))
        values_new = self._split_heads(self.value_proj.infer(queries))
        cache.append(keys_new, values_new)
        keys, values = cache.view()
        return self.attend_cached(queries, keys, values)

    def backward(self, grad_output: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Backprop; returns ``(d_queries, d_keys_values)``.

        ``d_keys_values`` is ``None`` for self-attention (already folded
        into ``d_queries``).
        """
        assert self._cache is not None, "forward must run before backward"
        q, k, v, probs, scale, is_self = self._cache
        grad_context = self._split_heads(self.output_proj.backward(grad_output))

        grad_probs = grad_context @ v.transpose(0, 1, 3, 2)
        grad_v = probs.transpose(0, 1, 3, 2) @ grad_context
        grad_scores = softmax_backward(probs, grad_probs, axis=-1)
        grad_q = (grad_scores @ k) * scale
        grad_k = (grad_scores.transpose(0, 1, 3, 2) @ q) * scale

        d_queries = self.query_proj.backward(self._merge_heads(grad_q))
        d_source = self.key_proj.backward(self._merge_heads(grad_k))
        d_source = d_source + self.value_proj.backward(self._merge_heads(grad_v))
        if is_self:
            return d_queries + d_source, None
        return d_queries, d_source

"""A from-scratch numpy deep-learning stack.

Implements everything needed to train the paper's model class — a
byte-level encoder-decoder transformer — with no autograd framework:
each module implements an explicit ``forward``/``backward`` pair, and
gradients flow through the same object graph in reverse.  The stack is
deliberately small but complete: embeddings, layer norm, multi-head
self/cross attention (with causal masking), position-wise FFNs, pre-LN
transformer blocks, masked cross-entropy, Adam, gradient clipping, and
weight (de)serialization.

It exists because the paper fine-tunes ByT5-base on a GPU; this CPU
re-implementation exercises the identical training/decoding code path
at laptop scale (see DESIGN.md §2 for the substitution rationale).
"""

from repro.nn.parameter import Module, Parameter
from repro.nn.layers import Dense, Embedding, LayerNorm
from repro.nn.attention import KVCache, MultiHeadAttention, causal_bias
from repro.nn.transformer import (
    DecoderBlock,
    DecoderBlockState,
    DecoderState,
    EncoderBlock,
    FeedForward,
    Seq2SeqTransformer,
)
from repro.nn.loss import masked_cross_entropy
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.serialization import load_weights, save_weights

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "Embedding",
    "LayerNorm",
    "MultiHeadAttention",
    "KVCache",
    "causal_bias",
    "FeedForward",
    "EncoderBlock",
    "DecoderBlock",
    "DecoderBlockState",
    "DecoderState",
    "Seq2SeqTransformer",
    "masked_cross_entropy",
    "Adam",
    "SGD",
    "clip_gradients",
    "save_weights",
    "load_weights",
]

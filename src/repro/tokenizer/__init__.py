"""Byte-level tokenization (ByT5-style), paper §4.2.

DTT rejects subword tokenizers because table cells are short, often not
natural-language words, and every character may independently contribute
to the output.  The paper adopts ByT5's byte-level scheme: each UTF-8
byte is one token, plus a handful of special tokens for the tabular
serialization (``<sos>``, ``<tr>``, ``<eoe>``, ``<eos>``, ``<pad>``).
"""

from repro.tokenizer.vocab import SpecialTokens, Vocabulary
from repro.tokenizer.byte_tokenizer import ByteTokenizer

__all__ = ["ByteTokenizer", "SpecialTokens", "Vocabulary"]

"""Vocabulary for the byte-level tokenizer.

Layout mirrors ByT5: ids ``0..n_special-1`` are special tokens and ids
``n_special..n_special+255`` are raw byte values, so the total vocabulary
is ``n_special + 256`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TokenizationError


@dataclass(frozen=True)
class SpecialTokens:
    """The special tokens of the DTT serialization (paper §4.1).

    Attributes:
        pad: Padding token for batching.
        sos: Start-of-sequence marker.
        eos: End-of-sequence marker.
        tr: Separator between a source and its target within an example.
        eoe: Separator between two examples.
    """

    pad: str = "<pad>"
    sos: str = "<sos>"
    eos: str = "<eos>"
    tr: str = "<tr>"
    eoe: str = "<eoe>"

    def as_tuple(self) -> tuple[str, ...]:
        """Return all special tokens in id order (pad first)."""
        return (self.pad, self.sos, self.eos, self.tr, self.eoe)


class Vocabulary:
    """Maps special tokens and raw bytes to integer ids and back."""

    def __init__(self, special: SpecialTokens | None = None) -> None:
        self.special = special or SpecialTokens()
        self._specials = self.special.as_tuple()
        self._special_ids = {tok: i for i, tok in enumerate(self._specials)}
        if len(self._special_ids) != len(self._specials):
            raise TokenizationError("special tokens must be distinct")
        self.byte_offset = len(self._specials)
        self.size = self.byte_offset + 256

    @property
    def pad_id(self) -> int:
        return self._special_ids[self.special.pad]

    @property
    def sos_id(self) -> int:
        return self._special_ids[self.special.sos]

    @property
    def eos_id(self) -> int:
        return self._special_ids[self.special.eos]

    @property
    def tr_id(self) -> int:
        return self._special_ids[self.special.tr]

    @property
    def eoe_id(self) -> int:
        return self._special_ids[self.special.eoe]

    def special_id(self, token: str) -> int:
        """Return the id of a special token, raising on unknown tokens."""
        try:
            return self._special_ids[token]
        except KeyError:
            raise TokenizationError(f"unknown special token: {token!r}") from None

    def byte_id(self, byte: int) -> int:
        """Return the token id for a raw byte value (0..255)."""
        if not 0 <= byte <= 255:
            raise TokenizationError(f"byte value out of range: {byte}")
        return self.byte_offset + byte

    def is_special(self, token_id: int) -> bool:
        """True when ``token_id`` denotes a special token."""
        return 0 <= token_id < self.byte_offset

    def id_to_byte(self, token_id: int) -> int:
        """Return the raw byte for a byte token id."""
        if not self.byte_offset <= token_id < self.size:
            raise TokenizationError(f"id {token_id} is not a byte token")
        return token_id - self.byte_offset

    def id_to_token(self, token_id: int) -> str:
        """Human-readable rendering of any token id (for debugging)."""
        if self.is_special(token_id):
            return self._specials[token_id]
        return chr(self.id_to_byte(token_id))

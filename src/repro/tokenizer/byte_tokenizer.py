"""Byte-level tokenizer with tabular special tokens.

Encodes strings as UTF-8 bytes offset past the special-token ids, exactly
like ByT5.  Special-token *markup* inside the serialized prompt (for
example ``<tr>``) is encoded as single ids, never as their constituent
bytes, so tabular structure is unambiguous to the model.
"""

from __future__ import annotations

import re

import numpy as np

from repro.exceptions import TokenizationError
from repro.tokenizer.vocab import SpecialTokens, Vocabulary

_SPECIAL_PATTERN = re.compile(r"(<pad>|<sos>|<eos>|<tr>|<eoe>)")


class ByteTokenizer:
    """UTF-8 byte tokenizer aware of the DTT serialization markup.

    Attributes:
        vocab: The underlying :class:`Vocabulary`.
    """

    def __init__(self, special: SpecialTokens | None = None) -> None:
        self.vocab = Vocabulary(special)

    @property
    def vocab_size(self) -> int:
        return self.vocab.size

    def encode_text(self, text: str) -> list[int]:
        """Encode raw text (no markup) into byte token ids."""
        offset = self.vocab.byte_offset
        return [offset + b for b in text.encode("utf-8")]

    def encode(
        self, prompt: str, add_sos: bool = False, add_eos: bool = False
    ) -> list[int]:
        """Encode a serialized prompt that may contain special-token markup.

        Args:
            prompt: Text possibly containing ``<sos>``, ``<tr>``, ``<eoe>``,
                ``<eos>``, ``<pad>`` markers.
            add_sos: Prepend a ``<sos>`` id.
            add_eos: Append an ``<eos>`` id.
        """
        ids: list[int] = []
        if add_sos:
            ids.append(self.vocab.sos_id)
        for piece in _SPECIAL_PATTERN.split(prompt):
            if not piece:
                continue
            if _SPECIAL_PATTERN.fullmatch(piece):
                ids.append(self.vocab.special_id(piece))
            else:
                ids.extend(self.encode_text(piece))
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: list[int] | np.ndarray, strip_special: bool = True) -> str:
        """Decode token ids back to text.

        Args:
            ids: Token ids.
            strip_special: When true, special tokens are dropped (and
                decoding stops at the first ``<eos>``); when false they
                are rendered as their markup strings.
        """
        pieces: list[str] = []
        byte_buffer = bytearray()

        def flush() -> None:
            if byte_buffer:
                pieces.append(byte_buffer.decode("utf-8", errors="replace"))
                byte_buffer.clear()

        for raw_id in ids:
            token_id = int(raw_id)
            if token_id < 0 or token_id >= self.vocab.size:
                raise TokenizationError(f"token id out of range: {token_id}")
            if self.vocab.is_special(token_id):
                if strip_special:
                    if token_id == self.vocab.eos_id:
                        break
                    continue
                flush()
                pieces.append(self.vocab.id_to_token(token_id))
            else:
                byte_buffer.append(self.vocab.id_to_byte(token_id))
        flush()
        return "".join(pieces)

    def pad_batch(
        self, sequences: list[list[int]], max_length: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pad a batch of id sequences into a dense matrix.

        Returns:
            ``(ids, mask)`` where ``ids`` has shape ``(batch, length)``
            and ``mask`` is 1.0 for real tokens, 0.0 for padding.
        """
        if not sequences:
            raise TokenizationError("cannot pad an empty batch")
        length = max(len(seq) for seq in sequences)
        if max_length is not None:
            length = min(length, max_length)
        ids = np.full((len(sequences), length), self.vocab.pad_id, dtype=np.int64)
        mask = np.zeros((len(sequences), length), dtype=np.float64)
        for row, seq in enumerate(sequences):
            clipped = seq[:length]
            ids[row, : len(clipped)] = clipped
            mask[row, : len(clipped)] = 1.0
        return ids, mask

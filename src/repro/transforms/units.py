"""Basic transformation units (paper §5.1.2, following Auto-join and CST).

Each unit maps a string to a string.  Units are total functions: out-of-
range selections yield the empty string rather than raising, because the
random composer may produce parameter combinations that do not apply to
every input (the paper samples parameters at random too).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import TransformError


class TransformationUnit(ABC):
    """A single string-to-string edit operation."""

    @abstractmethod
    def apply(self, text: str) -> str:
        """Apply the unit to ``text`` and return the result."""

    @abstractmethod
    def describe(self) -> str:
        """Return a compact human-readable description."""

    def __call__(self, text: str) -> str:
        return self.apply(text)


@dataclass(frozen=True)
class Substring(TransformationUnit):
    """Select ``text[start:end]``; negative offsets index from the end.

    ``end=None`` means "to the end of the string".
    """

    start: int
    end: int | None = None

    def apply(self, text: str) -> str:
        return text[self.start : self.end]

    def describe(self) -> str:
        end = "" if self.end is None else self.end
        return f"substr({self.start}:{end})"


@dataclass(frozen=True)
class Split(TransformationUnit):
    """Split on a delimiter and select one part.

    A negative ``index`` selects from the end (``-1`` is the last part).
    Selecting a part that does not exist yields the empty string.
    """

    delimiter: str
    index: int

    def __post_init__(self) -> None:
        if not self.delimiter:
            raise TransformError("split delimiter must be non-empty")

    def apply(self, text: str) -> str:
        parts = text.split(self.delimiter)
        position = self.index if self.index >= 0 else len(parts) + self.index
        if 0 <= position < len(parts):
            return parts[position]
        return ""

    def describe(self) -> str:
        return f"split({self.delimiter!r},{self.index})"


@dataclass(frozen=True)
class Lowercase(TransformationUnit):
    """Lowercase the input."""

    def apply(self, text: str) -> str:
        return text.lower()

    def describe(self) -> str:
        return "lower"


@dataclass(frozen=True)
class Uppercase(TransformationUnit):
    """Uppercase the input."""

    def apply(self, text: str) -> str:
        return text.upper()

    def describe(self) -> str:
        return "upper"


@dataclass(frozen=True)
class TitleCase(TransformationUnit):
    """Title-case the input (used by the real-world dataset simulators)."""

    def apply(self, text: str) -> str:
        return text.title()

    def describe(self) -> str:
        return "title"


@dataclass(frozen=True)
class Literal(TransformationUnit):
    """Emit a constant string, ignoring the input."""

    text: str

    def apply(self, text: str) -> str:
        return self.text

    def describe(self) -> str:
        return f"lit({self.text!r})"


@dataclass(frozen=True)
class Replace(TransformationUnit):
    """Replace every occurrence of one character with another.

    Evaluation-only unit: builds the Syn-RP dataset (§5.2).  It is *not*
    part of the training-unit repertoire, so a trained model has never
    seen it.
    """

    old: str
    new: str

    def __post_init__(self) -> None:
        if len(self.old) != 1:
            raise TransformError("Replace operates on single characters")

    def apply(self, text: str) -> str:
        return text.replace(self.old, self.new)

    def describe(self) -> str:
        return f"replace({self.old!r}->{self.new!r})"


@dataclass(frozen=True)
class Reverse(TransformationUnit):
    """Reverse the character order of the input.

    Evaluation-only unit: builds the Syn-RV dataset (§5.2).
    """

    def apply(self, text: str) -> str:
        return text[::-1]

    def describe(self) -> str:
        return "reverse"


@dataclass(frozen=True)
class Stacked(TransformationUnit):
    """Composition of units: the output of each is fed to the next.

    The paper allows stacking of up to three units instead of
    introducing compound units like ``splitsubstring`` (§5.1.2).
    """

    units: tuple[TransformationUnit, ...]

    def __post_init__(self) -> None:
        if not self.units:
            raise TransformError("Stacked requires at least one unit")

    def apply(self, text: str) -> str:
        value = text
        for unit in self.units:
            value = unit.apply(value)
        return value

    def describe(self) -> str:
        inner = "∘".join(unit.describe() for unit in reversed(self.units))
        return f"stack({inner})"

    @property
    def depth(self) -> int:
        return len(self.units)

"""String transformation units and their composition (paper §5.1.2).

The synthetic training data is produced by applying randomly composed
*transformations* to random source strings.  A transformation is a
sequence of *units* — ``substring``, ``split``, ``lowercase``,
``uppercase``, ``literal`` — whose outputs are concatenated.  Units may
additionally be *stacked* (the output of one fed into another) up to
depth 3.  ``replace`` and ``reverse`` exist only for building the
Syn-RP / Syn-RV evaluation datasets and never appear in training data,
mirroring the paper's unseen-transformation setup.
"""

from repro.transforms.units import (
    Literal,
    Lowercase,
    Replace,
    Reverse,
    Split,
    Stacked,
    Substring,
    TitleCase,
    TransformationUnit,
    Uppercase,
)
from repro.transforms.composer import Transformation, TransformationComposer

__all__ = [
    "TransformationUnit",
    "Substring",
    "Split",
    "Lowercase",
    "Uppercase",
    "TitleCase",
    "Literal",
    "Replace",
    "Reverse",
    "Stacked",
    "Transformation",
    "TransformationComposer",
]

"""Random composition of transformation units (paper §5.1.2).

A :class:`Transformation` is an ordered sequence of units whose outputs
are concatenated: ``output = u1(x) + u2(x) + ... + uk(x)``.  The
:class:`TransformationComposer` samples random transformations — random
unit choices, random parameters, random length, and random stacking up
to depth 3 — to build the synthetic training corpus and the ``Syn``
evaluation dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transforms.units import (
    Literal,
    Lowercase,
    Split,
    Stacked,
    Substring,
    TransformationUnit,
    Uppercase,
)

_DELIMITERS = " -_./,:;@"
_LITERAL_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_/"
)


@dataclass(frozen=True)
class Transformation:
    """An ordered sequence of units whose outputs are concatenated.

    Attributes:
        units: The units; the transformation output is the concatenation
            of each unit applied to the *original* input (paper §5.1.2).
    """

    units: tuple[TransformationUnit, ...]

    def apply(self, text: str) -> str:
        """Apply the transformation to ``text``."""
        return "".join(unit.apply(text) for unit in self.units)

    def describe(self) -> str:
        """Return a compact description such as ``substr(0:3)+lit('-')``."""
        return "+".join(unit.describe() for unit in self.units)

    def __call__(self, text: str) -> str:
        return self.apply(text)

    def __len__(self) -> int:
        return len(self.units)


class TransformationComposer:
    """Samples random transformations for training-data generation.

    Args:
        min_units: Minimum number of top-level units per transformation.
        max_units: Maximum number of top-level units per transformation.
        max_stack_depth: Maximum stacking depth (paper uses 3).
        literal_max_length: Longest literal a ``literal`` unit may emit.
    """

    def __init__(
        self,
        min_units: int = 3,
        max_units: int = 6,
        max_stack_depth: int = 3,
        literal_max_length: int = 3,
    ) -> None:
        if min_units < 1 or max_units < min_units:
            raise ValueError(
                f"invalid unit-count range: [{min_units}, {max_units}]"
            )
        if max_stack_depth < 1:
            raise ValueError(f"max_stack_depth must be >= 1, got {max_stack_depth}")
        self.min_units = min_units
        self.max_units = max_units
        self.max_stack_depth = max_stack_depth
        self.literal_max_length = literal_max_length

    def sample(self, rng: np.random.Generator) -> Transformation:
        """Sample one random transformation."""
        count = int(rng.integers(self.min_units, self.max_units + 1))
        units = tuple(self._sample_top_level_unit(rng) for _ in range(count))
        return Transformation(units)

    def _sample_top_level_unit(self, rng: np.random.Generator) -> TransformationUnit:
        # Stacked units are the norm (the paper introduces stacking
        # precisely because flat unit languages are too weak); depth
        # distribution ≈ {1: 0.3, 2: 0.4, 3: 0.3} for max depth 3.
        roll = rng.random()
        if roll < 0.3:
            depth = 1
        elif roll < 0.7:
            depth = min(2, self.max_stack_depth)
        else:
            depth = self.max_stack_depth
        base = self._sample_base_unit(rng, allow_literal=True)
        if depth == 1 or isinstance(base, Literal):
            return base
        stack: list[TransformationUnit] = [base]
        for _ in range(depth - 1):
            stack.append(self._sample_base_unit(rng, allow_literal=False))
        return Stacked(tuple(stack))

    def _sample_base_unit(
        self, rng: np.random.Generator, allow_literal: bool
    ) -> TransformationUnit:
        # Selection units dominate; whole-string case maps are rarer as
        # standalone units (they mostly appear stacked on a selection),
        # otherwise nearly every transformation embeds a full copy of
        # the input and the dataset collapses into trivial similarity.
        kinds = ["substring"] * 4 + ["split"] * 4 + ["lowercase", "uppercase"]
        if allow_literal:
            kinds.extend(["literal"] * 2)
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind == "substring":
            start = int(rng.integers(0, 8))
            if rng.random() < 0.3:
                return Substring(start=start, end=None)
            length = int(rng.integers(1, 10))
            return Substring(start=start, end=start + length)
        if kind == "split":
            delimiter = _DELIMITERS[int(rng.integers(0, len(_DELIMITERS)))]
            index = int(rng.integers(-2, 3))
            return Split(delimiter=delimiter, index=index)
        if kind == "lowercase":
            return Lowercase()
        if kind == "uppercase":
            return Uppercase()
        length = int(rng.integers(1, self.literal_max_length + 1))
        chars = rng.integers(0, len(_LITERAL_ALPHABET), size=length)
        return Literal("".join(_LITERAL_ALPHABET[int(c)] for c in chars))

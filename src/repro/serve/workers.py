"""Pre-fork worker processes hosting :class:`TransformService` replicas.

The single-process serving layer is one GIL-bound interpreter: however
well its micro-batching amortizes scheduling, decode and join compute
for concurrent requests ultimately serialize on one core.  This module
makes the tier **shared-nothing horizontal**: a
:class:`ServeWorkerPool` owns N worker *processes*, each running the
full per-route :class:`~repro.serve.service.TransformService` stack —
pipeline, micro-batching scheduler, result + join caches — and the
parent dispatches whole requests to the least-loaded live worker over
stdlib :mod:`multiprocessing` pipes.

**Fork-first startup.**  Worker start-method policy is shared with the
join engine's :class:`~repro.index.parallel.JoinWorkerPool` (see
:func:`~repro.index.parallel.pool_context`): when ``fork`` is available
and the parent is still single-threaded, workers inherit the parent's
**already-built pipelines copy-on-write** — model weights, tokenizer
tables, and any q-gram indexes the parent's process-level
:class:`~repro.index.cache.IndexCache` holds arrive without a byte of
serialization or a second build.  Otherwise (or when a crashed worker
is respawned into a now-threaded parent) workers start from a clean
interpreter and rebuild their pipelines from the picklable factories,
which are deterministic by construction — so either path produces
byte-identical services.

**Byte-equivalence.**  Results at any worker count are byte-identical
to the single-process path: each request executes inside exactly one
worker's ``TransformService`` (itself byte-identical to direct pipeline
calls, whatever coalescing happens around it), every worker's pipeline
is content-identical (same factory, or the same forked memory), and no
result ever depends on which worker served it.

**Crash containment.**  A worker that dies (OOM kill, segfault, bug)
fails only its in-flight requests — each gets a
:class:`~repro.exceptions.WorkerCrashedError`, surfaced by the HTTP
tier as a structured 503 — and the pool respawns a replacement before
dispatching new work.  The blast radius of a crash is one worker's
in-flight batch, never the service.

Wire protocol (parent -> worker): ``(request_id, op, payload)`` tuples
over a duplex pipe; replies are ``(request_id, ok, result_or_error,
spans)``.  Ops: ``"transform"`` / ``"join"`` execute on a route's
service; ``"stats"`` / ``"metrics"`` snapshot every route; ``"ping"``
checks liveness; ``"shutdown"`` drains and exits.

**Cross-process tracing.**  Request payloads carry the parent's sampled
:class:`~repro.obs.trace.SpanContext` (or ``None``) as their last
element; the worker opens a ``worker.execute`` span re-parented to it,
activates it around the service submit (so queue-wait / batch-execute /
engine / join spans all land under it), and ships every finished span
of the trace back in the reply's ``spans`` slot.  The parent ingests
them into its tracer *before* resolving the dispatch future, so by the
time the HTTP root span closes the whole tree — whichever worker ran it
— commits as one trace.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections.abc import Callable, Mapping
from concurrent.futures import Future
from typing import TYPE_CHECKING

from repro.core.pipeline import DTTPipeline
from repro.exceptions import ServiceClosedError, WorkerCrashedError
from repro.index.parallel import pool_context
from repro.obs.trace import Span, get_tracer

if TYPE_CHECKING:
    from repro.serve.service import TransformService

#: Zero-argument, picklable constructor of one route's pipeline.  Must
#: be deterministic: every call (in any process) builds a pipeline with
#: the same fingerprint, or byte-equivalence across workers is void.
PipelineFactory = Callable[[], DTTPipeline]


def build_service(
    pipeline: DTTPipeline, service_kwargs: Mapping
) -> TransformService:
    """Construct one ``TransformService`` from picklable kwargs.

    Cache objects hold locks and cannot cross a spawn pickle, so the
    pool ships cache *parameters* instead: the special keys
    ``result_cache_kwargs`` / ``join_cache_kwargs`` (dicts of
    ``max_entries`` / ``max_bytes`` / ``ttl_seconds``) are popped here
    and turned into per-service cache instances; everything else passes
    through to :class:`~repro.serve.service.TransformService` verbatim.
    The router's in-process mode builds through the same function, so
    both deployment shapes accept the same configuration.
    """
    from repro.serve.cache import JoinResultCache, ResultCache
    from repro.serve.service import TransformService

    kwargs = dict(service_kwargs)
    result_cache_kwargs = kwargs.pop("result_cache_kwargs", None)
    join_cache_kwargs = kwargs.pop("join_cache_kwargs", None)
    if result_cache_kwargs is not None:
        kwargs["result_cache"] = ResultCache(**result_cache_kwargs)
    if join_cache_kwargs is not None:
        kwargs["join_cache"] = JoinResultCache(**join_cache_kwargs)
    return TransformService(pipeline, **kwargs)


def _worker_main(
    conn,
    pipelines: dict[str, DTTPipeline] | None,
    factories: dict[str, PipelineFactory],
    service_kwargs: dict,
) -> None:
    """One worker process: per-route services behind a reply loop.

    ``pipelines`` is non-``None`` only under the ``fork`` start method,
    where the parent's built pipelines ride in copy-on-write; fresh
    interpreters build from ``factories`` instead.  Request ops submit
    to the route's service and reply from the future's done callback
    (on the service's scheduler thread), so one worker pipelines many
    concurrent requests through its own micro-batching — the parent
    never waits for one reply before sending the next request.
    """
    # Under fork, this child inherits the parent tracer's RNG state;
    # without a reseed its span ids would be identical to the parent's
    # next draws, colliding with the request ids they parent under.
    get_tracer().reseed()
    if pipelines is None:
        pipelines = {name: factory() for name, factory in factories.items()}
    services = {
        name: build_service(pipeline, service_kwargs)
        for name, pipeline in pipelines.items()
    }
    send_lock = threading.Lock()

    def reply(
        request_id: int,
        ok: bool,
        payload: object,
        spans: list[dict] | None = None,
    ) -> None:
        """Send one framed reply; a vanished parent is not an error."""
        try:
            with send_lock:
                conn.send((request_id, ok, payload, spans))
        except (BrokenPipeError, OSError):
            pass  # the parent is gone; nothing left to tell

    def reply_future(
        request_id: int, future: Future, span: object = None
    ) -> None:
        """Relay a completed future — result or (picklable) error.

        ``span`` is the request's ``worker.execute`` span: it finishes
        here (the service closed its own spans before resolving the
        future), and every finished span of the trace drains into the
        reply so the parent can re-assemble the tree.
        """
        error = future.exception()
        spans = None
        if isinstance(span, Span):
            if error is not None:
                span.set_error(repr(error))
            span.finish()
            spans = get_tracer().drain(span.trace_id)
        if error is None:
            reply(request_id, True, future.result(), spans)
            return
        try:
            reply(request_id, False, error, spans)
        except Exception:
            # Unpicklable exception (a model bug carrying live state):
            # degrade to a picklable description, never a silent drop.
            reply(request_id, False, RuntimeError(repr(error)), spans)

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died; exit with it
            request_id, op, payload = message
            if op == "shutdown":
                reply(request_id, True, "bye")
                break
            try:
                if op == "transform":
                    route, sources, examples, timeout, trace_ctx = payload
                    tracer = get_tracer()
                    span = tracer.start_span(
                        "worker.execute",
                        parent=trace_ctx,
                        attributes={
                            "route": route,
                            "op": op,
                            "pid": os.getpid(),
                        },
                    )
                    with tracer.activate(span):
                        future = services[route].submit_transform(
                            sources, examples, timeout
                        )
                    future.add_done_callback(
                        lambda f, rid=request_id, s=span: reply_future(
                            rid, f, s
                        )
                    )
                elif op == "join":
                    (
                        route,
                        sources,
                        targets,
                        examples,
                        timeout,
                        mode,
                        k,
                        margin,
                        trace_ctx,
                    ) = payload
                    tracer = get_tracer()
                    span = tracer.start_span(
                        "worker.execute",
                        parent=trace_ctx,
                        attributes={
                            "route": route,
                            "op": op,
                            "pid": os.getpid(),
                        },
                    )
                    with tracer.activate(span):
                        future = services[route].submit_join(
                            sources,
                            targets,
                            examples,
                            timeout,
                            mode=mode,
                            k=k,
                            margin=margin,
                        )
                    future.add_done_callback(
                        lambda f, rid=request_id, s=span: reply_future(
                            rid, f, s
                        )
                    )
                elif op == "stats":
                    reply(
                        request_id,
                        True,
                        {
                            "pid": os.getpid(),
                            "routes": {
                                name: {
                                    "stats": service.stats().as_dict(),
                                    "join": service.join_stats_snapshot(),
                                }
                                for name, service in services.items()
                            },
                        },
                    )
                elif op == "metrics":
                    reply(
                        request_id,
                        True,
                        {
                            name: service.metrics_snapshot()
                            for name, service in services.items()
                        },
                    )
                elif op == "ping":
                    reply(request_id, True, os.getpid())
                else:
                    reply(
                        request_id,
                        False,
                        ValueError(f"unknown worker op {op!r}"),
                    )
            except Exception as error:  # submit-time failures
                try:
                    reply(request_id, False, error)
                except Exception:
                    reply(request_id, False, RuntimeError(repr(error)))
    finally:
        for service in services.values():
            try:
                service.close()
            except Exception:
                pass
        conn.close()


class WorkerHandle:
    """The parent-side endpoint of one worker process.

    Owns the process, the pipe, the in-flight future table, and a
    reader thread that resolves futures as replies arrive.  A dead
    worker (EOF on the pipe, or the process exiting) fails every
    pending future with :class:`WorkerCrashedError`; the pool replaces
    the handle before dispatching new work.
    """

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self._conn = conn
        self._pending: dict[int, Future] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._alive = True
        self._reader: threading.Thread | None = None

    def start_reader(self) -> None:
        """Start the reply-reader thread (after every fork happened).

        Split from construction so a pool creating several fork-start
        workers can start **all** processes before any parent thread
        exists — forking a threaded parent is the deadlock hazard
        :func:`~repro.index.parallel.pool_context` exists to avoid.
        """
        self._reader = threading.Thread(
            target=self._read_replies,
            name=f"serve-worker-{self.worker_id}-reader",
            daemon=True,
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        """Whether the worker can still accept work."""
        return self._alive and self.process.is_alive()

    @property
    def inflight(self) -> int:
        """Requests dispatched to this worker and not yet answered."""
        with self._lock:
            return len(self._pending)

    def submit(self, op: str, payload: object) -> Future:
        """Send one op to the worker; the future resolves on its reply."""
        future: Future = Future()
        future.set_running_or_notify_cancel()
        with self._lock:
            if not self._alive:
                future.set_exception(
                    WorkerCrashedError(
                        f"worker {self.worker_id} (pid "
                        f"{self.process.pid}) is dead"
                    )
                )
                return future
            request_id = next(self._ids)
            self._pending[request_id] = future
            try:
                self._conn.send((request_id, op, payload))
            except (BrokenPipeError, OSError):
                del self._pending[request_id]
                self._fail_pending_locked()
                future.set_exception(
                    WorkerCrashedError(
                        f"worker {self.worker_id} (pid "
                        f"{self.process.pid}) died mid-send"
                    )
                )
        return future

    def _read_replies(self) -> None:
        while True:
            try:
                request_id, ok, payload, spans = self._conn.recv()
            except (EOFError, OSError):
                break
            if spans:
                # Splice worker-side spans into the parent's tracer
                # BEFORE resolving the future: the HTTP handler closes
                # the root span right after the future resolves, and
                # the whole tree must be buffered by then.
                get_tracer().ingest(spans)
            with self._lock:
                future = self._pending.pop(request_id, None)
            if future is None:
                continue  # already failed by a crash marker
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(payload)
        with self._lock:
            self._fail_pending_locked()

    def _fail_pending_locked(self) -> None:
        """Fail every in-flight future; caller holds ``self._lock``."""
        self._alive = False
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            future.set_exception(
                WorkerCrashedError(
                    f"worker {self.worker_id} (pid {self.process.pid}) "
                    "died with this request in flight"
                )
            )

    def shutdown(self, timeout: float = 5.0) -> None:
        """Ask the worker to drain and exit; escalate to kill on stall."""
        if self.alive:
            try:
                self.submit("shutdown", None).result(timeout)
            except Exception:
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
        with self._lock:
            self._fail_pending_locked()
        try:
            self._conn.close()
        except OSError:
            pass


class ServeWorkerPool:
    """N worker processes, each running the full per-route service stack.

    Args:
        factories: ``route name -> pipeline factory``.  Factories must
            be picklable (module-level callables or
            :func:`functools.partial` over picklable parts) and
            deterministic — they are what spawn-start and respawned
            workers rebuild from.
        n_workers: Worker process count (>= 1).
        prebuilt: The parent's already-built pipelines, keyed like
            ``factories``.  Under the ``fork`` start method these ride
            into workers copy-on-write, skipping the rebuild; ignored
            otherwise.
        service_kwargs: Keyword arguments for each worker's
            :class:`~repro.serve.service.TransformService` instances
            (``max_wait_ms``, ``max_queue``, cache settings, ...).

    Dispatch is least-inflight among live workers; dead workers are
    respawned before new work is placed.  ``close()`` drains and stops
    every worker; the pool is unusable afterwards.
    """

    def __init__(
        self,
        factories: Mapping[str, PipelineFactory],
        n_workers: int,
        prebuilt: Mapping[str, DTTPipeline] | None = None,
        service_kwargs: dict | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not factories:
            raise ValueError("ServeWorkerPool requires at least one route")
        self.factories = dict(factories)
        self.n_workers = n_workers
        self.service_kwargs = dict(service_kwargs or {})
        self._lock = threading.Lock()
        self._closed = False
        self.restarts = 0
        self._ids = itertools.count()
        context = pool_context()
        self._fork_started = context.get_start_method() == "fork"
        inherited = dict(prebuilt) if self._fork_started and prebuilt else None
        # Start every process before any reader thread exists: the
        # fork-safety decision above assumed a single-threaded parent.
        handles = [
            self._spawn(context, inherited) for _ in range(n_workers)
        ]
        for handle in handles:
            handle.start_reader()
        self._handles: list[WorkerHandle] = handles

    def _spawn(
        self,
        context,
        pipelines: dict[str, DTTPipeline] | None,
    ) -> WorkerHandle:
        """Start one worker process (reader not yet running)."""
        parent_conn, child_conn = context.Pipe(duplex=True)
        worker_id = next(self._ids)
        process = context.Process(
            target=_worker_main,
            args=(child_conn, pipelines, self.factories, self.service_kwargs),
            name=f"serve-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker holds its own end now
        return WorkerHandle(worker_id, process, parent_conn)

    def _respawn_locked(self, slot: int) -> WorkerHandle:
        """Replace a dead worker; caller holds ``self._lock``.

        Respawn always takes the spawn-safe path (the parent has reader
        threads by now, so ``fork`` is off the table) and rebuilds from
        the factories — another reason factories must be deterministic.
        """
        dead = self._handles[slot]
        try:
            dead.shutdown(timeout=0.5)
        except Exception:
            pass
        context = pool_context()
        handle = self._spawn(context, None)
        handle.start_reader()
        self._handles[slot] = handle
        self.restarts += 1
        return handle

    @property
    def workers(self) -> list[WorkerHandle]:
        """The live handle list (snapshot; slots may respawn)."""
        with self._lock:
            return list(self._handles)

    def submit(self, op: str, payload: object) -> Future:
        """Dispatch one request to the least-loaded live worker."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is shut down")
            for slot, handle in enumerate(self._handles):
                if not handle.alive:
                    self._respawn_locked(slot)
            handle = min(self._handles, key=lambda h: h.inflight)
        return handle.submit(op, payload)

    def broadcast(self, op: str, timeout: float = 10.0) -> dict[int, object]:
        """Send a control op to every live worker; skip the unresponsive.

        Returns ``worker_id -> reply`` for the workers that answered
        within ``timeout``; a crashed or stalled worker is simply
        absent (callers report coverage, the pool's dispatch path
        handles respawning).
        """
        with self._lock:
            if self._closed:
                return {}
            handles = [h for h in self._handles if h.alive]
        futures = [(h.worker_id, h.submit(op, None)) for h in handles]
        replies: dict[int, object] = {}
        for worker_id, future in futures:
            try:
                replies[worker_id] = future.result(timeout)
            except Exception:
                continue
        return replies

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed pool rejects work."""
        return self._closed

    def close(self) -> None:
        """Drain and stop every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            handle.shutdown()

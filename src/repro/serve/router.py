"""Multi-pipeline routing over in-process services or a worker pool.

:class:`ServiceRouter` is the piece between the HTTP layer and
execution: it owns a set of named **routes** — one
:class:`~repro.core.pipeline.DTTPipeline` fingerprint each — and
resolves every request's ``model`` selector (route name, full
fingerprint, or unambiguous fingerprint prefix) to the service that
runs it.  Execution lives in one of two places:

* ``n_workers == 0`` — one in-process
  :class:`~repro.serve.service.TransformService` per route, exactly the
  pre-PR-9 serving stack (this is what wrapping a bare service with
  :meth:`ServiceRouter.from_service` gives you);
* ``n_workers >= 1`` — a :class:`~repro.serve.workers.ServeWorkerPool`
  whose worker processes each host every route's full service stack;
  the router dispatches whole requests to the least-loaded live worker
  and keeps **parent-side per-route caches** (whole-request transform
  and join memoization) so repeated requests hit without crossing a
  pipe — and regardless of which worker happened to serve them first.

Byte-equivalence is preserved through every tier: per-route pipelines
are content-identical across workers (same factory or the same forked
memory), each request runs inside exactly one byte-equivalent
``TransformService``, and both parent cache tiers key on everything the
result depends on (see :mod:`repro.serve.cache`), so routing and
process placement can change latency, never answers.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.pipeline import DTTPipeline
from repro.exceptions import JoinError, UnknownModelError
from repro.obs.metrics import merge_labeled_snapshots
from repro.obs.trace import current_context
from repro.serve.cache import (
    JoinResultCache,
    ResultCache,
    examples_fingerprint,
    join_cache_key,
)
from repro.serve.service import TransformService
from repro.serve.workers import (
    PipelineFactory,
    ServeWorkerPool,
    build_service,
)
from repro.types import ExamplePair, Prediction

#: Minimum ``model`` selector length for fingerprint-prefix matching;
#: shorter selectors only match route names exactly.
MIN_FINGERPRINT_PREFIX = 8


def build_pipeline(
    model: str = "pretrained",
    context_size: int = 2,
    n_trials: int = 5,
    seed: int = 0,
) -> DTTPipeline:
    """Build one of the standard serving pipelines, deterministically.

    This is the module-level factory behind ``python -m repro.serve``
    routes (``functools.partial`` over it pickles, so spawn-started and
    respawned workers can rebuild the exact pipeline): ``model`` is
    ``"pretrained"`` (the deterministic DTT stand-in) or ``"ensemble"``
    (adds the GPT-3 surrogate).  Every call with equal arguments builds
    a pipeline with the same fingerprint, in any process.
    """
    from repro.surrogate import GPT3Surrogate, PretrainedDTT

    if model == "ensemble":
        models: object = [PretrainedDTT(seed=seed), GPT3Surrogate(seed=seed)]
    elif model == "pretrained":
        models = PretrainedDTT(seed=seed)
    else:
        raise ValueError(
            f"model must be 'pretrained' or 'ensemble', got {model!r}"
        )
    return DTTPipeline(
        models,
        context_size=context_size,
        n_trials=n_trials,
        seed=seed,
    )


@dataclass(frozen=True)
class RouteSpec:
    """One named model route: a display name plus a pipeline factory.

    Attributes:
        name: Route name clients select with ``model=<name>`` (also the
            default selector namespace — names must be unique and are
            matched before fingerprints).
        factory: Zero-argument, picklable, deterministic pipeline
            constructor (see
            :data:`~repro.serve.workers.PipelineFactory`).
        cache_kwargs: Keyword arguments for this route's parent-side
            caches (``max_entries`` / ``max_bytes`` / ``ttl_seconds``),
            applied to both the transform and the join tier.
    """

    name: str
    factory: PipelineFactory
    cache_kwargs: dict = field(default_factory=dict)


class _Route:
    """Parent-side state of one route."""

    __slots__ = (
        "spec",
        "fingerprint",
        "service",
        "transform_cache",
        "join_cache",
    )

    def __init__(
        self,
        spec: RouteSpec,
        fingerprint: str,
        service: TransformService | None,
    ) -> None:
        self.spec = spec
        self.fingerprint = fingerprint
        #: The in-process service (``n_workers == 0`` mode only).
        self.service = service
        self.transform_cache = ResultCache(**spec.cache_kwargs)
        self.join_cache = JoinResultCache(**spec.cache_kwargs)


class ServiceRouter:
    """Route ``model`` selectors to per-route serving backends.

    Args:
        routes: The route specs, in priority order — the first is the
            default route (used when a request names no model).
        n_workers: ``0`` runs every route in-process; ``>= 1`` starts
            that many worker processes, each hosting all routes.
        service_kwargs: Keyword arguments for every
            :class:`TransformService` built (in-process or in-worker):
            ``max_wait_ms``, ``max_queue``, cache settings, ...
    """

    def __init__(
        self,
        routes: Sequence[RouteSpec],
        n_workers: int = 0,
        service_kwargs: dict | None = None,
    ) -> None:
        if not routes:
            raise ValueError("ServiceRouter requires at least one route")
        names = [spec.name for spec in routes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate route names: {names}")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        self.n_workers = n_workers
        service_kwargs = dict(service_kwargs or {})
        # Pipelines are built in the parent either way: they are the
        # fingerprint source for routing, and under the fork start
        # method the worker pool inherits them copy-on-write.
        pipelines = {spec.name: spec.factory() for spec in routes}
        self._pool: ServeWorkerPool | None = None
        if n_workers == 0:
            self._routes = {
                spec.name: _Route(
                    spec,
                    pipelines[spec.name].fingerprint(),
                    build_service(pipelines[spec.name], service_kwargs),
                )
                for spec in routes
            }
        else:
            self._routes = {
                spec.name: _Route(
                    spec, pipelines[spec.name].fingerprint(), None
                )
                for spec in routes
            }
            self._pool = ServeWorkerPool(
                {spec.name: spec.factory for spec in routes},
                n_workers,
                prebuilt=pipelines,
                service_kwargs=service_kwargs,
            )
            # The parent-built pipelines only routed fingerprints (and
            # seeded fork COW); release whatever their joiners hold.
            for pipeline in pipelines.values():
                pipeline.joiner.close()
        self.default_route = routes[0].name
        self._closed = False
        self._lock = threading.Lock()

    @classmethod
    def from_service(
        cls, service: TransformService, name: str = "default"
    ) -> ServiceRouter:
        """Wrap one already-running in-process service as a router.

        The compatibility path for callers (and tests) that build a
        :class:`TransformService` directly and hand it to the HTTP
        layer: the router adopts the service as its single route — no
        new processes, no second cache tier — and ``close()`` closes
        it.
        """
        router = cls.__new__(cls)
        router.n_workers = 0
        router._pool = None
        spec = RouteSpec(name=name, factory=lambda: service.pipeline)
        router._routes = {
            name: _Route(spec, service.model_fingerprint, service)
        }
        router.default_route = name
        router._closed = False
        router._lock = threading.Lock()
        return router

    # -- routing -----------------------------------------------------------

    def resolve(self, model: str | None) -> str:
        """Resolve a ``model`` selector to a route name.

        ``None`` selects the default route.  Otherwise the selector
        must be an exact route name, an exact pipeline fingerprint, or
        a fingerprint prefix of at least
        :data:`MIN_FINGERPRINT_PREFIX` characters matching exactly one
        route; anything else raises :class:`UnknownModelError`.
        """
        if model is None:
            return self.default_route
        if model in self._routes:
            return model
        matches = [
            name
            for name, route in self._routes.items()
            if route.fingerprint == model
            or (
                len(model) >= MIN_FINGERPRINT_PREFIX
                and route.fingerprint.startswith(model)
            )
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise UnknownModelError(
                f"model selector {model!r} is ambiguous: matches "
                f"{sorted(matches)}"
            )
        raise UnknownModelError(
            f"unknown model {model!r}; GET /v1/models lists the "
            f"{len(self._routes)} route(s) this service fronts"
        )

    def models(self) -> list[dict]:
        """The ``GET /v1/models`` listing: every route, default first."""
        ordered = [self.default_route] + sorted(
            name for name in self._routes if name != self.default_route
        )
        return [
            {
                "name": name,
                "fingerprint": self._routes[name].fingerprint,
                "default": name == self.default_route,
            }
            for name in ordered
        ]

    # -- execution ---------------------------------------------------------

    def transform(
        self,
        sources: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
        model: str | None = None,
    ) -> list[Prediction]:
        """Run a transform on the selected route (blocking)."""
        route = self._routes[self.resolve(model)]
        if route.service is not None:
            return route.service.transform(sources, examples, timeout)
        assert self._pool is not None
        key = (
            "transform",
            route.fingerprint,
            examples_fingerprint(examples),
            tuple(sources),
        )
        cached = route.transform_cache.get(key)
        if cached is not None:
            return list(cached)
        result = self._pool.submit(
            "transform",
            (
                route.spec.name,
                tuple(sources),
                tuple(examples),
                timeout,
                current_context(),
            ),
        ).result()
        route.transform_cache.put(key, result)
        return result

    def join(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
        *,
        mode: str = "argmin",
        k: int = 1,
        margin: float | None = None,
        model: str | None = None,
    ) -> list:
        """Run a join on the selected route (blocking).

        Result shape per ``mode`` matches
        :meth:`TransformService.submit_join`.
        """
        route = self._routes[self.resolve(model)]
        if route.service is not None:
            return route.service.join(
                sources,
                targets,
                examples,
                timeout,
                mode=mode,
                k=k,
                margin=margin,
            )
        assert self._pool is not None
        if not targets:
            # Validated before the pipe crossing so the error carries
            # no worker plumbing in its traceback.
            raise JoinError("cannot join into an empty target column")
        key = join_cache_key(
            route.fingerprint,
            examples_fingerprint(examples),
            tuple(sources),
            tuple(targets),
            mode,
            k,
            margin,
        )
        cached = route.join_cache.get(key)
        if cached is not None:
            if mode == "reverse":
                return [list(group) for group in cached]
            return list(cached)
        result = self._pool.submit(
            "join",
            (
                route.spec.name,
                tuple(sources),
                tuple(targets),
                tuple(examples),
                timeout,
                mode,
                k,
                margin,
                current_context(),
            ),
        ).result()
        if mode == "reverse":
            route.join_cache.put(key, (tuple(group) for group in result))
        else:
            route.join_cache.put(key, result)
        return result

    # -- observability -----------------------------------------------------

    def _router_cache_stats(self) -> dict:
        """Parent-side cache counters per route (worker-pool mode)."""
        return {
            name: {
                "transform": {
                    "hits": route.transform_cache.hits,
                    "misses": route.transform_cache.misses,
                    "entries": len(route.transform_cache),
                },
                "join": {
                    "hits": route.join_cache.hits,
                    "misses": route.join_cache.misses,
                    "entries": len(route.join_cache),
                },
            }
            for name, route in self._routes.items()
        }

    def stats(self) -> dict:
        """The ``GET /v1/stats`` body.

        Keeps the pre-PR-9 shape — the default route's
        :class:`~repro.serve.service.ServeStats` fields at the top
        level plus ``"join"`` and ``"metrics"`` blocks — and adds a
        ``"routes"`` block (per-route stats keyed by name, with
        fingerprints) and a ``"workers"`` block (worker count, live
        pids, respawn count; present in both modes, with
        ``n_workers: 0`` in-process).  In worker-pool mode, per-route
        counters are **sums across workers** and the top level adds
        ``router_caches``, the parent-side memoization counters.
        """
        if self._pool is None:
            routes_block = {
                name: {
                    "fingerprint": route.fingerprint,
                    "stats": route.service.stats().as_dict(),
                    "join": route.service.join_stats_snapshot(),
                }
                for name, route in self._routes.items()
            }
            default = routes_block[self.default_route]
            return {
                **default["stats"],
                "join": default["join"],
                "metrics": self._routes[
                    self.default_route
                ].service.metrics_snapshot(),
                "routes": routes_block,
                "workers": {"n_workers": 0, "restarts": 0, "pids": []},
            }
        replies = self._pool.broadcast("stats")
        routes_block = {
            name: {
                "fingerprint": route.fingerprint,
                "stats": {},
                "join": {"last_join": None, "kernel_pairs_total": {}},
            }
            for name, route in self._routes.items()
        }
        for reply in replies.values():
            for name, per_route in reply["routes"].items():
                block = routes_block[name]
                stats = block["stats"]
                for field_name, value in per_route["stats"].items():
                    stats[field_name] = stats.get(field_name, 0) + value
                pairs = block["join"]["kernel_pairs_total"]
                for backend, count in per_route["join"][
                    "kernel_pairs_total"
                ].items():
                    pairs[backend] = pairs.get(backend, 0) + count
                if per_route["join"]["last_join"] is not None:
                    block["join"]["last_join"] = per_route["join"][
                        "last_join"
                    ]
        workers = self._pool.workers
        return {
            **routes_block[self.default_route]["stats"],
            "join": routes_block[self.default_route]["join"],
            "metrics": {},
            "routes": routes_block,
            "router_caches": self._router_cache_stats(),
            "workers": {
                "n_workers": self._pool.n_workers,
                "restarts": self._pool.restarts,
                "responding": len(replies),
                "pids": sorted(
                    handle.process.pid
                    for handle in workers
                    if handle.alive and handle.process.pid is not None
                ),
            },
        }

    def readiness(self) -> dict:
        """The ``GET /readyz`` body: can this router serve traffic now?

        ``ready`` requires the router to be open, every route's
        fingerprint to resolve, and (in pool mode) every worker slot to
        hold a live process.  The body also reports the worker topology
        — count, live workers, respawns so far — so an orchestrator's
        readiness probe doubles as a restart-loop detector.
        """
        routes_ok = all(
            self.resolve(name) == name for name in self._routes
        )
        if self._pool is not None:
            workers = self._pool.workers
            alive = sum(1 for handle in workers if handle.alive)
            workers_block = {
                "n_workers": self._pool.n_workers,
                "alive": alive,
                "restarts": self._pool.restarts,
            }
            ready = (
                not self.closed
                and routes_ok
                and alive == self._pool.n_workers
            )
        else:
            workers_block = {"n_workers": 0, "alive": 0, "restarts": 0}
            ready = not self.closed and routes_ok
        return {
            "ready": ready,
            "routes": sorted(self._routes),
            "workers": workers_block,
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` exposition across every route and worker.

        In-process single-route mode delegates to the service's own
        registry (byte-compatible with the pre-router scrape).  Every
        other topology renders **labeled** series — one ``# TYPE``
        block per metric, one sample per ``{route=...}`` (plus
        ``{worker=...}`` in pool mode) — via
        :func:`~repro.obs.metrics.merge_labeled_snapshots`.
        """
        if self._pool is None:
            if len(self._routes) == 1:
                only = next(iter(self._routes.values()))
                return only.service.metrics_text()
            labeled = [
                ({"route": name}, route.service.metrics_snapshot())
                for name, route in self._routes.items()
            ]
            return merge_labeled_snapshots(labeled)
        replies = self._pool.broadcast("metrics")
        labeled = [
            ({"worker": str(worker_id), "route": route_name}, snapshot)
            for worker_id, per_route in sorted(replies.items())
            for route_name, snapshot in sorted(per_route.items())
        ]
        return merge_labeled_snapshots(labeled)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the router (and everything behind it) is shut down."""
        if self._pool is not None:
            return self._pool.closed
        return all(
            route.service.closed for route in self._routes.values()
        )

    def close(self) -> None:
        """Shut down every backend (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self._pool.close()
        else:
            for route in self._routes.values():
                route.service.close()

"""The long-lived transform-join service with cross-request micro-batching.

:class:`TransformService` turns the one-shot :class:`~repro.core.pipeline.
DTTPipeline` into a serving subsystem: concurrent callers submit
``transform`` / ``join`` requests, and a scheduler thread coalesces
every request that arrives within a ``max_wait_ms`` window (or up to
``max_batch_rows`` source rows) into **one** execution — a single
scheduled :meth:`~repro.infer.engine.GenerationEngine.run_with_stats`
pass over all requests' prompts, and a single joiner call per distinct
``(target column, mode, k, margin)`` group — joins support the full
redesigned query surface (``argmin`` / ``topk`` / ``reverse``, see
:meth:`TransformService.submit_join`).  Under load, p50 latency stays
near the single-request cost while throughput scales with concurrency,
because the engine's
micro-batches vectorize across requests and the join amortizes its
index work across every probe of the batch.

**Byte-equivalence.**  Service results are byte-identical to calling
the pipeline directly, whatever the interleaving:

* The per-request stages (context decomposition, serialization,
  aggregation) run exactly as ``transform_column`` runs them — context
  sampling is keyed on the row position, never on what else shares the
  batch.
* Incremental models (the KV-cached transformer) decode each unique
  prompt as a pure function of the prompt in greedy mode, so their
  prompts are pooled across requests into one engine job.
* Occurrence-dependent models (the surrogates draw fresh corruption
  samples for repeated prompts *within one call*) get one engine job
  per request, preserving their per-call semantics exactly.

The same determinism is what makes the **result cache** sound: when
every model is incremental, results memoize per ``(pipeline
fingerprint, example-pool fingerprint, row position, value)``; with an
occurrence-dependent model in the ensemble, rows of one request are not
independent, so memoization coarsens to whole-request keys.  Either
way a hit returns exactly what recomputation would.

Request lifecycle: every submit returns a
:class:`concurrent.futures.Future` (cancellable until its batch
starts), carries an optional deadline (expired requests fail with
:class:`~repro.exceptions.DeadlineExceededError` instead of wasting a
batch slot), and passes through a bounded queue —
:class:`~repro.exceptions.ServiceOverloadedError` is backpressure, not
a crash.  :meth:`TransformService.close` drains everything already
queued, then stops the scheduler and tears down the join engine's
persistent worker pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Literal

from repro.core.interface import IncrementalSequenceModel
from repro.core.join_config import JOIN_MODES, KERNEL_BACKENDS
from repro.core.joiner import invert_matches
from repro.core.pipeline import DTTPipeline
from repro.core.serializer import SubTask
from repro.exceptions import (
    DeadlineExceededError,
    JoinError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.infer.engine import EngineStats, GenerationEngine
from repro.obs.metrics import (
    DEFAULT_OCCUPANCY_BUCKETS,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    current_context,
    get_tracer,
)
from repro.serve.cache import (
    JoinResultCache,
    ResultCache,
    examples_fingerprint,
    join_cache_key,
)
from repro.types import ExamplePair, Prediction


@dataclass(frozen=True)
class ServeStats:
    """A snapshot of the service's counters (see :meth:`TransformService.stats`).

    Attributes:
        requests: Requests accepted (rejected submits excluded).
        transform_requests: Accepted ``transform`` requests.
        join_requests: Accepted ``join`` requests.
        rows: Source rows across accepted requests.
        joined_rows: Probe rows joined into target columns.
        batches: Micro-batches executed.
        batched_requests: Requests that reached execution (so
            ``batched_requests / batches`` is the realized coalescing
            factor).
        rejected: Submits refused with ``ServiceOverloadedError``.
        cancelled: Requests cancelled before their batch started.
        deadline_expired: Requests whose deadline passed before
            execution.
        failed: Requests failed by an execution error.
        cache_hits: Result-cache hits (rows or whole requests,
            depending on the caching granularity).
        cache_misses: Result-cache misses.
        cache_evictions: Result-cache LRU/byte-bound evictions.
        cache_expirations: Result-cache TTL expirations.
        cache_entries: Entries currently cached.
        cache_bytes: Approximate bytes currently cached.
        join_cache_hits: Join-result cache hits (whole join requests
            served without touching the engine or the joiner).
        join_cache_misses: Join-result cache misses.
        join_cache_entries: Join results currently cached.
        engine_prompts: Prompts handed to the generation engine.
        engine_decoded_rows: Unique rows the engine actually decoded.
        engine_chunks: Decode micro-batches the engine scheduled.
        engine_steps: Decode steps across all micro-batches.
        engine_row_steps: Per-row decode operations actually paid
            (compaction makes this less than rows x steps).
    """

    requests: int = 0
    transform_requests: int = 0
    join_requests: int = 0
    rows: int = 0
    joined_rows: int = 0
    batches: int = 0
    batched_requests: int = 0
    rejected: int = 0
    cancelled: int = 0
    deadline_expired: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_expirations: int = 0
    cache_entries: int = 0
    cache_bytes: int = 0
    join_cache_hits: int = 0
    join_cache_misses: int = 0
    join_cache_entries: int = 0
    engine_prompts: int = 0
    engine_decoded_rows: int = 0
    engine_chunks: int = 0
    engine_steps: int = 0
    engine_row_steps: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly dict form."""
        return asdict(self)


@dataclass
class _Counters:
    """The mutable counters behind :class:`ServeStats`."""

    requests: int = 0
    transform_requests: int = 0
    join_requests: int = 0
    rows: int = 0
    joined_rows: int = 0
    batches: int = 0
    batched_requests: int = 0
    rejected: int = 0
    cancelled: int = 0
    deadline_expired: int = 0
    failed: int = 0
    engine_prompts: int = 0
    engine_decoded_rows: int = 0
    engine_chunks: int = 0
    engine_steps: int = 0
    engine_row_steps: int = 0


class _Request:
    """One queued request and its delivery future."""

    __slots__ = (
        "kind",
        "sources",
        "examples",
        "targets",
        "mode",
        "k",
        "margin",
        "future",
        "deadline",
        "submitted_at",
        "trace_ctx",
        "span",
    )

    def __init__(
        self,
        kind: Literal["transform", "join"],
        sources: tuple[str, ...],
        examples: tuple[ExamplePair, ...],
        targets: tuple[str, ...] | None,
        deadline: float | None,
        submitted_at: float = 0.0,
        mode: str = "argmin",
        k: int = 1,
        margin: float | None = None,
        trace_ctx: SpanContext | None = None,
    ) -> None:
        self.kind = kind
        self.sources = sources
        self.examples = examples
        self.targets = targets
        self.mode = mode
        self.k = k
        self.margin = margin
        self.future: Future = Future()
        self.deadline = deadline
        self.submitted_at = submitted_at
        #: Sampled trace context captured at submit time (``None`` when
        #: tracing is off — every span call then short-circuits).
        self.trace_ctx = trace_ctx
        #: The live ``serve.batch_execute`` span while this request is
        #: executing; finished right before its future resolves so
        #: cross-process span fan-in never races the reply.
        self.span: Span | None = None


class _Plan:
    """Per-request execution state inside one micro-batch."""

    __slots__ = (
        "request",
        "predictions",
        "subtasks",
        "prompts",
        "cache_keys",
        "join_key",
    )

    def __init__(self, request: _Request) -> None:
        self.request = request
        #: Per-row predictions; cache hits pre-filled, the rest ``None``.
        self.predictions: list[Prediction | None] = [None] * len(
            request.sources
        )
        self.subtasks: list[SubTask] = []
        self.prompts: list[str] = []
        #: Row-granular cache keys (row-cacheable pipelines only).
        self.cache_keys: list[tuple] | None = None
        #: Whole-request join-cache key (join requests only).
        self.join_key: tuple | None = None


class TransformService:
    """Thread-safe serving front of one :class:`DTTPipeline`.

    Args:
        pipeline: The pipeline to serve.  The service owns it: nothing
            else may call it while the service is live (all execution
            is serialized on the scheduler thread).  Its engine — and
            any model-owned engine — must be greedy: coalescing and
            memoization both rely on deterministic decoding.
        max_wait_ms: How long the scheduler holds the first request of
            a batch open for more arrivals.  ``0`` still coalesces
            whatever is already queued.
        max_batch_rows: Source-row cap per micro-batch.
        max_queue: Pending-request bound; submits beyond it fail fast
            with :class:`ServiceOverloadedError`.
        default_timeout: Default per-request deadline in seconds
            (``None`` = no deadline unless the caller passes one).
        result_cache: The memoized result cache; ``None`` builds a
            default :class:`ResultCache`.  Pass a cache with
            ``ttl_seconds`` to bound staleness.
        join_cache: The join-result cache tier; ``None`` builds a
            default :class:`JoinResultCache`.  Join requests memoize
            end-to-end (transform *and* Eq. 5 resolution) at
            whole-request granularity, keyed by
            :func:`~repro.serve.cache.join_cache_key`.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        pipeline: DTTPipeline,
        max_wait_ms: float = 2.0,
        max_batch_rows: int = 256,
        max_queue: int = 256,
        default_timeout: float | None = None,
        result_cache: ResultCache | None = None,
        join_cache: JoinResultCache | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._require_greedy(pipeline)
        self.pipeline = pipeline
        self.max_wait_ms = max_wait_ms
        self.max_batch_rows = max_batch_rows
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        # Explicit None check: an empty ResultCache is len() == 0 and
        # therefore falsy, so ``or`` would silently discard it.
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        self.join_cache = (
            join_cache if join_cache is not None else JoinResultCache()
        )
        self._clock = clock
        #: Snapshot of the pipeline's content fingerprint; models must
        #: not be retrained while the service is live (build a new
        #: service after training — the fingerprint covers weights).
        self.model_fingerprint = pipeline.fingerprint()
        #: Row-granular memoization is exact only when every model's
        #: outputs are a pure per-prompt function; the surrogates draw
        #: occurrence-indexed samples within a call, so their presence
        #: coarsens caching to whole-request keys.
        self.row_cacheable = all(
            isinstance(model, IncrementalSequenceModel)
            for model in pipeline.models
        )
        self.last_engine_stats = EngineStats()
        self.last_join_stats = None
        #: Cumulative candidate pairs scored per kernel backend across
        #: every join this service has executed (scheduler thread only).
        self._join_kernel_pairs: dict[str, int] = {}
        #: Cumulative JoinStats counters across every executed join —
        #: the source behind the unprefixed ``join_*`` metric series.
        self._join_totals: dict[str, int] = {
            "calls": 0,
            "probes": 0,
            "unique_probes": 0,
            "exact_matches": 0,
            "empty_probes": 0,
            "pending": 0,
        }
        self._counters = _Counters()
        self._queue: deque[_Request] = deque()
        self.metrics = self._build_metrics()
        self._cond = threading.Condition()
        self._closing = False
        self._thread = threading.Thread(
            target=self._run, name="transform-service", daemon=True
        )
        self._thread.start()

    def _build_metrics(self) -> MetricsRegistry:
        """The service's export registry (see :mod:`repro.obs.metrics`).

        Histograms are observed on the scheduler thread; gauges and
        counters read live state through callbacks, so exporting never
        duplicates the bookkeeping behind :meth:`stats` and costs
        nothing until something scrapes.
        """
        registry = MetricsRegistry(prefix="serve_")
        self._queue_wait = registry.histogram(
            "queue_wait_seconds",
            "submit-to-batch-start wait per executed request",
        )
        self._request_latency = registry.histogram(
            "request_latency_seconds",
            "submit-to-completion latency per executed request",
        )
        self._batch_execute = registry.histogram(
            "batch_execute_seconds",
            "wall time of each coalesced micro-batch execution",
        )
        self._batch_requests = registry.histogram(
            "batch_occupancy_requests",
            "requests coalesced into each micro-batch",
            buckets=DEFAULT_OCCUPANCY_BUCKETS,
        )
        self._batch_rows = registry.histogram(
            "batch_occupancy_rows",
            "source rows coalesced into each micro-batch",
            buckets=DEFAULT_OCCUPANCY_BUCKETS,
        )
        registry.gauge(
            "queue_depth",
            "requests waiting for a batch slot right now",
            fn=lambda: len(self._queue),
        )
        registry.gauge(
            "cache_entries",
            "result-cache entries currently held",
            fn=lambda: len(self.result_cache),
        )
        registry.gauge(
            "cache_bytes",
            "approximate bytes held by the result cache",
            fn=lambda: self.result_cache.total_bytes,
        )
        for name in (
            "hits",
            "misses",
            "evictions",
            "expirations",
        ):
            registry.counter(
                f"cache_{name}_total",
                f"result-cache {name}",
                fn=lambda n=name: getattr(self.result_cache, n),
            )
            registry.counter(
                f"join_cache_{name}_total",
                f"join-result-cache {name}",
                fn=lambda n=name: getattr(self.join_cache, n),
            )
        registry.gauge(
            "join_cache_entries",
            "join-result-cache entries currently held",
            fn=lambda: len(self.join_cache),
        )
        for field in (
            "requests",
            "transform_requests",
            "join_requests",
            "rows",
            "joined_rows",
            "batches",
            "batched_requests",
            "rejected",
            "cancelled",
            "deadline_expired",
            "failed",
            "engine_prompts",
            "engine_decoded_rows",
            "engine_chunks",
            "engine_steps",
            "engine_row_steps",
        ):
            registry.counter(
                f"{field}_total",
                f"see ServeStats.{field}",
                fn=lambda f=field: getattr(self._counters, f),
            )
        for backend in KERNEL_BACKENDS:
            if backend == "auto":
                continue
            registry.counter(
                f"join_kernel_pairs_{backend}_total",
                f"candidate pairs scored by the {backend} "
                "edit-distance kernel across all joins",
                fn=lambda b=backend: self._join_kernel_pairs.get(b, 0),
            )
        # Unprefixed engine_* / join_* series (ROADMAP item 5): the
        # EngineStats and JoinStats counters under their own metric
        # namespaces, merged with the same per-worker/per-route labels
        # as the serve_* series by the router's scrape endpoint.
        for field in (
            "prompts",
            "decoded_rows",
            "chunks",
            "steps",
            "row_steps",
        ):
            registry.counter(
                f"engine_{field}_total",
                f"see EngineStats.{field} (cumulative across batches)",
                fn=lambda f=f"engine_{field}": getattr(self._counters, f),
                prefix="",
            )
        for field in (
            "calls",
            "probes",
            "unique_probes",
            "exact_matches",
            "empty_probes",
            "pending",
        ):
            registry.counter(
                f"join_{field}_total",
                f"see JoinStats.{field} (cumulative across joins)",
                fn=lambda f=field: self._join_totals[f],
                prefix="",
            )
        for backend in KERNEL_BACKENDS:
            if backend == "auto":
                continue
            registry.counter(
                f"join_kernel_pairs_{backend}_total",
                f"candidate pairs scored by the {backend} "
                "edit-distance kernel across all joins",
                fn=lambda b=backend: self._join_kernel_pairs.get(b, 0),
                prefix="",
            )
        return registry

    @staticmethod
    def _require_greedy(pipeline: DTTPipeline) -> None:
        engines = [pipeline.engine] + [
            engine
            for engine in (
                getattr(model, "engine", None) for model in pipeline.models
            )
            if isinstance(engine, GenerationEngine)
        ]
        for engine in engines:
            if engine.mode != "greedy":
                raise ValueError(
                    "TransformService requires greedy decoding: sampling "
                    "outputs depend on batch composition, so coalescing "
                    "and memoization would change results"
                )

    # -- submission --------------------------------------------------------

    def submit_transform(
        self,
        sources: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
    ) -> Future:
        """Enqueue a transform; the future resolves to ``list[Prediction]``."""
        return self._submit("transform", sources, examples, None, timeout)

    def submit_join(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
        *,
        mode: str = "argmin",
        k: int = 1,
        margin: float | None = None,
    ) -> Future:
        """Enqueue a join; the future's type depends on ``mode``.

        ``"argmin"`` resolves to ``list[JoinResult]`` (the classic
        Eq. 5 join), ``"topk"`` to ``list[TopKJoinResult]`` with up to
        ``k`` ranked candidates per row and optional ``margin``
        abstention, ``"reverse"`` to ``list[list[int]]`` — one group of
        source-row indices per target row.  Requests sharing
        ``(targets, mode, k, margin)`` within a micro-batch coalesce
        into one joiner call.
        """
        if not targets:
            raise JoinError("cannot join into an empty target column")
        if mode not in JOIN_MODES:
            raise JoinError(f"mode must be one of {JOIN_MODES}, got {mode!r}")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise JoinError(f"k must be an int >= 1, got {k!r}")
        if margin is not None and margin < 0:
            raise JoinError(f"margin must be >= 0, got {margin}")
        return self._submit(
            "join",
            sources,
            examples,
            tuple(targets),
            timeout,
            mode=mode,
            k=k,
            margin=margin,
        )

    def transform(
        self,
        sources: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
    ) -> list[Prediction]:
        """Blocking :meth:`submit_transform`."""
        return self.submit_transform(sources, examples, timeout).result()

    def join(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
        timeout: float | None = None,
        *,
        mode: str = "argmin",
        k: int = 1,
        margin: float | None = None,
    ) -> list:
        """Blocking :meth:`submit_join`."""
        return self.submit_join(
            sources, targets, examples, timeout, mode=mode, k=k, margin=margin
        ).result()

    def _submit(
        self,
        kind: Literal["transform", "join"],
        sources: Sequence[str],
        examples: Sequence[ExamplePair],
        targets: tuple[str, ...] | None,
        timeout: float | None,
        mode: str = "argmin",
        k: int = 1,
        margin: float | None = None,
    ) -> Future:
        timeout = timeout if timeout is not None else self.default_timeout
        now = self._clock()
        deadline = now + timeout if timeout is not None else None
        request = _Request(
            kind,
            tuple(sources),
            tuple(examples),
            targets,
            deadline,
            submitted_at=now,
            mode=mode,
            k=k,
            margin=margin,
            trace_ctx=current_context(),
        )
        with self._cond:
            if self._closing:
                raise ServiceClosedError("service is shut down")
            if not request.sources:
                # The pipeline's empty-input fast path, without a batch.
                self._count(kind, request)
                request.future.set_result([])
                return request.future
            if len(self._queue) >= self.max_queue:
                self._counters.rejected += 1
                raise ServiceOverloadedError(
                    f"request queue is full ({self.max_queue} pending)"
                )
            self._count(kind, request)
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def _count(self, kind: str, request: _Request) -> None:
        self._counters.requests += 1
        self._counters.rows += len(request.sources)
        if kind == "join":
            self._counters.join_requests += 1
        else:
            self._counters.transform_requests += 1

    # -- the scheduler loop ------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)
            self.result_cache.sweep()
            self.join_cache.sweep()

    def _next_batch(self) -> list[_Request] | None:
        """Pop one micro-batch: wait for work, then hold the window open."""
        with self._cond:
            while not self._queue:
                if self._closing:
                    return None
                self._cond.wait()
            batch = [self._queue.popleft()]
            rows = len(batch[0].sources)
            window_end = self._clock() + self.max_wait_ms / 1000.0
            while rows < self.max_batch_rows:
                if self._queue:
                    rows += len(self._queue[0].sources)
                    batch.append(self._queue.popleft())
                    continue
                remaining = window_end - self._clock()
                if remaining <= 0 or self._closing:
                    break
                self._cond.wait(remaining)
            return batch

    def _execute(self, batch: list[_Request]) -> None:
        ready: list[_Request] = []
        tracer = get_tracer()
        now = self._clock()
        for request in batch:
            if not request.future.set_running_or_notify_cancel():
                self._counters.cancelled += 1
                continue
            if request.deadline is not None and now > request.deadline:
                tracer.record_span(
                    "serve.queue_wait",
                    request.trace_ctx,
                    request.submitted_at,
                    now,
                    attributes={"deadline_expired": True},
                    status="error",
                )
                request.future.set_exception(
                    DeadlineExceededError(
                        "deadline expired before the batch started"
                    )
                )
                self._counters.deadline_expired += 1
                continue
            ready.append(request)
        if not ready:
            return
        self._counters.batches += 1
        self._counters.batched_requests += len(ready)
        for request in ready:
            self._queue_wait.observe(now - request.submitted_at)
            tracer.record_span(
                "serve.queue_wait",
                request.trace_ctx,
                request.submitted_at,
                now,
                attributes={"batch_requests": len(ready)},
            )
        self._batch_requests.observe(len(ready))
        self._batch_rows.observe(
            sum(len(request.sources) for request in ready)
        )
        try:
            self._execute_ready(ready)
        except Exception as error:  # the futures carry it to callers
            for request in ready:
                if not request.future.done():
                    self._counters.failed += 1
                    self._finish_request_span(request, "error", repr(error))
                    request.future.set_exception(error)
        finally:
            done = self._clock()
            self._batch_execute.observe(done - now)
            for request in ready:
                self._request_latency.observe(done - request.submitted_at)

    def _finish_request_span(
        self, request: _Request, status: str = "ok", detail: str = ""
    ) -> None:
        """Close a request's execution span before its future resolves.

        Resolving the future can synchronously trigger the worker-side
        reply path (which drains finished spans into the reply), so the
        span must already be finished here — never after ``set_result``.
        """
        span = request.span
        if span is None:
            return
        request.span = None
        if status == "error":
            span.set_error(detail)
        span.finish()

    def _execute_ready(self, ready: list[_Request]) -> None:
        """One coalesced pass over every survivable request."""
        tracer = get_tracer()
        plans: list[_Plan] = []
        for request in ready:
            plan = _Plan(request)
            span = tracer.start_span(
                "serve.batch_execute",
                parent=request.trace_ctx,
                attributes={
                    "kind": request.kind,
                    "rows": len(request.sources),
                },
            )
            request.span = span if isinstance(span, Span) else None
            try:
                if self._serve_join_from_cache(plan):
                    continue
                self._resolve_cache_and_prompts(plan)
            except Exception as error:  # per-request isolation
                self._counters.failed += 1
                self._finish_request_span(request, "error", repr(error))
                request.future.set_exception(error)
                continue
            plans.append(plan)
        if not plans:
            return
        # The engine pass and the coalesced joins run once for the whole
        # batch, so their spans parent under ONE request's span — the
        # first traced one; every other traced request's span records
        # the primary's trace id instead (the span-link pattern).
        primary = next(
            (p.request.span for p in plans if p.request.span is not None),
            None,
        )
        if primary is not None:
            for plan in plans:
                span = plan.request.span
                if span is not None and span is not primary:
                    span.set_attribute("batch_primary_trace_id", primary.trace_id)
        with tracer.activate(primary if primary is not None else NULL_SPAN):
            self._generate(plans)
            self._deliver(plans)

    def _serve_join_from_cache(self, plan: _Plan) -> bool:
        """Resolve a join request from the join-result cache tier.

        A hit skips the whole pipeline — no prompts, no engine pass, no
        Eq. 5 resolution — and is byte-identical to recomputing because
        the key covers everything the output depends on (pipeline
        fingerprint, example pool, sources, target-column content,
        mode, ``k``, ``margin``).  Returns ``True`` when the future was
        resolved here.
        """
        request = plan.request
        if request.kind != "join":
            return False
        assert request.targets is not None
        plan.join_key = join_cache_key(
            self.model_fingerprint,
            examples_fingerprint(request.examples),
            request.sources,
            request.targets,
            request.mode,
            request.k,
            request.margin,
        )
        cached = self.join_cache.get(plan.join_key)
        if cached is None:
            return False
        if request.span is not None:
            request.span.set_attribute("join_cache_hit", True)
        self._finish_request_span(request)
        if request.mode == "reverse":
            # Stored as immutable row tuples; callers get fresh lists.
            request.future.set_result([list(group) for group in cached])
        else:
            request.future.set_result(list(cached))
        return True

    def _resolve_cache_and_prompts(self, plan: _Plan) -> None:
        """Fill cache hits and build prompts for the remaining rows."""
        request = plan.request
        pool_fp = examples_fingerprint(request.examples)
        if self.row_cacheable:
            plan.cache_keys = [
                (self.model_fingerprint, pool_fp, row, value)
                for row, value in enumerate(request.sources)
            ]
            for row, key in enumerate(plan.cache_keys):
                cached = self.result_cache.get(key)
                if cached is not None:
                    plan.predictions[row] = cached[0]
        else:
            plan.cache_keys = [
                (self.model_fingerprint, pool_fp, request.sources)
            ]
            cached = self.result_cache.get(plan.cache_keys[0])
            if cached is not None:
                plan.predictions = list(cached)
        pending_rows = {
            row
            for row, prediction in enumerate(plan.predictions)
            if prediction is None
        }
        if not pending_rows:
            return
        subtasks, prompts = self.pipeline.prepare_prompts(
            request.sources, request.examples
        )
        # Context sampling is keyed on the row position alone, so rows
        # already served from cache can be dropped without changing any
        # other row's prompts.
        for task, prompt in zip(subtasks, prompts, strict=True):
            if task.row_index in pending_rows:
                plan.subtasks.append(task)
                plan.prompts.append(prompt)

    def _generate(self, plans: list[_Plan]) -> None:
        """One scheduled engine pass over every plan's prompts.

        Incremental models get a single coalesced job (greedy decoding
        is a pure per-prompt function, so pooling requests cannot
        change outputs and lets dedupe/bucketing work across them);
        occurrence-dependent models get one job per request, exactly
        reproducing a direct ``transform_column`` call.
        """
        models = self.pipeline.models
        active = [plan for plan in plans if plan.prompts]
        jobs: list[tuple[object, list[str]]] = []
        # slices[m][i] -> index into ``jobs`` + offset for plan i.
        job_of: list[list[tuple[int, int]]] = []
        for model in models:
            per_plan: list[tuple[int, int]] = []
            if isinstance(model, IncrementalSequenceModel):
                pooled: list[str] = []
                job_index = len(jobs)
                for plan in active:
                    per_plan.append((job_index, len(pooled)))
                    pooled.extend(plan.prompts)
                jobs.append((model, pooled))
            else:
                for plan in active:
                    per_plan.append((len(jobs), 0))
                    jobs.append((model, plan.prompts))
            job_of.append(per_plan)
        if not jobs:
            return
        outputs, stats = self.pipeline.engine.run_with_stats(jobs)
        merged = EngineStats.merged(stats)
        self.last_engine_stats = merged
        self._counters.engine_prompts += merged.prompts
        self._counters.engine_decoded_rows += merged.decoded_rows
        self._counters.engine_chunks += merged.chunks
        self._counters.engine_steps += merged.steps
        self._counters.engine_row_steps += merged.row_steps
        for i, plan in enumerate(active):
            # Rebuild per-prompt candidate lists in model order, the
            # exact shape MultiModelAggregator.generate_candidates
            # produces for a direct call.
            candidate_lists = [
                [
                    outputs[job_of[m][i][0]][job_of[m][i][1] + position]
                    for m in range(len(models))
                ]
                for position in range(len(plan.prompts))
            ]
            request = plan.request
            pending_rows = sorted(
                {task.row_index for task in plan.subtasks}
            )
            fresh = self.pipeline.aggregate_candidates(
                request.sources, plan.subtasks, candidate_lists
            )
            # aggregate_candidates votes every row; rows not pending
            # here were cache hits, whose stored predictions win.
            for row in pending_rows:
                plan.predictions[row] = fresh[row]

    def _deliver(self, plans: list[_Plan]) -> None:
        """Store cache entries, resolve transforms, run coalesced joins."""
        join_groups: dict[tuple, list[_Plan]] = {}
        for plan in plans:
            request = plan.request
            predictions = plan.predictions
            assert all(p is not None for p in predictions)
            if self.row_cacheable:
                assert plan.cache_keys is not None
                for key, prediction in zip(
                    plan.cache_keys, predictions, strict=True
                ):
                    self.result_cache.put(key, (prediction,))
            else:
                assert plan.cache_keys is not None
                self.result_cache.put(plan.cache_keys[0], predictions)
            if request.kind == "transform":
                self._finish_request_span(request)
                request.future.set_result(list(predictions))
            else:
                assert request.targets is not None
                key = (
                    request.targets,
                    request.mode,
                    request.k,
                    request.margin,
                )
                join_groups.setdefault(key, []).append(plan)
        for (targets, mode, k, margin), group in join_groups.items():
            flat = [
                prediction
                for plan in group
                for prediction in plan.predictions
            ]
            joiner = self.pipeline.joiner
            if mode == "topk":
                results = joiner.join_topk(flat, targets, k=k, margin=margin)
            elif mode == "reverse":
                # One forward join over the whole group; each request
                # gets its own inversion of its slice, so per-request
                # results never depend on what else shared the batch.
                results = joiner.join_many([p.value for p in flat], targets)
            else:
                results = joiner.join(flat, targets)
            self._counters.joined_rows += len(flat)
            self.last_join_stats = getattr(joiner, "last_join_stats", None)
            if self.last_join_stats is not None:
                for name, count in self.last_join_stats.kernel_pairs:
                    self._join_kernel_pairs[name] = (
                        self._join_kernel_pairs.get(name, 0) + count
                    )
                self._join_totals["calls"] += 1
                for field in (
                    "probes",
                    "unique_probes",
                    "exact_matches",
                    "empty_probes",
                    "pending",
                ):
                    self._join_totals[field] += getattr(
                        self.last_join_stats, field
                    )
            offset = 0
            for plan in group:
                request = plan.request
                span = results[offset : offset + len(plan.predictions)]
                offset += len(plan.predictions)
                if mode == "reverse":
                    groups = invert_matches(span, targets)
                    if plan.join_key is not None:
                        self.join_cache.put(
                            plan.join_key,
                            (tuple(g) for g in groups),
                        )
                    self._finish_request_span(request)
                    request.future.set_result(groups)
                else:
                    if plan.join_key is not None:
                        self.join_cache.put(plan.join_key, span)
                    self._finish_request_span(request)
                    request.future.set_result(list(span))

    # -- observability and lifecycle ---------------------------------------

    def stats(self) -> ServeStats:
        """A consistent snapshot of the service counters."""
        cache = self.result_cache
        # _Counters shares field names with ServeStats by construction,
        # so a new counter only has to be declared in those two places.
        return ServeStats(
            **asdict(self._counters),
            cache_hits=cache.hits,
            cache_misses=cache.misses,
            cache_evictions=cache.evictions,
            cache_expirations=cache.expirations,
            cache_entries=len(cache),
            cache_bytes=cache.total_bytes,
            join_cache_hits=self.join_cache.hits,
            join_cache_misses=self.join_cache.misses,
            join_cache_entries=len(self.join_cache),
        )

    def join_stats_snapshot(self) -> dict:
        """JSON-friendly view of the join layer's kernel activity.

        ``last_join`` is the most recent :class:`~repro.index.parallel.JoinStats`
        (``None`` until a blocked join runs — the brute joiner publishes
        no stats); ``kernel_pairs_total`` accumulates pairs scored per
        backend across every join this service has executed.
        """
        last = self.last_join_stats
        return {
            "last_join": last.as_dict() if last is not None else None,
            "kernel_pairs_total": dict(self._join_kernel_pairs),
        }

    def metrics_snapshot(self) -> dict:
        """JSON-friendly export of every metric (histograms included)."""
        return self.metrics.snapshot()

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the service's metrics."""
        return self.metrics.render_text()

    @property
    def closed(self) -> bool:
        """Whether shutdown finished (scheduler stopped, queue drained)."""
        return self._closing and not self._thread.is_alive()

    def close(self, timeout: float | None = None) -> None:
        """Drain queued requests, stop the scheduler, release resources.

        Requests already queued complete normally (a clean shutdown
        never drops accepted work); new submits fail with
        :class:`ServiceClosedError`.  Idempotent.  With a ``timeout``,
        the call may return while the scheduler is still draining — the
        joiner's worker pool is then left alive for the in-flight batch
        and released by a later ``close()`` once the drain finishes.
        """
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        self._thread.join(timeout)
        if not self._thread.is_alive():
            self.pipeline.joiner.close()

    def __enter__(self) -> TransformService:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""The memoized result caches behind the serving layer.

Two cache tiers share one engine (:class:`TTLLRUCache`, a thread-safe
TTL + LRU + byte-bounded map from content-fingerprint keys to finished
payloads):

* :class:`ResultCache` — **transform** results.  Keys are built by the
  service from the **pipeline fingerprint** (models + weights +
  decoding configuration), the **example-pool fingerprint**, and the
  value being transformed (plus its row position, whose context
  sampling it pins), so a hit is guaranteed to be byte-identical to
  recomputing — the cache can change latency, never answers.
* :class:`JoinResultCache` — **join** results.  Transforms memoized
  alone still leave the Eq. 5 resolution (candidate generation,
  edit-distance scoring, selection) re-running per request; this tier
  memoizes the *whole* join — keys add the target column, the query
  mode, ``k``, and ``margin`` (see :func:`join_cache_key`), so a
  repeated join request is served without touching the engine **or**
  the joiner.

Entries in either tier are bounded three ways:

* **count** (``max_entries``) and **bytes** (``max_bytes``) — LRU
  eviction beyond either bound, with the newest entry always kept;
* **time** (``ttl_seconds``) — entries older than the TTL are treated
  as misses and dropped on access (and swept opportunistically), so a
  service whose model is retrained or whose upstream data drifts can
  bound staleness even though fingerprints already catch any *visible*
  configuration change.

Hit / miss / eviction / expiry counters feed the service's
:class:`~repro.serve.service.ServeStats`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.types import ExamplePair, JoinResult, Prediction, TopKJoinResult

#: A cache key: an opaque tuple of fingerprint strings and positions.
CacheKey = tuple[object, ...]


def examples_fingerprint(examples: Sequence[ExamplePair]) -> str:
    """Content fingerprint of an example pool.

    Length-prefixed UTF-8 over every (source, target) pair, order
    included — context sampling draws by position, so reordering the
    pool changes the sampled contexts and must change the key.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.serve.examples")
    for pair in examples:
        for text in (pair.source, pair.target):
            blob = text.encode("utf-8", "surrogatepass")
            digest.update(len(blob).to_bytes(8, "little"))
            digest.update(blob)
    return digest.hexdigest()


def column_key(values: Sequence[str]) -> str:
    """Content fingerprint of a string column, for join-cache keys.

    Same length-prefixed framing as :func:`examples_fingerprint`, so a
    target column never hashes equal to a reordering or a re-chunking
    of itself.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.serve.column")
    for value in values:
        blob = value.encode("utf-8", "surrogatepass")
        digest.update(len(blob).to_bytes(8, "little"))
        digest.update(blob)
    return digest.hexdigest()


def join_cache_key(
    pipeline_fingerprint: str,
    pool_fingerprint: str,
    sources: Sequence[str],
    targets: Sequence[str],
    mode: str,
    k: int,
    margin: float | None,
) -> CacheKey:
    """The join-result cache key: everything a join's output depends on.

    The target column enters as a content fingerprint (columns are
    often wide; the key should not retain them), the sources as the
    tuple itself (they are already part of the request and pin row
    positions), and the query surface (``mode``/``k``/``margin``)
    verbatim — two requests differing only in ``k`` must never share an
    entry.
    """
    return (
        "join",
        pipeline_fingerprint,
        pool_fingerprint,
        tuple(sources),
        column_key(targets),
        mode,
        k,
        margin,
    )


def _prediction_nbytes(prediction: Prediction) -> int:
    """Rough retained size of one prediction (UTF-8-ish accounting)."""
    return (
        len(prediction.source)
        + len(prediction.value)
        + sum(len(c) for c in prediction.candidates)
        + 64  # object overhead
    )


def _join_result_nbytes(result: object) -> int:
    """Rough retained size of one join-shaped result.

    Handles the three shapes the join cache stores: argmin
    :class:`~repro.types.JoinResult` rows, :class:`~repro.types.
    TopKJoinResult` rows with their ranked candidate lists, and the
    reverse mode's plain ``list[int]`` groups.
    """
    if isinstance(result, TopKJoinResult):
        return (
            len(result.source)
            + len(result.predicted)
            + (len(result.matched) if result.matched else 0)
            + sum(len(c.value) + 16 for c in result.candidates)
            + 96
        )
    if isinstance(result, JoinResult):
        return (
            len(result.source)
            + len(result.predicted)
            + (len(result.matched) if result.matched else 0)
            + 96
        )
    if isinstance(result, (list, tuple)):
        return 8 * len(result) + 64
    return 96


@dataclass
class _Entry:
    payload: tuple
    nbytes: int
    stored_at: float


class TTLLRUCache:
    """A thread-safe TTL + LRU + byte-bounded map of finished payloads.

    The shared engine behind :class:`ResultCache` and
    :class:`JoinResultCache`; subclasses only choose the byte
    estimator.  Payloads are stored as tuples (immutable by
    convention), so a hit can be handed to concurrent callers without
    copying.

    Args:
        max_entries: Maximum cached results.
        max_bytes: Maximum total retained bytes across entries
            (estimated from the strings held).
        ttl_seconds: Entry lifetime; ``None`` disables expiry.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int = 64 << 20,
        ttl_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    @staticmethod
    def _item_nbytes(item: object) -> int:
        """Rough retained size of one payload item; subclasses override."""
        return 96

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes retained across all entries."""
        return self._bytes

    def get(self, key: CacheKey) -> tuple | None:
        """Return the cached payload for ``key``, or ``None``.

        An entry past its TTL counts as a miss (and an expiry) and is
        dropped; a live hit moves the entry to most-recently-used.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if (
                self.ttl_seconds is not None
                and now - entry.stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._bytes -= entry.nbytes
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry.payload

    def put(self, key: CacheKey, payload: Iterable) -> None:
        """Store one payload, evicting LRU entries beyond the bounds."""
        stored = tuple(payload)
        nbytes = sum(self._item_nbytes(item) for item in stored)
        now = self._clock()
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(stored, nbytes, now)
            self._bytes += nbytes
            while len(self._entries) > 1 and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def sweep(self) -> int:
        """Drop every expired entry now; returns how many were dropped.

        The service calls this between batches so a long-idle cache
        does not hold expired entries' memory until they happen to be
        probed.
        """
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                if now - entry.stored_at > self.ttl_seconds:
                    del self._entries[key]
                    self._bytes -= entry.nbytes
                    self.expirations += 1
                    dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0


class ResultCache(TTLLRUCache):
    """TTL + LRU + byte-bounded map of finished *transform* results.

    Payloads are tuples of :class:`~repro.types.Prediction` (one per
    row for row-granular keys, the whole request otherwise); sizes are
    estimated from the strings each prediction retains.
    """

    @staticmethod
    def _item_nbytes(item: object) -> int:
        """Retained size of one cached prediction."""
        return _prediction_nbytes(item)  # type: ignore[arg-type]


class JoinResultCache(TTLLRUCache):
    """TTL + LRU + byte-bounded map of finished *join* results.

    Payloads are whole-request result tuples — argmin
    :class:`~repro.types.JoinResult` rows, ranked
    :class:`~repro.types.TopKJoinResult` rows, or the reverse mode's
    per-target index groups — keyed by :func:`join_cache_key`.  A hit
    skips the transform *and* the Eq. 5 resolution.
    """

    @staticmethod
    def _item_nbytes(item: object) -> int:
        """Retained size of one cached join-shaped result."""
        return _join_result_nbytes(item)

"""The memoized transform-result cache behind the serving layer.

:class:`ResultCache` is a thread-safe TTL + LRU map from content
fingerprints to finished transform results.  Keys are built by the
service from the **pipeline fingerprint** (models + weights + decoding
configuration), the **example-pool fingerprint**, and the value being
transformed (plus its row position, whose context sampling it pins), so
a hit is guaranteed to be byte-identical to recomputing — the cache can
change latency, never answers.  Entries are bounded three ways:

* **count** (``max_entries``) and **bytes** (``max_bytes``) — LRU
  eviction beyond either bound, with the newest entry always kept;
* **time** (``ttl_seconds``) — entries older than the TTL are treated
  as misses and dropped on access (and swept opportunistically), so a
  service whose model is retrained or whose upstream data drifts can
  bound staleness even though fingerprints already catch any *visible*
  configuration change.

Hit / miss / eviction / expiry counters feed the service's
:class:`~repro.serve.service.ServeStats`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.types import ExamplePair, Prediction

#: A cache key: an opaque tuple of fingerprint strings and positions.
CacheKey = tuple[object, ...]


def examples_fingerprint(examples: Sequence[ExamplePair]) -> str:
    """Content fingerprint of an example pool.

    Length-prefixed UTF-8 over every (source, target) pair, order
    included — context sampling draws by position, so reordering the
    pool changes the sampled contexts and must change the key.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.serve.examples")
    for pair in examples:
        for text in (pair.source, pair.target):
            blob = text.encode("utf-8", "surrogatepass")
            digest.update(len(blob).to_bytes(8, "little"))
            digest.update(blob)
    return digest.hexdigest()


def _prediction_nbytes(prediction: Prediction) -> int:
    """Rough retained size of one prediction (UTF-8-ish accounting)."""
    return (
        len(prediction.source)
        + len(prediction.value)
        + sum(len(c) for c in prediction.candidates)
        + 64  # object overhead
    )


@dataclass
class _Entry:
    predictions: tuple[Prediction, ...]
    nbytes: int
    stored_at: float


class ResultCache:
    """TTL + LRU + byte-bounded map of finished transform results.

    Args:
        max_entries: Maximum cached results.
        max_bytes: Maximum total retained bytes across entries
            (estimated from the strings held).
        ttl_seconds: Entry lifetime; ``None`` disables expiry.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int = 64 << 20,
        ttl_seconds: float | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes retained across all entries."""
        return self._bytes

    def get(self, key: CacheKey) -> tuple[Prediction, ...] | None:
        """Return the cached result for ``key``, or ``None``.

        An entry past its TTL counts as a miss (and an expiry) and is
        dropped; a live hit moves the entry to most-recently-used.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if (
                self.ttl_seconds is not None
                and now - entry.stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._bytes -= entry.nbytes
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry.predictions

    def put(self, key: CacheKey, predictions: Iterable[Prediction]) -> None:
        """Store one result, evicting LRU entries beyond the bounds."""
        stored = tuple(predictions)
        nbytes = sum(_prediction_nbytes(p) for p in stored)
        now = self._clock()
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(stored, nbytes, now)
            self._bytes += nbytes
            while len(self._entries) > 1 and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def sweep(self) -> int:
        """Drop every expired entry now; returns how many were dropped.

        The service calls this between batches so a long-idle cache
        does not hold expired entries' memory until they happen to be
        probed.
        """
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                entry = self._entries[key]
                if now - entry.stored_at > self.ttl_seconds:
                    del self._entries[key]
                    self._bytes -= entry.nbytes
                    self.expirations += 1
                    dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

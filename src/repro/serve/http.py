"""A stdlib JSON/HTTP front end over :class:`TransformService`.

Deliberately dependency-free (``http.server`` + ``json``): the point is
that the serving subsystem is drivable end-to-end — start a server,
``curl`` a transform or join, read the stats — without installing
anything.  The threading server gives each connection its own thread,
and those threads are exactly the concurrent clients the service's
micro-batching scheduler coalesces.

Endpoints (all bodies JSON; successful responses carry
``"schema_version": 1``):

* ``POST /v1/transform`` — ``{"sources": [...], "examples": [[s, t],
  ...], "timeout_s": 30.0?}`` → ``{"schema_version", "predictions":
  [{"source", "value", "votes", "candidates"}]}``.  Multi-route
  deployments pick a pipeline with ``?model=<selector>`` (or a
  ``"model"`` body field): a route name, full pipeline fingerprint, or
  unambiguous fingerprint prefix — see ``GET /v1/models``.
* ``POST /v1/join`` — transform body plus ``"targets": [...]`` and the
  optional query-surface fields ``"mode"`` (``"argmin"`` | ``"topk"``
  | ``"reverse"``, default ``"argmin"``), ``"k"`` (int >= 1) and
  ``"margin"`` (number >= 0).  ``argmin`` returns ``{"results":
  [{"source", "predicted", "matched", "expected", "distance",
  "correct"}]}``; ``topk`` adds per-result ``"margin"`` and ranked
  ``"candidates": [{"value", "distance", "row"}]``; ``reverse``
  returns ``{"groups": [{"row", "target", "sources": [...]}],
  "unmatched": [...]}`` over source-row indices.
* ``GET /v1/models`` — the routes this deployment fronts:
  ``{"schema_version", "models": [{"name", "fingerprint", "default"}],
  "n_workers"}``.
* ``GET /v1/stats`` — the service's :class:`ServeStats` snapshot, plus
  a ``"join"`` block (last join's :class:`~repro.index.parallel.JoinStats`
  and cumulative pairs scored per kernel backend) and a ``"metrics"``
  block with the latency/occupancy histograms and live gauges.
* ``GET /metrics`` — the same metrics in the Prometheus text
  exposition format (scrape-friendly plain text).
* ``GET /healthz`` — liveness: the process is up and the backend is
  not shut down.
* ``GET /readyz`` — readiness: worker pool fully up, every route
  resolvable, restart count (503 with the same body when not ready).
* ``GET /debug/traces`` — recent + slowest-N traces from the tracing
  subsystem (see :mod:`repro.obs.trace`; ``?limit=`` bounds both
  lists).

Every ``POST /v1/*`` request runs under a root span whose id is
returned in the ``X-Repro-Trace-Id`` response header; with
``--trace-sample-rate`` > 0 the whole span tree (queue wait, batch
execution, engine decode, join phases — across worker processes) lands
in ``/debug/traces``.  With ``log_json`` enabled the server emits one
structured access-log line per request (method, path, route, status,
duration_ms, trace_id) for log↔trace correlation.

Every error body is structured: ``{"error": {"code", "detail",
"field"?}}`` — ``code`` is a stable machine-readable slug, ``field``
names the offending request field when one is known.  Mapping:
malformed requests (bad JSON, bad ``Content-Length``, truncated
bodies, unknown or ill-typed fields) → 400, oversized bodies → 413, a
client stalling mid-body past the read timeout → 408, an unknown or
ambiguous ``model`` selector → 404, queue backpressure → 429, expired
deadlines → 504, a closed service or a worker process crashing with
the request in flight → 503 (the latter with code ``worker_crashed``;
the pool respawns the worker, so retrying is safe).
Body reads are bounded in both bytes (``max_request_bytes``) and time
(``request_timeout_s``), so a hostile or broken client can neither
balloon memory nor pin a handler thread forever.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.join_config import JOIN_MODES
from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownModelError,
    WorkerCrashedError,
)
from repro.obs.trace import Span, get_tracer
from repro.serve.router import ServiceRouter
from repro.serve.service import TransformService
from repro.types import ExamplePair

_MAX_BODY_BYTES = 16 << 20
_READ_TIMEOUT_S = 30.0

#: Wire-format version stamped into every successful response.
SCHEMA_VERSION = 1

#: Every path the server answers — the docs checker asserts each one is
#: covered by ``docs/http_api.md``, so adding an endpoint here without
#: documenting it fails CI.
PUBLIC_ENDPOINTS = (
    "/v1/transform",
    "/v1/join",
    "/v1/models",
    "/v1/stats",
    "/metrics",
    "/healthz",
    "/readyz",
    "/debug/traces",
)

_TRANSFORM_FIELDS = frozenset({"sources", "examples", "timeout_s", "model"})
_JOIN_FIELDS = _TRANSFORM_FIELDS | {"targets", "mode", "k", "margin"}


class _BadRequest(ValueError):
    """Client-side request shape error (mapped to a structured 400)."""

    def __init__(
        self, detail: str, code: str = "bad_request", field: str | None = None
    ) -> None:
        super().__init__(detail)
        self.code = code
        self.field = field


class _PayloadTooLarge(ValueError):
    """Declared body exceeds the configured bound (mapped to 413)."""


def _error_body(code: str, detail: str, field: str | None = None) -> dict:
    """The one structured error shape every error path returns."""
    error: dict = {"code": code, "detail": detail}
    if field is not None:
        error["field"] = field
    return {"error": error}


def _check_fields(payload: dict, allowed: frozenset[str]) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise _BadRequest(
            f"unknown field(s): {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}",
            code="unknown_field",
            field=unknown[0],
        )


def _string_list(payload: dict, field: str) -> list[str]:
    values = payload.get(field)
    if not isinstance(values, list) or not all(
        isinstance(v, str) for v in values
    ):
        raise _BadRequest(
            f"{field!r} must be a list of strings",
            code="invalid_value",
            field=field,
        )
    return values


def _example_pairs(payload: dict) -> list[ExamplePair]:
    raw = payload.get("examples")
    if not isinstance(raw, list):
        raise _BadRequest(
            "'examples' must be a list of [source, target] pairs",
            code="invalid_value",
            field="examples",
        )
    pairs: list[ExamplePair] = []
    for item in raw:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(part, str) for part in item)
        ):
            raise _BadRequest(
                "'examples' must be a list of [source, target] string pairs",
                code="invalid_value",
                field="examples",
            )
        pairs.append(ExamplePair(item[0], item[1]))
    return pairs


def _timeout(payload: dict) -> float | None:
    timeout = payload.get("timeout_s")
    if timeout is None:
        return None
    if (
        not isinstance(timeout, (int, float))
        or isinstance(timeout, bool)
        or timeout <= 0
    ):
        raise _BadRequest(
            "'timeout_s' must be a positive number",
            code="invalid_value",
            field="timeout_s",
        )
    return float(timeout)


def _join_mode(payload: dict) -> str:
    mode = payload.get("mode", "argmin")
    if not isinstance(mode, str) or mode not in JOIN_MODES:
        raise _BadRequest(
            f"'mode' must be one of {list(JOIN_MODES)}, got {mode!r}",
            code="invalid_value",
            field="mode",
        )
    return mode


def _join_k(payload: dict) -> int:
    k = payload.get("k", 1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise _BadRequest(
            f"'k' must be an integer >= 1, got {k!r}",
            code="invalid_value",
            field="k",
        )
    return k


def _model_selector(payload: dict, query: dict[str, list[str]]) -> str | None:
    """The route selector: ``?model=`` query param or ``"model"`` field.

    Either spelling works; sending both only works when they agree (a
    silent precedence rule would make one of them a no-op).  ``None``
    means the default route.
    """
    from_query = query.get("model", [None])[-1]
    from_body = payload.get("model")
    if from_body is not None and not isinstance(from_body, str):
        raise _BadRequest(
            "'model' must be a string (route name or fingerprint prefix)",
            code="invalid_value",
            field="model",
        )
    if (
        from_query is not None
        and from_body is not None
        and from_query != from_body
    ):
        raise _BadRequest(
            f"conflicting model selectors: query says {from_query!r}, "
            f"body says {from_body!r}",
            code="invalid_value",
            field="model",
        )
    return from_body if from_body is not None else from_query


def _join_margin(payload: dict) -> float | None:
    margin = payload.get("margin")
    if margin is None:
        return None
    if (
        not isinstance(margin, (int, float))
        or isinstance(margin, bool)
        or margin < 0
    ):
        raise _BadRequest(
            f"'margin' must be a number >= 0, got {margin!r}",
            code="invalid_value",
            field="margin",
        )
    return float(margin)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps the JSON API onto the owning server's ``service``."""

    server: TransformServiceServer
    protocol_version = "HTTP/1.1"

    #: Per-request state (reset at the top of each do_GET/do_POST; one
    #: handler serves many requests over a keep-alive connection).
    _root_span: Span | None = None
    _last_status: int | None = None
    _log_route: str | None = None

    # -- plumbing ---------------------------------------------------------

    def setup(self) -> None:
        """Apply the server's socket timeout before any read.

        ``StreamRequestHandler`` applies ``self.timeout`` to the socket
        during setup, bounding every blocking read — without it a
        client that stalls mid-body pins this handler thread forever.
        """
        self.timeout = self.server.request_timeout_s
        super().setup()

    def log_message(self, format: str, *args: object) -> None:
        """Log the request line only when the server is verbose."""
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        self._last_status = status
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._root_span is not None:
            self.send_header("X-Repro-Trace-Id", self._root_span.trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        self._last_status = status
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self._root_span is not None:
            self.send_header("X-Repro-Trace-Id", self._root_span.trace_id)
        self.end_headers()
        self.wfile.write(data)

    def _access_log(self, method: str, path: str, started: float) -> None:
        """One structured JSON access-log line (``log_json`` mode only)."""
        if not self.server.log_json:
            return
        record = {
            "method": method,
            "path": path,
            "route": self._log_route,
            "status": self._last_status,
            "duration_ms": round((time.monotonic() - started) * 1000.0, 3),
            "trace_id": (
                self._root_span.trace_id
                if self._root_span is not None
                else None
            ),
        }
        try:
            stream = self.server.log_stream
            stream.write(json.dumps(record) + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a closed log stream must never fail the request

    def _read_json(self) -> dict:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _BadRequest("request body required")
        try:
            length = int(raw_length)
        except ValueError:
            # Unparseable framing: without a length the body cannot be
            # delimited, so the connection must close after the error.
            self.close_connection = True
            raise _BadRequest(
                f"malformed Content-Length header: {raw_length!r}"
            ) from None
        if length <= 0:
            raise _BadRequest("request body required")
        if length > self.server.max_request_bytes:
            # The body was never read; unread bytes poison keep-alive.
            self.close_connection = True
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_request_bytes}-byte limit"
            )
        data = self.rfile.read(length)
        if len(data) < length:
            # The client closed early: a truncated body, not a batch of
            # whatever bytes did arrive.
            self.close_connection = True
            raise _BadRequest(
                f"request body truncated: got {len(data)} of "
                f"{length} declared bytes"
            )
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        """Serve the read-only endpoints: models, stats, metrics, health."""
        self._root_span = None
        self._last_status = None
        self._log_route = None
        started = time.monotonic()
        try:
            split = urlsplit(self.path)
            path = split.path
            router = self.server.router
            if path == "/healthz":
                self._send_json(
                    200,
                    {
                        "schema_version": SCHEMA_VERSION,
                        "ok": not router.closed,
                    },
                )
            elif path == "/readyz":
                readiness = router.readiness()
                self._send_json(
                    200 if readiness["ready"] else 503,
                    {"schema_version": SCHEMA_VERSION, **readiness},
                )
            elif path == "/debug/traces":
                self._handle_debug_traces(parse_qs(split.query))
            elif path == "/v1/models":
                self._send_json(
                    200,
                    {
                        "schema_version": SCHEMA_VERSION,
                        "models": router.models(),
                        "n_workers": router.n_workers,
                    },
                )
            elif path == "/v1/stats":
                self._send_json(200, router.stats())
            elif path == "/metrics":
                self._send_text(
                    200,
                    router.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_json(
                    404,
                    _error_body("not_found", f"unknown path {self.path!r}"),
                )
        finally:
            self._access_log("GET", urlsplit(self.path).path, started)

    def _handle_debug_traces(self, query: dict[str, list[str]]) -> None:
        """Serve the trace collector's recent + slowest-N snapshot."""
        raw_limit = query.get("limit", [None])[-1]
        limit: int | None = None
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                limit = None
            if limit is None or limit < 0:
                self._send_json(
                    400,
                    _error_body(
                        "invalid_value",
                        f"'limit' must be an integer >= 0, got {raw_limit!r}",
                        field="limit",
                    ),
                )
                return
        self._send_json(200, get_tracer().collector.snapshot(limit))

    def do_POST(self) -> None:  # noqa: N802 - http.server's contract
        """Dispatch transform/join requests, mapping errors to the table.

        Every POST runs under a fresh root span: its trace id rides the
        ``X-Repro-Trace-Id`` response header, and a 5xx outcome marks
        the span errored — which commits the trace even when sampling
        left it unrecorded.
        """
        split = urlsplit(self.path)
        tracer = get_tracer()
        span = tracer.start_trace(f"POST {split.path}")
        self._root_span = span
        self._last_status = None
        self._log_route = None
        started = time.monotonic()
        try:
            with tracer.activate(span):
                self._dispatch_post(split)
        finally:
            status = self._last_status
            span.set_attributes(
                {
                    "method": "POST",
                    "path": split.path,
                    "status": status,
                    "route": self._log_route,
                }
            )
            if status is not None and status >= 500:
                span.set_error(f"status {status}")
            span.finish()
            self._access_log("POST", split.path, started)
            self._root_span = None

    def _dispatch_post(self, split) -> None:
        """The POST body: parse, route, and map errors to statuses."""
        try:
            query = parse_qs(split.query)
            payload = self._read_json()
            if split.path == "/v1/transform":
                self._handle_transform(payload, query)
            elif split.path == "/v1/join":
                self._handle_join(payload, query)
            else:
                self._send_json(
                    404,
                    _error_body("not_found", f"unknown path {self.path!r}"),
                )
        except _BadRequest as error:
            self._send_json(
                400, _error_body(error.code, str(error), error.field)
            )
        except _PayloadTooLarge as error:
            self._send_json(413, _error_body("payload_too_large", str(error)))
        except TimeoutError as error:
            # The socket timed out mid-body: the client stalled, and
            # the half-read stream can carry no further requests.
            self.close_connection = True
            self._send_json(
                408,
                _error_body(
                    "request_timeout",
                    f"timed out reading request body: {error}",
                ),
            )
        except ServiceOverloadedError as error:
            self._send_json(429, _error_body("overloaded", str(error)))
        except DeadlineExceededError as error:
            self._send_json(504, _error_body("deadline_exceeded", str(error)))
        except UnknownModelError as error:
            self._send_json(404, _error_body("unknown_model", str(error)))
        except WorkerCrashedError as error:
            # A worker died with this request in flight; the pool has
            # already respawned a replacement, so a retry is safe.
            self._send_json(503, _error_body("worker_crashed", str(error)))
        except ServiceClosedError as error:
            self._send_json(503, _error_body("service_closed", str(error)))
        except ReproError as error:
            # Library-level rejection of a well-formed HTTP request
            # (empty example pool, empty target column, ...).
            self._send_json(400, _error_body("invalid_request", str(error)))
        except Exception as error:
            # Anything else (a failing model inside the batch, a bug):
            # the client must still get a status line, not a dropped
            # keep-alive connection.
            self._send_json(
                500, _error_body("internal", f"internal error: {error}")
            )

    def _handle_transform(
        self, payload: dict, query: dict[str, list[str]]
    ) -> None:
        _check_fields(payload, _TRANSFORM_FIELDS)
        router = self.server.router
        route = router.resolve(_model_selector(payload, query))
        self._log_route = route
        predictions = router.transform(
            _string_list(payload, "sources"),
            _example_pairs(payload),
            timeout=_timeout(payload),
            model=route,
        )
        self._send_json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "predictions": [p.to_dict() for p in predictions],
            },
        )

    def _handle_join(
        self, payload: dict, query: dict[str, list[str]]
    ) -> None:
        _check_fields(payload, _JOIN_FIELDS)
        mode = _join_mode(payload)
        sources = _string_list(payload, "sources")
        targets = _string_list(payload, "targets")
        router = self.server.router
        route = router.resolve(_model_selector(payload, query))
        self._log_route = route
        results = router.join(
            sources,
            targets,
            _example_pairs(payload),
            timeout=_timeout(payload),
            mode=mode,
            k=_join_k(payload),
            margin=_join_margin(payload),
            model=route,
        )
        body: dict = {"schema_version": SCHEMA_VERSION, "mode": mode}
        if mode == "reverse":
            # ``results`` is one group of source-row indices per target
            # row; ship the non-empty groups plus the leftover sources.
            matched: set[int] = set()
            groups = []
            for row, group in enumerate(results):
                if group:
                    groups.append(
                        {"row": row, "target": targets[row], "sources": group}
                    )
                    matched.update(group)
            body["groups"] = groups
            body["unmatched"] = [
                i for i in range(len(sources)) if i not in matched
            ]
        else:
            body["results"] = [r.to_dict() for r in results]
        self._send_json(200, body)


class TransformServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one serving backend.

    Args:
        address: ``(host, port)`` to bind.
        service: The backend every handler dispatches into — either a
            :class:`~repro.serve.router.ServiceRouter` (multi-route
            and/or multi-process), or a bare :class:`TransformService`,
            which is adopted as a single-route router
            (:meth:`ServiceRouter.from_service`) without behavior
            change.
        verbose: Log each request line.
        max_request_bytes: Declared-body bound; larger requests are
            refused with 413 before any body byte is read.
        request_timeout_s: Socket timeout applied to every handler
            connection — bounds body reads and idle keep-alives alike.
        log_json: Emit one structured JSON access-log line per request
            (method, path, route, status, duration_ms, trace_id).
        log_stream: Destination for the JSON access log (default
            ``sys.stderr``); anything with ``write``/``flush`` works.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: TransformService | ServiceRouter,
        verbose: bool = False,
        max_request_bytes: int = _MAX_BODY_BYTES,
        request_timeout_s: float = _READ_TIMEOUT_S,
        log_json: bool = False,
        log_stream=None,
    ) -> None:
        if max_request_bytes < 1:
            raise ValueError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        if request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be positive, got {request_timeout_s}"
            )
        super().__init__(address, ServiceRequestHandler)
        #: The backend exactly as handed in (kept for callers that
        #: reach through the server to their service).
        self.service = service
        #: What handlers dispatch into: always a router.
        self.router = (
            service
            if isinstance(service, ServiceRouter)
            else ServiceRouter.from_service(service)
        )
        self.verbose = verbose
        self.max_request_bytes = max_request_bytes
        self.request_timeout_s = request_timeout_s
        self.log_json = log_json
        self.log_stream = log_stream if log_stream is not None else sys.stderr


def start_http_server(
    service: TransformService | ServiceRouter,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    max_request_bytes: int = _MAX_BODY_BYTES,
    request_timeout_s: float = _READ_TIMEOUT_S,
    log_json: bool = False,
    log_stream=None,
) -> TransformServiceServer:
    """Bind and return a server (port 0 picks a free one); not yet serving.

    The caller drives ``serve_forever`` — usually on a thread for tests
    and examples (``server.server_address`` reports the bound port), or
    via :func:`serve_http` for a foreground process.
    """
    return TransformServiceServer(
        (host, port),
        service,
        verbose=verbose,
        max_request_bytes=max_request_bytes,
        request_timeout_s=request_timeout_s,
        log_json=log_json,
        log_stream=log_stream,
    )


def serve_http(
    service: TransformService | ServiceRouter,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
    max_request_bytes: int = _MAX_BODY_BYTES,
    request_timeout_s: float = _READ_TIMEOUT_S,
    log_json: bool = False,
    log_stream=None,
) -> None:
    """Serve in the foreground until interrupted, then shut down cleanly."""
    server = start_http_server(
        service,
        host,
        port,
        verbose=verbose,
        max_request_bytes=max_request_bytes,
        request_timeout_s=request_timeout_s,
        log_json=log_json,
        log_stream=log_stream,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()

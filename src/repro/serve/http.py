"""A stdlib JSON/HTTP front end over :class:`TransformService`.

Deliberately dependency-free (``http.server`` + ``json``): the point is
that the serving subsystem is drivable end-to-end — start a server,
``curl`` a transform or join, read the stats — without installing
anything.  The threading server gives each connection its own thread,
and those threads are exactly the concurrent clients the service's
micro-batching scheduler coalesces.

Endpoints (all bodies JSON):

* ``POST /v1/transform`` — ``{"sources": [...], "examples": [[s, t],
  ...], "timeout_s": 30.0?}`` → ``{"predictions": [{"source", "value",
  "votes", "candidates"}]}``
* ``POST /v1/join`` — transform body plus ``"targets": [...]`` →
  ``{"results": [{"source", "predicted", "matched", "distance"}]}``
* ``GET /v1/stats`` — the service's :class:`ServeStats` snapshot.
* ``GET /healthz`` — liveness.

Error mapping: malformed requests → 400, queue backpressure → 429,
expired deadlines → 504, a closed service → 503.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.service import TransformService
from repro.types import ExamplePair

_MAX_BODY_BYTES = 16 << 20


class _BadRequest(ValueError):
    """Client-side request shape error (mapped to 400)."""


def _string_list(payload: dict, field: str) -> list[str]:
    values = payload.get(field)
    if not isinstance(values, list) or not all(
        isinstance(v, str) for v in values
    ):
        raise _BadRequest(f"{field!r} must be a list of strings")
    return values


def _example_pairs(payload: dict) -> list[ExamplePair]:
    raw = payload.get("examples")
    if not isinstance(raw, list):
        raise _BadRequest("'examples' must be a list of [source, target] pairs")
    pairs: list[ExamplePair] = []
    for item in raw:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not all(isinstance(part, str) for part in item)
        ):
            raise _BadRequest(
                "'examples' must be a list of [source, target] string pairs"
            )
        pairs.append(ExamplePair(item[0], item[1]))
    return pairs


def _timeout(payload: dict) -> float | None:
    timeout = payload.get("timeout_s")
    if timeout is None:
        return None
    if not isinstance(timeout, (int, float)) or timeout <= 0:
        raise _BadRequest("'timeout_s' must be a positive number")
    return float(timeout)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps the JSON API onto the owning server's ``service``."""

    server: TransformServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _BadRequest("request body required")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        if self.path == "/healthz":
            self._send_json(200, {"ok": not self.server.service.closed})
        elif self.path == "/v1/stats":
            self._send_json(200, self.server.service.stats().as_dict())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server's contract
        try:
            payload = self._read_json()
            if self.path == "/v1/transform":
                self._handle_transform(payload)
            elif self.path == "/v1/join":
                self._handle_join(payload)
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except _BadRequest as error:
            self._send_json(400, {"error": str(error)})
        except ServiceOverloadedError as error:
            self._send_json(429, {"error": str(error)})
        except DeadlineExceededError as error:
            self._send_json(504, {"error": str(error)})
        except ServiceClosedError as error:
            self._send_json(503, {"error": str(error)})
        except ReproError as error:
            # Library-level rejection of a well-formed HTTP request
            # (empty example pool, empty target column, ...).
            self._send_json(400, {"error": str(error)})
        except Exception as error:
            # Anything else (a failing model inside the batch, a bug):
            # the client must still get a status line, not a dropped
            # keep-alive connection.
            self._send_json(500, {"error": f"internal error: {error}"})

    def _handle_transform(self, payload: dict) -> None:
        predictions = self.server.service.transform(
            _string_list(payload, "sources"),
            _example_pairs(payload),
            timeout=_timeout(payload),
        )
        self._send_json(
            200,
            {
                "predictions": [
                    {
                        "source": p.source,
                        "value": p.value,
                        "votes": p.votes,
                        "candidates": list(p.candidates),
                    }
                    for p in predictions
                ]
            },
        )

    def _handle_join(self, payload: dict) -> None:
        results = self.server.service.join(
            _string_list(payload, "sources"),
            _string_list(payload, "targets"),
            _example_pairs(payload),
            timeout=_timeout(payload),
        )
        self._send_json(
            200,
            {
                "results": [
                    {
                        "source": r.source,
                        "predicted": r.predicted,
                        "matched": r.matched,
                        "distance": r.distance,
                    }
                    for r in results
                ]
            },
        )


class TransformServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`TransformService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: TransformService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def start_http_server(
    service: TransformService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> TransformServiceServer:
    """Bind and return a server (port 0 picks a free one); not yet serving.

    The caller drives ``serve_forever`` — usually on a thread for tests
    and examples (``server.server_address`` reports the bound port), or
    via :func:`serve_http` for a foreground process.
    """
    return TransformServiceServer((host, port), service, verbose=verbose)


def serve_http(
    service: TransformService,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = True,
) -> None:
    """Serve in the foreground until interrupted, then shut down cleanly."""
    server = start_http_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()

"""The serving layer: a long-lived, multi-process transform-join tier.

Every other entry point in the repository is a one-shot library call;
this package amortizes work *across* callers.  A
:class:`TransformService` wraps one :class:`~repro.core.pipeline.DTTPipeline`
behind a dynamic micro-batching scheduler (concurrent requests coalesce
into single engine and join passes, byte-identical to direct calls),
content-fingerprinted caches (:class:`ResultCache` for transforms,
:class:`JoinResultCache` whole-request memoization of Eq. 5 joins; both
TTL + LRU + byte-bounded), and full request lifecycle machinery
(futures, deadlines, cancellation, bounded-queue backpressure).

Above the single service sit two scaling tiers:

* :class:`ServeWorkerPool` — N pre-fork worker **processes**, each
  hosting the full service stack, with copy-on-write pipeline reuse,
  crash containment, and automatic respawn;
* :class:`ServiceRouter` — multi-pipeline routing: one deployment
  fronting several model fingerprints (``model=<name | fingerprint>``
  selectors, a ``/v1/models`` listing) over in-process services or a
  shared worker pool, with parent-side per-route caches.

:mod:`repro.serve.http` puts a dependency-free JSON front end over
either tier — ``python -m repro.serve`` starts a server (see
``--serve-workers`` and ``--route``).  ``docs/architecture.md`` walks
the request lifecycle end to end; ``docs/http_api.md`` specifies the
wire format; ``docs/operations.md`` covers deployment and tuning.
"""

from repro.serve.cache import (
    JoinResultCache,
    ResultCache,
    examples_fingerprint,
    join_cache_key,
)
from repro.serve.http import serve_http, start_http_server
from repro.serve.router import RouteSpec, ServiceRouter, build_pipeline
from repro.serve.service import ServeStats, TransformService
from repro.serve.workers import ServeWorkerPool

__all__ = [
    "JoinResultCache",
    "ResultCache",
    "RouteSpec",
    "ServeStats",
    "ServeWorkerPool",
    "ServiceRouter",
    "TransformService",
    "build_pipeline",
    "examples_fingerprint",
    "join_cache_key",
    "serve_http",
    "start_http_server",
]

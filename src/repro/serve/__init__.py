"""The serving layer: a long-lived transform-join service.

Every other entry point in the repository is a one-shot library call;
this package amortizes work *across* callers.  A
:class:`TransformService` wraps one :class:`~repro.core.pipeline.DTTPipeline`
behind a dynamic micro-batching scheduler (concurrent requests coalesce
into single engine and join passes, byte-identical to direct calls), a
content-fingerprinted :class:`ResultCache` (TTL + LRU + byte-bounded
memoization of transform results), and full request lifecycle machinery
(futures, deadlines, cancellation, bounded-queue backpressure).
:mod:`repro.serve.http` puts a dependency-free JSON front end over it —
``python -m repro.serve`` starts a server.
"""

from repro.serve.cache import ResultCache, examples_fingerprint
from repro.serve.http import serve_http, start_http_server
from repro.serve.service import ServeStats, TransformService

__all__ = [
    "ResultCache",
    "ServeStats",
    "TransformService",
    "examples_fingerprint",
    "serve_http",
    "start_http_server",
]

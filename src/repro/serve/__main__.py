"""``python -m repro.serve`` — start the transform-join HTTP service.

Builds a pipeline (the deterministic pretrained stand-in by default, or
the DTT+GPT3 ensemble), wraps it in a micro-batching
:class:`~repro.serve.service.TransformService`, and serves the JSON API
of :mod:`repro.serve.http` in the foreground.

Example session::

    $ python -m repro.serve --port 8080 &
    $ curl -s localhost:8080/v1/join -d '{
        "sources": ["Jean Chretien"],
        "targets": ["jchretien", "kcampbell"],
        "examples": [["Justin Trudeau", "jtrudeau"],
                     ["Stephen Harper", "sharper"],
                     ["Paul Martin", "pmartin"]]}'
    $ curl -s localhost:8080/v1/stats
"""

from __future__ import annotations

import argparse

from repro.core.pipeline import DTTPipeline
from repro.serve.cache import ResultCache
from repro.serve.http import serve_http
from repro.serve.service import TransformService
from repro.surrogate import GPT3Surrogate, PretrainedDTT


def build_service(args: argparse.Namespace) -> TransformService:
    """Construct the pipeline and service from parsed CLI options."""
    if args.model == "ensemble":
        model = [PretrainedDTT(seed=args.seed), GPT3Surrogate(seed=args.seed)]
    else:
        model = PretrainedDTT(seed=args.seed)
    pipeline = DTTPipeline(
        model,
        context_size=args.context_size,
        n_trials=args.n_trials,
        seed=args.seed,
    )
    cache = ResultCache(
        max_entries=args.cache_max_entries,
        ttl_seconds=args.cache_ttl_s,
    )
    return TransformService(
        pipeline,
        max_wait_ms=args.max_wait_ms,
        max_batch_rows=args.max_batch_rows,
        max_queue=args.max_queue,
        default_timeout=args.default_timeout_s,
        result_cache=cache,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--model",
        choices=("pretrained", "ensemble"),
        default="pretrained",
        help="pretrained = the DTT stand-in; ensemble adds the GPT-3 surrogate",
    )
    parser.add_argument("--context-size", type=int, default=2)
    parser.add_argument("--n-trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batching window: how long the first request of a "
        "batch waits for company",
    )
    parser.add_argument("--max-batch-rows", type=int, default=256)
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="pending-request bound; beyond it submits get HTTP 429",
    )
    parser.add_argument(
        "--default-timeout-s",
        type=float,
        default=None,
        help="per-request deadline when the client sends none",
    )
    parser.add_argument("--cache-max-entries", type=int, default=4096)
    parser.add_argument(
        "--cache-ttl-s",
        type=float,
        default=None,
        help="result-cache entry lifetime (default: no expiry)",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=16 << 20,
        help="declared-body bound; larger requests get HTTP 413",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="socket timeout per connection; a client stalling mid-body "
        "gets HTTP 408",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    service = build_service(args)
    serve_http(
        service,
        args.host,
        args.port,
        verbose=not args.quiet,
        max_request_bytes=args.max_request_bytes,
        request_timeout_s=args.request_timeout_s,
    )


if __name__ == "__main__":
    main()

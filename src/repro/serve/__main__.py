"""``python -m repro.serve`` — start the transform-join HTTP service.

Builds one or more pipeline routes (the deterministic pretrained
stand-in by default, or the DTT+GPT3 ensemble), wraps them in a
:class:`~repro.serve.router.ServiceRouter` — in-process with
``--serve-workers 0``, or fronting that many pre-fork worker processes
— and serves the JSON API of :mod:`repro.serve.http` in the foreground.

Example session::

    $ python -m repro.serve --port 8080 --serve-workers 4 \\
          --route pretrained --route ensemble &
    $ curl -s localhost:8080/v1/models
    $ curl -s 'localhost:8080/v1/join?model=ensemble' -d '{
        "sources": ["Jean Chretien"],
        "targets": ["jchretien", "kcampbell"],
        "examples": [["Justin Trudeau", "jtrudeau"],
                     ["Stephen Harper", "sharper"],
                     ["Paul Martin", "pmartin"]]}'
    $ curl -s localhost:8080/v1/stats

See ``docs/operations.md`` for choosing worker counts and cache sizes.
"""

from __future__ import annotations

import argparse
import functools

from repro.obs.trace import configure_tracing
from repro.serve.cache import JoinResultCache, ResultCache
from repro.serve.http import serve_http
from repro.serve.router import RouteSpec, ServiceRouter, build_pipeline
from repro.serve.service import TransformService


def build_service(args: argparse.Namespace) -> TransformService:
    """Construct the single in-process service (the pre-router path).

    Used when the CLI asks for neither ``--route`` nor
    ``--serve-workers``: one pipeline, one
    :class:`~repro.serve.service.TransformService`, no routing layer —
    the HTTP server wraps it in a single-route router internally.
    """
    pipeline = build_pipeline(
        model=args.model,
        context_size=args.context_size,
        n_trials=args.n_trials,
        seed=args.seed,
    )
    return TransformService(
        pipeline,
        max_wait_ms=args.max_wait_ms,
        max_batch_rows=args.max_batch_rows,
        max_queue=args.max_queue,
        default_timeout=args.default_timeout_s,
        result_cache=ResultCache(**_cache_kwargs(args)),
        join_cache=JoinResultCache(**_cache_kwargs(args)),
    )


def build_router(args: argparse.Namespace) -> ServiceRouter:
    """Construct the route set and router from parsed CLI options."""
    route_names = args.route or [args.model]
    routes = [
        RouteSpec(
            name=name,
            # functools.partial over the module-level builder stays
            # picklable, which spawn-started workers require.
            factory=functools.partial(
                build_pipeline,
                model=name,
                context_size=args.context_size,
                n_trials=args.n_trials,
                seed=args.seed,
            ),
            cache_kwargs=_cache_kwargs(args),
        )
        for name in route_names
    ]
    return ServiceRouter(
        routes,
        n_workers=args.serve_workers,
        service_kwargs={
            "max_wait_ms": args.max_wait_ms,
            "max_batch_rows": args.max_batch_rows,
            "max_queue": args.max_queue,
            "default_timeout": args.default_timeout_s,
            # Parameters, not cache objects: they must survive the
            # pickle into spawn-started workers (see
            # repro.serve.workers.build_service).
            "result_cache_kwargs": _cache_kwargs(args),
            "join_cache_kwargs": _cache_kwargs(args),
        },
    )


def _cache_kwargs(args: argparse.Namespace) -> dict:
    kwargs: dict = {"max_entries": args.cache_max_entries}
    if args.cache_ttl_s is not None:
        kwargs["ttl_seconds"] = args.cache_ttl_s
    return kwargs


def main(argv: list[str] | None = None) -> None:
    """Parse CLI options, build the router, serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--model",
        choices=("pretrained", "ensemble"),
        default="pretrained",
        help="pretrained = the DTT stand-in; ensemble adds the GPT-3 "
        "surrogate (ignored when --route is given)",
    )
    parser.add_argument(
        "--route",
        action="append",
        choices=("pretrained", "ensemble"),
        default=None,
        help="serve this pipeline as a named route; repeat for a "
        "multi-model deployment (first route is the default)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=0,
        help="worker processes hosting the service stack; 0 (default) "
        "serves in-process",
    )
    parser.add_argument("--context-size", type=int, default=2)
    parser.add_argument("--n-trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batching window: how long the first request of a "
        "batch waits for company",
    )
    parser.add_argument("--max-batch-rows", type=int, default=256)
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="pending-request bound; beyond it submits get HTTP 429",
    )
    parser.add_argument(
        "--default-timeout-s",
        type=float,
        default=None,
        help="per-request deadline when the client sends none",
    )
    parser.add_argument("--cache-max-entries", type=int, default=4096)
    parser.add_argument(
        "--cache-ttl-s",
        type=float,
        default=None,
        help="result- and join-cache entry lifetime (default: no expiry)",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=16 << 20,
        help="declared-body bound; larger requests get HTTP 413",
    )
    parser.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help="socket timeout per connection; a client stalling mid-body "
        "gets HTTP 408",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="head-based trace sampling probability in [0, 1]; 0 "
        "records only errored requests' roots, 1 records every "
        "request (see GET /debug/traces)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one structured JSON access-log line per request "
        "(method, path, route, status, duration_ms, trace_id)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.route is not None and len(set(args.route)) != len(args.route):
        parser.error("duplicate --route values")
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        parser.error("--trace-sample-rate must be in [0, 1]")
    configure_tracing(sample_rate=args.trace_sample_rate)
    if args.serve_workers == 0 and args.route is None:
        backend: TransformService | ServiceRouter = build_service(args)
    else:
        backend = build_router(args)
    serve_http(
        backend,
        args.host,
        args.port,
        verbose=not args.quiet,
        max_request_bytes=args.max_request_bytes,
        request_timeout_s=args.request_timeout_s,
        log_json=args.log_json,
    )


if __name__ == "__main__":
    main()

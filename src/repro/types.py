"""Core data types shared across the DTT reproduction.

The paper works with *column pairs*: a source column whose values must be
reformatted into the representation of a target column, guided by a few
source->target example pairs.  These dataclasses capture that vocabulary:

* :class:`ExamplePair` — one (source, target) demonstration row.
* :class:`TablePair` — a full benchmark instance: aligned source/target
  columns plus metadata about how it was generated.
* :class:`Prediction` — the framework's output for one source row.
* :class:`JoinResult` — the outcome of matching one predicted value
  against the target column (Eq. 5 of the paper).
* :class:`JoinCandidate` / :class:`TopKJoinResult` — one ranked
  candidate and the full outcome of a top-k join query.

Result types expose ``to_dict()`` — the single serialization schema
consumed by both the eval reports and the HTTP serving layer, so the
wire format and the report format cannot drift apart.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ExamplePair:
    """A single source->target demonstration row.

    Attributes:
        source: Value in the source formatting.
        target: The same entity in the target formatting.
    """

    source: str
    target: str

    def as_tuple(self) -> tuple[str, str]:
        """Return the pair as a plain ``(source, target)`` tuple."""
        return (self.source, self.target)


@dataclass(frozen=True)
class TablePair:
    """An aligned source/target column pair used for evaluation.

    ``sources[i]`` and ``targets[i]`` describe the same entity; the ground
    truth for joining is the identity alignment.  Benchmarks in the paper
    (WT, SS, KBWT, Syn-*) all have this shape.

    Attributes:
        name: Unique identifier of the pair within its dataset.
        sources: Source-column values.
        targets: Target-column values, aligned with ``sources``.
        dataset: Name of the dataset this pair belongs to (e.g. ``"WT"``).
        topic: Generator topic / transformation family, for provenance.
        metadata: Free-form extra information from the generator.
    """

    name: str
    sources: tuple[str, ...]
    targets: tuple[str, ...]
    dataset: str = ""
    topic: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.targets):
            raise ValueError(
                f"TablePair {self.name!r}: sources ({len(self.sources)}) and "
                f"targets ({len(self.targets)}) must be aligned"
            )

    def __len__(self) -> int:
        return len(self.sources)

    def rows(self) -> Iterator[ExamplePair]:
        """Iterate over aligned rows as :class:`ExamplePair` objects."""
        for src, tgt in zip(self.sources, self.targets, strict=True):
            yield ExamplePair(src, tgt)

    def split(
        self, fraction: float = 0.5
    ) -> tuple[list[ExamplePair], list[ExamplePair]]:
        """Split rows into an example pool and a test set.

        The paper (§5.3) divides each table into two equal halves: ``S_e``
        provides context examples and ``S_t`` is used for testing.

        Args:
            fraction: Fraction of rows assigned to the example pool.

        Returns:
            ``(example_pool, test_rows)`` lists of :class:`ExamplePair`.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        cut = max(1, int(round(len(self) * fraction)))
        cut = min(cut, len(self) - 1) if len(self) > 1 else cut
        all_rows = list(self.rows())
        return all_rows[:cut], all_rows[cut:]

    def with_rows(
        self, sources: Sequence[str], targets: Sequence[str]
    ) -> TablePair:
        """Return a copy of this pair with replaced rows."""
        return replace(self, sources=tuple(sources), targets=tuple(targets))


@dataclass(frozen=True)
class Prediction:
    """The framework's final prediction for one source row.

    Attributes:
        source: The input source value.
        value: Predicted target-formatted value (empty string means the
            model abstained — the ``<eos>``-only case in footnote 2).
        candidates: All per-trial candidate outputs that were aggregated.
        votes: Number of trials that agreed with ``value``.
    """

    source: str
    value: str
    candidates: tuple[str, ...] = ()
    votes: int = 0

    @property
    def abstained(self) -> bool:
        """True when the model produced no usable output."""
        return self.value == ""

    @property
    def consistency(self) -> float:
        """Fraction of trials that agreed with the chosen value."""
        if not self.candidates:
            return 0.0
        return self.votes / len(self.candidates)

    def to_dict(self) -> dict:
        """Serialize for reports and HTTP responses (one schema)."""
        return {
            "source": self.source,
            "value": self.value,
            "votes": self.votes,
            "candidates": list(self.candidates),
        }


@dataclass(frozen=True)
class JoinResult:
    """Result of matching one predicted value into the target column.

    Attributes:
        source: The source row being joined.
        predicted: The framework's predicted target value.
        matched: The target-column value selected by Eq. 5 (or ``None``
            when the row could not be matched).
        expected: Ground-truth target value for the source row.
        distance: Edit distance between ``predicted`` and ``matched``.
    """

    source: str
    predicted: str
    matched: str | None
    expected: str
    distance: int = 0

    @property
    def correct(self) -> bool:
        """True when the join selected the ground-truth target row."""
        return self.matched is not None and self.matched == self.expected

    def to_dict(self) -> dict:
        """Serialize for reports and HTTP responses (one schema)."""
        return {
            "source": self.source,
            "predicted": self.predicted,
            "matched": self.matched,
            "expected": self.expected,
            "distance": self.distance,
            "correct": self.correct,
        }


@dataclass(frozen=True)
class JoinCandidate:
    """One ranked candidate from a top-k join query.

    Attributes:
        value: The target-column value.
        distance: Edit distance between the probe and ``value``.
        row: Earliest target row holding ``value``.
    """

    value: str
    distance: int
    row: int

    def to_dict(self) -> dict:
        """Serialize for reports and HTTP responses (one schema)."""
        return {"value": self.value, "distance": self.distance, "row": self.row}


@dataclass(frozen=True)
class TopKJoinResult:
    """Outcome of a top-k join query for one probe.

    Candidates are the up-to-k nearest *distinct* target values, ranked
    by ``(distance, row)``.  ``matched`` is the rank-1 candidate unless
    the joiner's thresholds reject it or the margin abstention rule
    fires; ``margin`` records the observed normalized gap between the
    rank-1 and rank-2 candidates (``None`` when fewer than two distinct
    candidates were ranked).

    Attributes:
        source: The source row being joined.
        predicted: The probe value that was matched.
        candidates: Ranked :class:`JoinCandidate` tuple (may be empty
            for an abstained/empty probe).
        matched: Selected target value, or ``None`` on abstention.
        distance: Edit distance of the rank-1 candidate (0 when there
            are no candidates).
        margin: Observed normalized rank-1/rank-2 distance gap.
        expected: Ground-truth target value (``""`` when unknown).
    """

    source: str
    predicted: str
    candidates: tuple[JoinCandidate, ...]
    matched: str | None
    distance: int = 0
    margin: float | None = None
    expected: str = ""

    @property
    def correct(self) -> bool:
        """True when the join selected the ground-truth target row."""
        return self.matched is not None and self.matched == self.expected

    def to_dict(self) -> dict:
        """Serialize for reports and HTTP responses (one schema)."""
        return {
            "source": self.source,
            "predicted": self.predicted,
            "matched": self.matched,
            "expected": self.expected,
            "distance": self.distance,
            "margin": self.margin,
            "candidates": [c.to_dict() for c in self.candidates],
        }

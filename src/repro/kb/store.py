"""Knowledge-base triple store: named binary relations over strings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import KnowledgeBaseError
from repro.utils.rng import stable_hash


def knows_fact(model_name: str, relation: str, subject: str, coverage: float) -> bool:
    """Whether a language model 'remembers' one specific KB fact.

    A pretrained LM's world knowledge is parametric: it either recalls a
    fact or it does not, deterministically — more trials do not create
    knowledge (unlike sampling noise, which aggregation can vote away).
    The fraction of facts known is the model's ``coverage``; which facts
    fall inside it is a stable hash of (model, relation, subject).
    """
    if coverage <= 0.0:
        return False
    if coverage >= 1.0:
        return True
    bucket = stable_hash(f"{model_name}|{relation}|{subject}") % 10_000
    return bucket < coverage * 10_000


@dataclass
class Relation:
    """A named functional relation subject -> object.

    Attributes:
        name: Relation identifier, e.g. ``"state_to_abbreviation"``.
        pairs: Mapping from subject to object.
        parametric: True when the relation is arbitrary (e.g. ISBN →
            author): recoverable only by lookup, never by textual rules
            or general world knowledge.  The GPT-3 surrogate *cannot*
            answer parametric relations; DataXFormer (a KB system) can.
    """

    name: str
    pairs: dict[str, str] = field(default_factory=dict)
    parametric: bool = False

    def lookup(self, subject: str) -> str | None:
        """Return the object for ``subject``, or None when absent."""
        return self.pairs.get(subject)

    def reverse_lookup(self, obj: str) -> str | None:
        """Return some subject mapping to ``obj``, or None when absent."""
        for subject, candidate in self.pairs.items():
            if candidate == obj:
                return subject
        return None

    def __len__(self) -> int:
        return len(self.pairs)


class KnowledgeBase:
    """A collection of named relations with forward/reverse lookup."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def add_relation(self, relation: Relation) -> None:
        """Register a relation, rejecting duplicates."""
        if relation.name in self._relations:
            raise KnowledgeBaseError(f"duplicate relation: {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        """Return a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise KnowledgeBaseError(f"unknown relation: {name!r}") from None

    def relation_names(self) -> list[str]:
        """All registered relation names, sorted."""
        return sorted(self._relations)

    def lookup(self, relation_name: str, subject: str) -> str | None:
        """Forward lookup in a named relation."""
        return self.relation(relation_name).lookup(subject)

    def find_relation(self, subject: str, obj: str) -> list[str]:
        """Return names of relations containing the exact (subject, obj) pair.

        This is how DataXFormer-style systems discover which relation
        explains a set of examples.
        """
        return [
            name
            for name, relation in sorted(self._relations.items())
            if relation.pairs.get(subject) == obj
        ]

    def infer_from_examples(
        self, examples: list[tuple[str, str]]
    ) -> Relation | None:
        """Return the relation consistent with *all* example pairs, if any.

        Ties are broken towards the relation covering the most examples
        exactly, then alphabetically for determinism.
        """
        if not examples:
            return None
        candidates: dict[str, int] = {}
        for subject, obj in examples:
            for name in self.find_relation(subject, obj):
                candidates[name] = candidates.get(name, 0) + 1
        if not candidates:
            return None
        best_name = max(sorted(candidates), key=lambda n: candidates[n])
        if candidates[best_name] < len(examples):
            # Tolerate at most one noisy example out of >= 3.
            if len(examples) < 3 or candidates[best_name] < len(examples) - 1:
                return None
        return self._relations[best_name]

"""A small in-memory knowledge base.

Two consumers:

* the **KBWT benchmark** (paper §5.2) — table pairs whose mapping is a
  semantic KB relation (state → abbreviation, country → citizen, ...)
  rather than a textual transformation;
* the **GPT-3 surrogate** and the **DataXFormer baseline** — both are
  systems the paper credits with KB/world knowledge, which we ground in
  this store.
"""

from repro.kb.store import KnowledgeBase, Relation
from repro.kb.builtin import build_default_kb

__all__ = ["KnowledgeBase", "Relation", "build_default_kb"]

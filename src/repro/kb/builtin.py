"""Built-in world knowledge for the KBWT benchmark and the LLM surrogate.

Relations marked *parametric* (ISBN → author, city → zip) are generated
pseudo-randomly at build time: they stand in for KB content that no
amount of general world knowledge or textual pattern matching recovers —
the paper's 'City To Zip' / 'ISBN To Author' failure cases (§5.5).
"""

from __future__ import annotations

from repro.kb.store import KnowledgeBase, Relation
from repro.utils.rng import derive_rng

US_STATE_ABBREVIATIONS: dict[str, str] = {
    "Alabama": "AL", "Alaska": "AK", "Arizona": "AZ", "Arkansas": "AR",
    "California": "CA", "Colorado": "CO", "Connecticut": "CT",
    "Delaware": "DE", "Florida": "FL", "Georgia": "GA", "Hawaii": "HI",
    "Idaho": "ID", "Illinois": "IL", "Indiana": "IN", "Iowa": "IA",
    "Kansas": "KS", "Kentucky": "KY", "Louisiana": "LA", "Maine": "ME",
    "Maryland": "MD", "Massachusetts": "MA", "Michigan": "MI",
    "Minnesota": "MN", "Mississippi": "MS", "Missouri": "MO",
    "Montana": "MT", "Nebraska": "NE", "Nevada": "NV",
    "New Hampshire": "NH", "New Jersey": "NJ", "New Mexico": "NM",
    "New York": "NY", "North Carolina": "NC", "North Dakota": "ND",
    "Ohio": "OH", "Oklahoma": "OK", "Oregon": "OR", "Pennsylvania": "PA",
    "Rhode Island": "RI", "South Carolina": "SC", "South Dakota": "SD",
    "Tennessee": "TN", "Texas": "TX", "Utah": "UT", "Vermont": "VT",
    "Virginia": "VA", "Washington": "WA", "West Virginia": "WV",
    "Wisconsin": "WI", "Wyoming": "WY",
}

COUNTRY_CAPITALS: dict[str, str] = {
    "Afghanistan": "Kabul", "Argentina": "Buenos Aires",
    "Australia": "Canberra", "Austria": "Vienna", "Belgium": "Brussels",
    "Brazil": "Brasilia", "Canada": "Ottawa", "Chile": "Santiago",
    "China": "Beijing", "Colombia": "Bogota", "Cuba": "Havana",
    "Denmark": "Copenhagen", "Egypt": "Cairo", "Ethiopia": "Addis Ababa",
    "Finland": "Helsinki", "France": "Paris", "Germany": "Berlin",
    "Ghana": "Accra", "Greece": "Athens", "Hungary": "Budapest",
    "Iceland": "Reykjavik", "India": "New Delhi", "Indonesia": "Jakarta",
    "Iran": "Tehran", "Iraq": "Baghdad", "Ireland": "Dublin",
    "Israel": "Jerusalem", "Italy": "Rome", "Japan": "Tokyo",
    "Kenya": "Nairobi", "Mexico": "Mexico City", "Morocco": "Rabat",
    "Netherlands": "Amsterdam", "New Zealand": "Wellington",
    "Nigeria": "Abuja", "Norway": "Oslo", "Pakistan": "Islamabad",
    "Peru": "Lima", "Philippines": "Manila", "Poland": "Warsaw",
    "Portugal": "Lisbon", "Russia": "Moscow", "Saudi Arabia": "Riyadh",
    "South Africa": "Pretoria", "South Korea": "Seoul", "Spain": "Madrid",
    "Sweden": "Stockholm", "Switzerland": "Bern", "Thailand": "Bangkok",
    "Turkey": "Ankara", "Ukraine": "Kyiv", "United Kingdom": "London",
    "United States": "Washington", "Vietnam": "Hanoi",
}

COUNTRY_DEMONYMS: dict[str, str] = {
    "Afghanistan": "Afghan", "Argentina": "Argentine",
    "Australia": "Australian", "Austria": "Austrian",
    "Belgium": "Belgian", "Brazil": "Brazilian", "Canada": "Canadian",
    "Chile": "Chilean", "China": "Chinese", "Colombia": "Colombian",
    "Cuba": "Cuban", "Denmark": "Danish", "Egypt": "Egyptian",
    "Ethiopia": "Ethiopian", "Finland": "Finnish", "France": "French",
    "Germany": "German", "Ghana": "Ghanaian", "Greece": "Greek",
    "Hungary": "Hungarian", "Iceland": "Icelandic", "India": "Indian",
    "Indonesia": "Indonesian", "Iran": "Iranian", "Iraq": "Iraqi",
    "Ireland": "Irish", "Israel": "Israeli", "Italy": "Italian",
    "Japan": "Japanese", "Kenya": "Kenyan", "Mexico": "Mexican",
    "Morocco": "Moroccan", "Netherlands": "Dutch",
    "New Zealand": "New Zealander", "Nigeria": "Nigerian",
    "Norway": "Norwegian", "Pakistan": "Pakistani", "Peru": "Peruvian",
    "Philippines": "Filipino", "Poland": "Polish",
    "Portugal": "Portuguese", "Russia": "Russian",
    "Saudi Arabia": "Saudi", "South Africa": "South African",
    "South Korea": "South Korean", "Spain": "Spanish",
    "Sweden": "Swedish", "Switzerland": "Swiss", "Thailand": "Thai",
    "Turkey": "Turkish", "Ukraine": "Ukrainian",
    "United Kingdom": "British", "United States": "American",
    "Vietnam": "Vietnamese",
}

COUNTRY_CODES: dict[str, str] = {
    "Afghanistan": "AF", "Argentina": "AR", "Australia": "AU",
    "Austria": "AT", "Belgium": "BE", "Brazil": "BR", "Canada": "CA",
    "Chile": "CL", "China": "CN", "Colombia": "CO", "Cuba": "CU",
    "Denmark": "DK", "Egypt": "EG", "Ethiopia": "ET", "Finland": "FI",
    "France": "FR", "Germany": "DE", "Ghana": "GH", "Greece": "GR",
    "Hungary": "HU", "Iceland": "IS", "India": "IN", "Indonesia": "ID",
    "Iran": "IR", "Iraq": "IQ", "Ireland": "IE", "Israel": "IL",
    "Italy": "IT", "Japan": "JP", "Kenya": "KE", "Mexico": "MX",
    "Morocco": "MA", "Netherlands": "NL", "New Zealand": "NZ",
    "Nigeria": "NG", "Norway": "NO", "Pakistan": "PK", "Peru": "PE",
    "Philippines": "PH", "Poland": "PL", "Portugal": "PT",
    "Russia": "RU", "Saudi Arabia": "SA", "South Africa": "ZA",
    "South Korea": "KR", "Spain": "ES", "Sweden": "SE",
    "Switzerland": "CH", "Thailand": "TH", "Turkey": "TR",
    "Ukraine": "UA", "United Kingdom": "GB", "United States": "US",
    "Vietnam": "VN",
}

ELEMENT_SYMBOLS: dict[str, str] = {
    "Hydrogen": "H", "Helium": "He", "Lithium": "Li", "Beryllium": "Be",
    "Boron": "B", "Carbon": "C", "Nitrogen": "N", "Oxygen": "O",
    "Fluorine": "F", "Neon": "Ne", "Sodium": "Na", "Magnesium": "Mg",
    "Aluminium": "Al", "Silicon": "Si", "Phosphorus": "P", "Sulfur": "S",
    "Chlorine": "Cl", "Argon": "Ar", "Potassium": "K", "Calcium": "Ca",
    "Titanium": "Ti", "Chromium": "Cr", "Manganese": "Mn", "Iron": "Fe",
    "Cobalt": "Co", "Nickel": "Ni", "Copper": "Cu", "Zinc": "Zn",
    "Gallium": "Ga", "Arsenic": "As", "Bromine": "Br", "Krypton": "Kr",
    "Silver": "Ag", "Tin": "Sn", "Iodine": "I", "Xenon": "Xe",
    "Platinum": "Pt", "Gold": "Au", "Mercury": "Hg", "Lead": "Pb",
    "Uranium": "U", "Tungsten": "W", "Radon": "Rn", "Radium": "Ra",
}

MONTH_NUMBERS: dict[str, str] = {
    "January": "01", "February": "02", "March": "03", "April": "04",
    "May": "05", "June": "06", "July": "07", "August": "08",
    "September": "09", "October": "10", "November": "11",
    "December": "12",
}

CURRENCY_CODES: dict[str, str] = {
    "Australia": "AUD", "Brazil": "BRL", "Canada": "CAD", "China": "CNY",
    "Denmark": "DKK", "Egypt": "EGP", "India": "INR", "Indonesia": "IDR",
    "Israel": "ILS", "Japan": "JPY", "Mexico": "MXN", "Norway": "NOK",
    "Pakistan": "PKR", "Poland": "PLN", "Russia": "RUB",
    "Saudi Arabia": "SAR", "South Africa": "ZAR", "South Korea": "KRW",
    "Sweden": "SEK", "Switzerland": "CHF", "Thailand": "THB",
    "Turkey": "TRY", "United Kingdom": "GBP", "United States": "USD",
    "Vietnam": "VND",
}

_AUTHOR_SURNAMES = (
    "Smith", "Johnson", "Lee", "Brown", "Garcia", "Miller", "Davis",
    "Martinez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore",
    "Jackson", "Martin", "Thompson", "White", "Lopez", "Clark",
    "Lewis", "Walker", "Hall", "Young", "King", "Wright",
)
_AUTHOR_GIVEN = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer",
    "Michael", "Linda", "David", "Elizabeth", "William", "Barbara",
    "Richard", "Susan", "Joseph", "Jessica", "Carol", "Daniel",
    "Nancy", "Matthew",
)
_CITY_NAMES = (
    "Springfield", "Riverton", "Fairview", "Georgetown", "Clinton",
    "Salem", "Madison", "Franklin", "Arlington", "Ashland", "Dover",
    "Hudson", "Kingston", "Milton", "Newport", "Oxford", "Burlington",
    "Manchester", "Clayton", "Dayton", "Lexington", "Milford",
    "Winchester", "Jackson", "Auburn", "Bristol", "Camden", "Troy",
    "Florence", "Greenville", "Marion", "Monroe", "Oakland", "Lebanon",
    "Hamilton", "Quincy", "Sheridan", "Lancaster", "Brighton", "Dublin",
)


def _build_isbn_to_author(seed: int) -> dict[str, str]:
    """Pseudo-random ISBN → author mapping (parametric KB content)."""
    rng = derive_rng(seed, "isbn_author")
    pairs: dict[str, str] = {}
    for _ in range(120):
        digits = rng.integers(0, 10, size=9)
        body = "".join(str(int(d)) for d in digits)
        isbn = f"978-{body[:1]}-{body[1:4]}-{body[4:9]}-{int(rng.integers(0, 10))}"
        given = _AUTHOR_GIVEN[int(rng.integers(0, len(_AUTHOR_GIVEN)))]
        surname = _AUTHOR_SURNAMES[int(rng.integers(0, len(_AUTHOR_SURNAMES)))]
        pairs[isbn] = f"{given} {surname}"
    return pairs


def _build_city_to_zip(seed: int) -> dict[str, str]:
    """Pseudo-random city → zip mapping (parametric KB content)."""
    rng = derive_rng(seed, "city_zip")
    pairs: dict[str, str] = {}
    for city in _CITY_NAMES:
        state = list(US_STATE_ABBREVIATIONS.values())[
            int(rng.integers(0, len(US_STATE_ABBREVIATIONS)))
        ]
        zipcode = f"{int(rng.integers(10000, 99999)):05d}"
        pairs[f"{city}, {state}"] = zipcode
    return pairs


def build_default_kb(seed: int = 1234) -> KnowledgeBase:
    """Assemble the default knowledge base.

    Args:
        seed: Seed for the parametric (pseudo-random) relations, so the
            benchmark is reproducible.
    """
    kb = KnowledgeBase()
    kb.add_relation(Relation("state_to_abbreviation", dict(US_STATE_ABBREVIATIONS)))
    kb.add_relation(Relation("country_to_capital", dict(COUNTRY_CAPITALS)))
    kb.add_relation(Relation("country_to_citizen", dict(COUNTRY_DEMONYMS)))
    kb.add_relation(Relation("country_to_code", dict(COUNTRY_CODES)))
    kb.add_relation(Relation("element_to_symbol", dict(ELEMENT_SYMBOLS)))
    kb.add_relation(Relation("month_to_number", dict(MONTH_NUMBERS)))
    kb.add_relation(Relation("country_to_currency", dict(CURRENCY_CODES)))
    kb.add_relation(
        Relation("isbn_to_author", _build_isbn_to_author(seed), parametric=True)
    )
    kb.add_relation(
        Relation("city_to_zip", _build_city_to_zip(seed), parametric=True)
    )
    return kb

"""Join precision / recall / F1 (paper §5.4).

A prediction is *correct* when the join (Eq. 5 argmin) selects the
ground-truth target row.  Precision is the fraction of *matched* rows
that are correct; recall is the fraction of *all* source rows that are
correctly mapped (rows may stay unmatched — footnote 2); F1 is their
harmonic mean.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.types import JoinResult


@dataclass(frozen=True)
class JoinScores:
    """Precision / recall / F1 for one table join.

    Attributes:
        precision: Correct matches over attempted matches.
        recall: Correct matches over all source rows.
        f1: Harmonic mean of precision and recall.
        matched: Number of source rows that produced a match.
        correct: Number of matches equal to the ground truth.
        total: Number of source rows.
    """

    precision: float
    recall: float
    f1: float
    matched: int
    correct: int
    total: int


def score_join(results: Sequence[JoinResult]) -> JoinScores:
    """Score a joined table against its ground truth."""
    total = len(results)
    matched = sum(1 for r in results if r.matched is not None)
    correct = sum(1 for r in results if r.correct)
    precision = correct / matched if matched else 0.0
    recall = correct / total if total else 0.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return JoinScores(
        precision=precision,
        recall=recall,
        f1=f1,
        matched=matched,
        correct=correct,
        total=total,
    )

"""Average (normalized) edit distance — AED and ANED (paper §5.4).

These measure how far *predicted strings* are from the ground-truth
targets, independent of whether the join succeeded.  ANED normalizes by
target length so scores are comparable across datasets.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.text.edit_distance import edit_distance, normalized_edit_distance


@dataclass(frozen=True)
class EditScores:
    """Edit-distance aggregates for one table.

    Attributes:
        aed: Average edit distance between predictions and targets.
        aned: Average normalized edit distance.
        count: Number of scored rows.
    """

    aed: float
    aned: float
    count: int


def score_edits(predictions: Sequence[str], targets: Sequence[str]) -> EditScores:
    """Compute AED/ANED for aligned prediction/target columns."""
    if len(predictions) != len(targets):
        raise ValueError(
            f"predictions ({len(predictions)}) and targets ({len(targets)}) "
            "must be aligned"
        )
    if not predictions:
        return EditScores(aed=0.0, aned=0.0, count=0)
    pairs = list(zip(predictions, targets, strict=True))
    distances = [edit_distance(p, t) for p, t in pairs]
    normalized = [normalized_edit_distance(p, t) for p, t in pairs]
    return EditScores(
        aed=sum(distances) / len(distances),
        aned=sum(normalized) / len(normalized),
        count=len(predictions),
    )

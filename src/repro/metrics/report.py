"""Per-table and per-dataset reporting.

The paper reports dataset metrics as the average over all tables in the
dataset (§5.4).  :class:`TableReport` holds one table's scores;
:class:`DatasetReport` averages them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.metrics.edit_metrics import EditScores
from repro.metrics.join_metrics import JoinScores


@dataclass(frozen=True)
class TableReport:
    """All scores for one table pair under one method.

    Attributes:
        table: Table-pair name.
        method: Method name (e.g. ``"DTT"``, ``"CST"``).
        join: Join P/R/F1 scores.
        edits: AED/ANED scores (``None`` for matching-only baselines
            that produce no predicted strings).
        seconds: Wall-clock time spent, for the runtime experiments.
        stats: Execution counters reported by the method (the DTT
            pipeline's generation-engine and join-engine stats), or
            ``None`` for methods that report none.  Excluded from
            equality so score comparisons ignore scheduling detail.
    """

    table: str
    method: str
    join: JoinScores
    edits: EditScores | None = None
    seconds: float = 0.0
    stats: dict | None = field(default=None, compare=False)


@dataclass(frozen=True)
class DatasetReport:
    """Averages of table reports over one dataset (paper convention).

    Attributes:
        dataset: Dataset name (e.g. ``"WT"``).
        method: Method name.
        precision, recall, f1: Mean join scores over tables.
        aed, aned: Mean edit scores over tables (0 when unavailable).
        seconds: Total wall-clock seconds over tables.
        tables: Number of tables averaged.
    """

    dataset: str
    method: str
    precision: float
    recall: float
    f1: float
    aed: float
    aned: float
    seconds: float
    tables: int


def average_reports(
    dataset: str, method: str, reports: Sequence[TableReport]
) -> DatasetReport:
    """Average per-table reports into one dataset row."""
    if not reports:
        raise ValueError(f"no table reports to average for {dataset}/{method}")
    count = len(reports)
    edits = [r.edits for r in reports if r.edits is not None]
    return DatasetReport(
        dataset=dataset,
        method=method,
        precision=sum(r.join.precision for r in reports) / count,
        recall=sum(r.join.recall for r in reports) / count,
        f1=sum(r.join.f1 for r in reports) / count,
        aed=sum(e.aed for e in edits) / len(edits) if edits else 0.0,
        aned=sum(e.aned for e in edits) / len(edits) if edits else 0.0,
        seconds=sum(r.seconds for r in reports),
        tables=count,
    )

"""Evaluation metrics (paper §5.4): join P/R/F1 and AED/ANED."""

from repro.metrics.join_metrics import JoinScores, score_join
from repro.metrics.edit_metrics import EditScores, score_edits
from repro.metrics.report import DatasetReport, TableReport, average_reports

__all__ = [
    "JoinScores",
    "score_join",
    "EditScores",
    "score_edits",
    "TableReport",
    "DatasetReport",
    "average_reports",
]

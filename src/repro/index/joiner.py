"""Blocked join strategies, drop-in compatible with the brute joiner.

:class:`IndexedJoiner` resolves Eq. 5's argmin through a
:class:`~repro.index.qgram.QGramIndex` plus the batched DP kernel, with
**exact equivalence** to :class:`~repro.core.joiner.EditDistanceJoiner`:
identical matches, distances, earliest-row tie-breaking, and
``max_distance`` / ``normalized_threshold`` semantics.  The argmin uses
iterative cap deepening — candidates within cap ``k`` are generated
(provably completely), scored, and if none scores ``<= k`` the cap
doubles; because the candidate set at cap ``k`` contains *every* target
within ``k``, the first round that finds a distance ``<= k`` has found
the global minimum and all its ties.

:class:`AutoJoiner` picks the brute scan for small target columns (where
index construction dominates) and the blocked engine above a row-count
threshold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.joiner import EditDistanceJoiner
from repro.index.kernel import edit_distance_codes
from repro.index.qgram import QGramIndex


class IndexedJoiner(EditDistanceJoiner):
    """Q-gram-blocked edit-distance joiner (exactly equivalent to brute).

    The q-gram index for a target column is built on first use and
    cached while the same ``targets`` object is passed to subsequent
    calls (so :meth:`join` builds it once).  A length change on the
    cached object forces a rebuild; same-length in-place edits between
    calls are undetectable and not supported.

    Args:
        max_distance: As in :class:`EditDistanceJoiner`.
        normalized_threshold: As in :class:`EditDistanceJoiner`.
        q: Gram size for the blocking index.
    """

    def __init__(
        self,
        max_distance: int | None = None,
        normalized_threshold: float | None = None,
        q: int = 2,
    ) -> None:
        super().__init__(
            max_distance=max_distance, normalized_threshold=normalized_threshold
        )
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.q = q
        self._cache: tuple[Sequence[str], int, QGramIndex] | None = None

    def _index_for(self, targets: Sequence[str]) -> QGramIndex:
        if self._cache is not None:
            cached_targets, cached_size, cached_index = self._cache
            # Cheap staleness guard: an in-place append/removal on the
            # cached object is detectable by length and forces a rebuild
            # (same-length in-place edits remain undetected/unsupported).
            if cached_targets is targets and cached_size == len(targets):
                return cached_index
        index = QGramIndex(targets, q=self.q)
        self._cache = (targets, len(targets), index)
        return index

    def _argmin(self, predicted: str, targets: Sequence[str]) -> tuple[str, int]:
        """Earliest-row argmin via the blocked index (same contract as brute).

        Guards and threshold rejection stay in the shared
        :meth:`EditDistanceJoiner.match` / ``_apply_thresholds``; only
        the argmin strategy differs.
        """
        index = self._index_for(targets)
        if index.value_id(predicted) is not None:
            return predicted, 0
        # Any target is within max(len(predicted), longest target), and
        # at that cap both filters are vacuous, so the loop terminates
        # with the full column as candidates at the latest.
        max_cap = max(len(predicted), index.max_length)
        cap = 1
        while cap <= max_cap:
            vids = index.candidates(predicted, cap)
            if vids.size:
                batch_codes, batch_lengths = index.batch_codes(vids)
                distances = edit_distance_codes(
                    predicted, batch_codes, batch_lengths, cap
                )
                best = int(distances.min())
                if best <= cap:
                    tied = vids[distances == best]
                    winner = tied[np.argmin(index.first_rows[tied])]
                    return index.values[winner], best
            if cap == max_cap:
                break
            cap = min(cap * 2, max_cap)
        raise RuntimeError(
            "q-gram blocking produced no match at a vacuous cap; "
            "the completeness invariant is broken"
        )

    def match_many(
        self, predicted: str, targets: Sequence[str], lower: int = 0, upper: int = 0
    ) -> list[tuple[str, int]]:
        """Identical contract to :meth:`EditDistanceJoiner.match_many`."""
        self._validate_many(targets, lower, upper)
        if predicted == "":
            return []
        index = self._index_for(targets)
        vids = index.candidates(predicted, upper)
        if not vids.size:
            return []
        batch_codes, batch_lengths = index.batch_codes(vids)
        distances = edit_distance_codes(predicted, batch_codes, batch_lengths, upper)
        keep = (distances >= lower) & (distances <= upper)
        # The brute scan appends in row order and sorts stably by
        # distance, i.e. orders by (distance, row); duplicate values
        # contribute one entry per row.
        entries = [
            (int(distance), row, int(vid))
            for vid, distance in zip(vids[keep], distances[keep])
            for row in index.rows_for(int(vid))
        ]
        entries.sort(key=lambda item: (item[0], item[1]))
        return [(index.values[vid], distance) for distance, _, vid in entries]


class AutoJoiner(EditDistanceJoiner):
    """Size-adaptive strategy: brute below ``threshold`` rows, else blocked.

    Index construction is linear in the column with a noticeable
    constant, so tiny columns (the common per-table benchmark case) stay
    on the scalar scan while large columns get sub-linear candidate
    generation.  Both delegates are exactly equivalent, so the switch
    never changes results.

    Args:
        threshold: Minimum target-column length (in rows) at which the
            q-gram engine takes over.
        max_distance: As in :class:`EditDistanceJoiner`.
        normalized_threshold: As in :class:`EditDistanceJoiner`.
        q: Gram size for the blocked delegate.
    """

    DEFAULT_THRESHOLD = 256

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        max_distance: int | None = None,
        normalized_threshold: float | None = None,
        q: int = 2,
    ) -> None:
        super().__init__(
            max_distance=max_distance, normalized_threshold=normalized_threshold
        )
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self._brute = EditDistanceJoiner(
            max_distance=max_distance, normalized_threshold=normalized_threshold
        )
        self._indexed = IndexedJoiner(
            max_distance=max_distance,
            normalized_threshold=normalized_threshold,
            q=q,
        )

    def _delegate(self, targets: Sequence[str]) -> EditDistanceJoiner:
        delegate = (
            self._indexed if len(targets) >= self.threshold else self._brute
        )
        # Thresholds are read from this wrapper on every call so that
        # post-construction mutation (joiner.max_distance = 2) behaves
        # exactly as it does on a plain EditDistanceJoiner.
        delegate.max_distance = self.max_distance
        delegate.normalized_threshold = self.normalized_threshold
        return delegate

    def match(self, predicted: str, targets: Sequence[str]) -> tuple[str | None, int]:
        return self._delegate(targets).match(predicted, targets)

    def match_many(
        self, predicted: str, targets: Sequence[str], lower: int = 0, upper: int = 0
    ) -> list[tuple[str, int]]:
        return self._delegate(targets).match_many(predicted, targets, lower, upper)


def make_joiner(
    strategy: str = "auto",
    *,
    max_distance: int | None = None,
    normalized_threshold: float | None = None,
    q: int = 2,
    auto_threshold: int = AutoJoiner.DEFAULT_THRESHOLD,
) -> EditDistanceJoiner:
    """Build a join strategy by name.

    Args:
        strategy: ``"brute"`` (scalar scan), ``"indexed"`` (q-gram
            blocked), or ``"auto"`` (switch on target-column size).
        max_distance: Passed to the joiner.
        normalized_threshold: Passed to the joiner.
        q: Gram size for the blocked strategies.
        auto_threshold: Row-count switch point for ``"auto"``.
    """
    if strategy == "brute":
        return EditDistanceJoiner(
            max_distance=max_distance, normalized_threshold=normalized_threshold
        )
    if strategy == "indexed":
        return IndexedJoiner(
            max_distance=max_distance,
            normalized_threshold=normalized_threshold,
            q=q,
        )
    if strategy == "auto":
        return AutoJoiner(
            threshold=auto_threshold,
            max_distance=max_distance,
            normalized_threshold=normalized_threshold,
            q=q,
        )
    raise ValueError(
        f"unknown join strategy {strategy!r}; expected 'brute', 'indexed', or 'auto'"
    )

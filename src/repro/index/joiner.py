"""Blocked join strategies, drop-in compatible with the brute joiner.

:class:`IndexedJoiner` resolves Eq. 5's argmin through a
:class:`~repro.index.qgram.QGramIndex` plus the batched DP kernel, with
**exact equivalence** to :class:`~repro.core.joiner.EditDistanceJoiner`:
identical matches, distances, earliest-row tie-breaking, and
``max_distance`` / ``normalized_threshold`` semantics.  The argmin uses
iterative cap deepening — candidates within cap ``k`` are generated
(provably completely), scored, and if none scores ``<= k`` the cap
doubles; because the candidate set at cap ``k`` contains *every* target
within ``k``, the first round that finds a distance ``<= k`` has found
the global minimum and all its ties.

Two batch layers amortize that work across a whole source column:

* :meth:`IndexedJoiner.join_many` deduplicates identical probes,
  resolves exact matches with one dictionary lookup each, buckets the
  remaining probes by length, and runs candidate generation and the
  pair DP kernel per bucket — one kernel sweep per (bucket, cap) round
  instead of one per probe.  Cap deepening **reuses scores**: the cap-1
  round scores its candidates with a cap-2 kernel, so the cap-2 round
  scores only the candidates the wider filters newly admit.
* A process-level :class:`~repro.index.cache.IndexCache` shares one
  index per target-column *content* (entries are keyed on the column
  values themselves, so stale or aliased indexes are impossible)
  across joiners, pipelines, and eval runs — optionally backed by an
  on-disk tier shared across processes.

Above a workload threshold (or at an explicit ``n_workers``),
``join_many`` shards its buckets across a **persistent** process pool
(:mod:`repro.index.parallel`) with a deterministic merge; the pool —
and each worker's resolved indexes — survive across calls, so repeated
joins pay worker startup once.  Results are byte-identical to the
serial engine in every configuration.  Long-lived owners should
``close()`` the joiner (or use it as a context manager) to tear the
pool down deterministically.

:class:`AutoJoiner` picks the brute scan for small target columns (where
index construction dominates) and the blocked engine above a row-count
threshold.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.join_config import JoinConfig, fold_legacy_kwargs
from repro.core.joiner import EditDistanceJoiner
from repro.exceptions import JoinError
from repro.index.cache import IndexCache, default_index_cache
from repro.index.kernel import encode_strings
from repro.index.kernels import pairs_scored_snapshot
from repro.index.qgram import QGramIndex
from repro.obs.trace import get_tracer

if TYPE_CHECKING:
    from repro.index.parallel import JoinStats, JoinWorkerPool


class IndexedJoiner(EditDistanceJoiner):
    """Q-gram-blocked edit-distance joiner (exactly equivalent to brute).

    Indexes are obtained from an :class:`IndexCache` keyed by the
    target column's content, so equal columns share one index across
    joiners and any mutation of a cached column — including same-length
    in-place cell edits — is detected and forces a rebuild.

    Args:
        config: All tunables in one frozen
            :class:`~repro.core.JoinConfig` — thresholds, ``q``
            (``None`` = adaptive per column via
            :func:`~repro.index.qgram.adaptive_q`), ``n_workers``
            (``None`` auto-picks ``os.cpu_count()`` capped when a batch
            has at least ``parallel_threshold`` unresolved probes and
            runs serially below; ``1`` forces serial; ``>= 2`` always
            shards — results are byte-identical in every
            configuration), ``parallel_threshold``, and the
            ``mode``/``k``/``margin`` query defaults.
        cache: Index cache to use; ``None`` means the process-wide
            shared cache (:func:`~repro.index.cache.default_index_cache`).
            An object dependency, so it stays a direct argument rather
            than a config field.
        max_distance, normalized_threshold, q, n_workers,
            parallel_threshold: Deprecated — pass ``JoinConfig(...)``.

    Attributes:
        last_join_stats: :class:`~repro.index.parallel.JoinStats` for
            the most recent :meth:`join_many` call (``None`` before the
            first call).
    """

    DEFAULT_PARALLEL_THRESHOLD = 4096
    # Auto mode never spawns more workers than this, however many cores
    # the host reports: shard planning targets a few shards per worker,
    # and past ~8 workers pool startup and result pickling outweigh the
    # extra parallelism for column-scale batches.
    _MAX_AUTO_WORKERS = 8

    # Cells (distance-row entries) per pair-DP chunk: sized so the
    # sweep's working set stays cache-resident (int32 rows, a few
    # buffers) — measurably faster than streaming one huge block.
    _PAIR_CELL_BUDGET = 1 << 16
    # Pairs per assembly group: bounds the concatenated vids/distances
    # arrays of a (bucket, cap) round regardless of how many candidate
    # pairs the filters admit.
    _PAIR_GROUP_BUDGET = 1 << 22
    # Length-difference radius of the final stage's first wave: the
    # near-length slice of the column that almost always contains the
    # argmin, scored first to tighten the bound for the wide wave.
    _NEAR_LENGTHS = 2

    def __init__(
        self,
        config: JoinConfig | None = None,
        *,
        cache: IndexCache | None = None,
        max_distance: int | None = None,
        normalized_threshold: float | None = None,
        q: int | None = None,
        n_workers: int | None = None,
        parallel_threshold: int | None = None,
    ) -> None:
        config = fold_legacy_kwargs(
            "IndexedJoiner",
            config,
            max_distance=max_distance,
            normalized_threshold=normalized_threshold,
            q=q,
            n_workers=n_workers,
            parallel_threshold=parallel_threshold,
        )
        super().__init__(config)
        self.q = config.q
        self.cache = cache if cache is not None else default_index_cache()
        self.n_workers = config.n_workers
        self.parallel_threshold = config.parallel_threshold
        self.last_join_stats: JoinStats | None = None
        self._pool: JoinWorkerPool | None = None

    def _index_for(self, targets: Sequence[str]) -> QGramIndex:
        return self.cache.get(targets, q=self.q)

    def _resolve_workers(self, pending: int) -> int:
        """Worker count for a batch with ``pending`` unresolved probes."""
        if self.n_workers is not None:
            return self.n_workers if pending else 1
        if pending >= self.parallel_threshold:
            return max(1, min(os.cpu_count() or 1, self._MAX_AUTO_WORKERS))
        return 1

    def _ensure_pool(self, n_workers: int) -> JoinWorkerPool:
        """Get the persistent worker pool, (re)building it on demand.

        One pool lives across ``join_many`` calls — worker startup and
        per-worker index resolution amortize over every batch the
        joiner ever runs — and is replaced only when the resolved
        worker count changes (auto mode crossing a threshold) or after
        an explicit :meth:`close`.
        """
        from repro.index.parallel import JoinWorkerPool

        pool = self._pool
        if pool is not None and (pool.closed or pool.n_workers != n_workers):
            pool.close()
            pool = None
        if pool is None:
            pool = JoinWorkerPool(
                n_workers,
                self.cache,
                q=self.q,
                kernel_backend=self.kernel.name,
            )
            self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the persistent worker pool (if one was started).

        The joiner remains usable — the next parallel batch simply
        starts a fresh pool — so ``close()`` is safe to call from
        teardown paths that might race a late caller.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _argmin(self, predicted: str, targets: Sequence[str]) -> tuple[str, int]:
        """Earliest-row argmin via the blocked index (same contract as brute).

        Guards and threshold rejection stay in the shared
        :meth:`EditDistanceJoiner.match` / ``_apply_thresholds``; only
        the argmin strategy differs.  A scalar match is simply a
        single-probe bucket, so it shares the batch engine's whole
        ladder — including score reuse and the upper-bound waves.
        """
        index = self._index_for(targets)
        if index.value_id(predicted) is not None:
            return predicted, 0
        vid, best = self._argmin_bucket(index, len(predicted), [predicted])[
            predicted
        ]
        return index.values[vid], best

    def join_many(
        self, probes: Sequence[str], targets: Sequence[str]
    ) -> list[tuple[str | None, int]]:
        """Batched :meth:`match` over a whole probe column.

        Byte-identical to ``[self.match(p, targets) for p in probes]``
        — same matches, distances, earliest-row tie-breaks, and
        threshold abstentions — but the work is amortized: the column
        hash and index lookup happen once, identical probes are
        resolved once, exact matches cost one dictionary lookup, and
        the remaining probes run through bucketed candidate generation
        plus the pair DP kernel.  Above the parallel threshold (or at
        an explicit ``n_workers``) the buckets are sharded across a
        process pool with a deterministic merge; per-probe results do
        not depend on which other probes share a shard, so the sharded
        output is byte-identical too.  Counters for the call land in
        :attr:`last_join_stats`.
        """
        if not probes:
            return []
        if not targets:
            raise JoinError("cannot join into an empty target column")
        # Imported lazily: parallel imports this module for its
        # worker-side scoring, so a module-level import would cycle.
        from repro.index.parallel import JoinStats

        tracer = get_tracer()
        join_span = tracer.start_span("join.join_many")
        cache_hits = self.cache.hits
        cache_misses = self.cache.misses
        disk_hits = self.cache.disk_hits
        disk_misses = self.cache.disk_misses
        pairs_before = pairs_scored_snapshot()
        # Dedupe: every occurrence of a probe value gets the one result.
        positions: dict[str, list[int]] = {}
        for i, probe in enumerate(probes):
            positions.setdefault(probe, []).append(i)
        try:
            phase_start = time.monotonic()
            index = self._index_for(targets)
            tracer.record_span(
                "join.index_build",
                join_span,
                phase_start,
                time.monotonic(),
                attributes={"targets": len(targets)},
            )
            resolved: dict[str, tuple[str | None, int]] = {}
            buckets: dict[int, list[str]] = {}
            exact_matches = 0
            empty_probes = 0
            phase_start = time.monotonic()
            for probe in positions:
                if probe == "":
                    # Abstention (footnote 2): no match, before thresholds.
                    resolved[probe] = (None, 0)
                    empty_probes += 1
                elif index.value_id(probe) is not None:
                    resolved[probe] = self._apply_thresholds(probe, 0)
                    exact_matches += 1
                else:
                    buckets.setdefault(len(probe), []).append(probe)
            pending = sum(len(bucket) for bucket in buckets.values())
            tracer.record_span(
                "join.candidate_filter",
                join_span,
                phase_start,
                time.monotonic(),
                attributes={
                    "unique_probes": len(positions),
                    "exact_matches": exact_matches,
                    "empty_probes": empty_probes,
                    "pending": pending,
                },
            )
            n_workers = self._resolve_workers(pending)
            phase_start = time.monotonic()
            if n_workers > 1 and pending:
                argmins, pool_stats = self._ensure_pool(n_workers).run_buckets(
                    index, buckets, targets
                )
                n_workers = pool_stats.workers
                shards = pool_stats.shards
                shard_sizes = pool_stats.shard_sizes
                worker_disk_hits = pool_stats.disk_hits
                worker_disk_misses = pool_stats.disk_misses
                worker_pairs = pool_stats.kernel_pairs
            else:
                n_workers = 1
                shards = 0
                shard_sizes = ()
                worker_disk_hits = 0
                worker_disk_misses = 0
                worker_pairs = ()
                argmins = {}
                for length, bucket in buckets.items():
                    argmins.update(self._argmin_bucket(index, length, bucket))
            tracer.record_span(
                "join.kernel_sweep",
                join_span,
                phase_start,
                time.monotonic(),
                attributes={
                    "buckets": len(buckets),
                    "n_workers": n_workers,
                    "shards": shards,
                    "kernel_backend": self.kernel.name,
                },
            )
        except BaseException as error:
            join_span.set_error(repr(error))
            join_span.finish()
            raise
        for probe, (vid, distance) in argmins.items():
            resolved[probe] = self._apply_thresholds(index.values[vid], distance)
        kernel_pairs = {
            name: count - pairs_before.get(name, 0)
            for name, count in pairs_scored_snapshot().items()
        }
        for name, count in worker_pairs:
            kernel_pairs[name] = kernel_pairs.get(name, 0) + count
        self.last_join_stats = JoinStats(
            probes=len(probes),
            unique_probes=len(positions),
            exact_matches=exact_matches,
            empty_probes=empty_probes,
            pending=pending,
            buckets=len(buckets),
            n_workers=n_workers,
            shards=shards,
            shard_sizes=tuple(shard_sizes),
            cache_hits=self.cache.hits - cache_hits,
            cache_misses=self.cache.misses - cache_misses,
            disk_hits=self.cache.disk_hits - disk_hits + worker_disk_hits,
            disk_misses=self.cache.disk_misses - disk_misses + worker_disk_misses,
            kernel_backend=self.kernel.name,
            kernel_pairs=tuple(
                sorted(
                    (name, count)
                    for name, count in kernel_pairs.items()
                    if count
                )
            ),
        )
        join_span.set_attributes(self.last_join_stats.as_dict())
        join_span.finish()
        results: list[tuple[str | None, int]] = [(None, 0)] * len(probes)
        for probe, rows in positions.items():
            result = resolved[probe]
            for i in rows:
                results[i] = result
        return results

    def topk_many(
        self, probes: Sequence[str], targets: Sequence[str], k: int
    ) -> list[list[tuple[int, int, str]]]:
        """Blocked top-k, byte-identical to the brute reference.

        Same dedupe/bucketing frame as :meth:`join_many`; each bucket
        resolves through :meth:`_topk_bucket` (one bound round plus one
        provably sufficient candidate round).  There is no exact-match
        short-circuit — a top-k query needs the runners-up regardless —
        and no per-probe thresholds here; selection/abstention live in
        the shared :meth:`EditDistanceJoiner.topk_join_many`.  Above
        the parallel threshold the buckets shard across the persistent
        worker pool with a deterministic per-probe merge.
        """
        self._validate_topk(targets, k)
        if not probes:
            return []
        positions: dict[str, list[int]] = {}
        for i, probe in enumerate(probes):
            positions.setdefault(probe, []).append(i)
        index = self._index_for(targets)
        resolved: dict[str, list[tuple[int, int, str]]] = {}
        buckets: dict[int, list[str]] = {}
        for probe in positions:
            if probe == "":
                resolved[probe] = []
            else:
                buckets.setdefault(len(probe), []).append(probe)
        pending = sum(len(bucket) for bucket in buckets.values())
        n_workers = self._resolve_workers(pending)
        ranked: dict[str, list[tuple[int, int]]]
        if n_workers > 1 and pending:
            ranked, _ = self._ensure_pool(n_workers).run_buckets(
                index, buckets, targets, k=k
            )
        else:
            ranked = {}
            for length, bucket in buckets.items():
                ranked.update(self._topk_bucket(index, length, bucket, k))
        for probe, pairs in ranked.items():
            resolved[probe] = [
                (distance, int(index.first_rows[vid]), index.values[vid])
                for distance, vid in pairs
            ]
        return [list(resolved[probe]) for probe in probes]

    def _topk_bucket(
        self, index: QGramIndex, length: int, probes: list[str], k: int
    ) -> dict[str, list[tuple[int, int]]]:
        """Ranked ``probe -> [(distance, value_id), ...]`` for one bucket.

        Reuses the argmin ladder's machinery but needs only **one
        extra cap round** beyond the bound probe: exact distances to at
        least ``k`` plausible neighbour values (max-gram-overlap
        targets unioned with the ``k`` nearest-by-length values) make
        the ``k``-th smallest of them a provable upper bound on the
        ``k``-th best distance, so one ``candidates_bucket`` round at
        that bound contains the entire top-k with exact scores.  Like
        :meth:`_argmin_bucket`, each probe's result depends only on
        ``(index, length, probe, k)`` — the basis for dedupe and
        parallel-shard equivalence.
        """
        n_values = len(index.values)
        kk = min(k, n_values)
        vacuous = max(length, index.max_length)
        probe_codes, _ = encode_strings(probes)
        if n_values <= k:
            # The whole column ranks: score every value exactly once.
            all_vids = np.arange(n_values, dtype=np.int64)
            cand_lists = [all_vids] * len(probes)
            dist_lists = self._scored_lists(index, probe_codes, cand_lists, vacuous)
            return {
                probe: self._rank_topk(index, cand_lists[j], dist_lists[j], kk)
                for j, probe in enumerate(probes)
            }
        neighbour_lists = index.overlap_best(probes, length, k=kk)
        # Guarantee >= kk distinct neighbour values per probe so the
        # kk-th smallest exact distance below is well defined.
        nearest = np.sort(
            np.argsort(np.abs(index.lengths - length), kind="stable")[:kk]
        )
        neighbour_lists = [
            np.union1d(neighbours, nearest) for neighbours in neighbour_lists
        ]
        bound_dists = self._scored_lists(
            index, probe_codes, neighbour_lists, vacuous
        )
        by_bound: dict[int, list[int]] = {}
        for j, dists in enumerate(bound_dists):
            bound = int(np.partition(dists, kk - 1)[kk - 1])
            by_bound.setdefault(bound, []).append(j)
        resolved: dict[str, list[tuple[int, int]]] = {}
        for bound, rows in sorted(by_bound.items()):
            group = [probes[j] for j in rows]
            cand_lists = index.candidates_bucket(group, length, bound)
            dist_lists = self._scored_lists(
                index, probe_codes[rows], cand_lists, bound
            )
            for j, cands, dists in zip(rows, cand_lists, dist_lists, strict=True):
                keep = dists <= bound
                ranked = self._rank_topk(index, cands[keep], dists[keep], kk)
                if len(ranked) < kk:
                    raise RuntimeError(
                        "q-gram blocking missed top-k candidates within a "
                        "proven upper bound; the completeness invariant is "
                        "broken"
                    )
                resolved[probes[j]] = ranked
        return resolved

    @staticmethod
    def _rank_topk(
        index: QGramIndex,
        cands: np.ndarray,
        dists: np.ndarray,
        kk: int,
    ) -> list[tuple[int, int]]:
        """Top ``kk`` candidates by ``(distance, earliest row)``."""
        order = np.lexsort((index.first_rows[cands], dists))[:kk]
        return [(int(dists[i]), int(cands[i])) for i in order]

    def join_composite(
        self,
        probes: Sequence[Sequence[str]],
        target_columns: Sequence[Sequence[str]],
    ) -> list[tuple[int | None, int]]:
        """Blocked composite join, byte-identical to the brute reference.

        Each target column gets its own cached q-gram index; a probe
        resolves by intersecting per-column candidate **row** sets at a
        summed-distance cap (complete, because a row with summed
        distance ``<= K`` is within ``K`` in every column), scoring the
        surviving rows exactly, and deepening the cap until the best
        scored sum is proven global.  Thresholds apply through the
        shared :meth:`EditDistanceJoiner._apply_composite_thresholds`.
        Above the parallel threshold the deduplicated probes shard
        across the persistent worker pool.
        """
        columns = self._validate_composite(probes, target_columns)
        positions: dict[tuple[str, ...], list[int]] = {}
        for i, probe in enumerate(probes):
            positions.setdefault(tuple(probe), []).append(i)
        resolved: dict[tuple[str, ...], tuple[int | None, int]] = {}
        pending = [
            probe
            for probe in positions
            if not all(part == "" for part in probe)
        ]
        for probe in positions:
            if all(part == "" for part in probe):
                resolved[probe] = (None, 0)
        if pending:
            indexes = [self.cache.get(column, q=self.q) for column in columns]
            n_workers = self._resolve_workers(len(pending))
            if n_workers > 1:
                argmins = self._ensure_pool(n_workers).run_composite(
                    indexes, pending, columns
                )
            else:
                row_vids = [self._row_value_ids(index) for index in indexes]
                argmins = {
                    probe: self._composite_argmin(indexes, row_vids, probe)
                    for probe in pending
                }
            for probe, (best_row, best_sum, matched_length) in argmins.items():
                resolved[probe] = self._apply_composite_thresholds(
                    best_row, best_sum, matched_length
                )
        results: list[tuple[int | None, int]] = [(None, 0)] * len(probes)
        for probe, rows in positions.items():
            result = resolved[probe]
            for i in rows:
                results[i] = result
        return results

    @staticmethod
    def _row_value_ids(index: QGramIndex) -> np.ndarray:
        """Map each target row to its value id, derived from the index.

        Index-only on purpose: parallel workers hold the resolved index
        but (on the warm path) never see the raw column bytes.
        """
        n_values = len(index.values)
        n_rows = sum(len(index.rows_for(vid)) for vid in range(n_values))
        out = np.empty(n_rows, dtype=np.int64)
        for vid in range(n_values):
            out[np.asarray(index.rows_for(vid), dtype=np.int64)] = vid
        return out

    def _composite_argmin(
        self,
        indexes: list[QGramIndex],
        row_vids: list[np.ndarray],
        probe: tuple[str, ...],
    ) -> tuple[int, int, int]:
        """Earliest-row argmin of the summed per-column distance.

        Returns ``(best_row, best_sum, matched_length)`` where
        ``matched_length`` is the total tuple length of the winning row
        (the normalized-threshold denominator).  Cap deepening: if any
        intersected candidate row scores within the cap its sum is the
        proven global minimum (every row within the cap survives the
        per-column filters); otherwise the best scored sum is a proven
        upper bound, so the next round at that cap must resolve.
        """
        vacuous_cols = [
            max(len(part), index.max_length)
            for part, index in zip(probe, indexes, strict=True)
        ]
        total_vacuous = sum(vacuous_cols)
        cap = 1
        while True:
            cap = min(cap, total_vacuous)
            row_set: set[int] | None = None
            for part, index, vacuous in zip(
                probe, indexes, vacuous_cols, strict=True
            ):
                vids = index.candidates(part, min(cap, vacuous))
                rows: set[int] = set()
                for vid in vids:
                    rows.update(int(r) for r in index.rows_for(int(vid)))
                row_set = rows if row_set is None else row_set & rows
                if not row_set:
                    break
            if row_set:
                rows_arr = np.fromiter(
                    sorted(row_set), dtype=np.int64, count=len(row_set)
                )
                totals = np.zeros(rows_arr.size, dtype=np.int64)
                for part, index, vacuous, vids in zip(
                    probe, indexes, vacuous_cols, row_vids, strict=True
                ):
                    unique_vids, inverse = np.unique(
                        vids[rows_arr], return_inverse=True
                    )
                    codes, lengths = index.batch_codes(unique_vids)
                    distances = self.kernel.edit_distance_codes(
                        part, codes, lengths, vacuous
                    )
                    totals += distances[inverse]
                # rows_arr ascends, so argmin lands on the earliest row.
                best_pos = int(np.argmin(totals))
                best_sum = int(totals[best_pos])
                if best_sum <= cap:
                    best_row = int(rows_arr[best_pos])
                    matched_length = sum(
                        len(index.values[int(vids[best_row])])
                        for index, vids in zip(indexes, row_vids, strict=True)
                    )
                    return best_row, best_sum, matched_length
                cap = best_sum
            else:
                if cap >= total_vacuous:
                    raise RuntimeError(
                        "composite candidate intersection empty at the "
                        "vacuous cap; the completeness invariant is broken"
                    )
                cap *= 2

    def _argmin_bucket(
        self, index: QGramIndex, length: int, probes: list[str]
    ) -> dict[str, tuple[int, int]]:
        """Blocked argmin for a bucket of same-length probes.

        Returns ``probe -> (winner_value_id, distance)``; value ids
        keep the hot path (and the parallel workers' result payloads)
        in integer space — callers map ids back to strings through the
        index.  Each probe's result depends only on ``(index, length,
        probe)``, never on which other probes share the bucket, which
        is what makes both probe deduplication and parallel sharding
        byte-identical to the serial scan.

        Two cheap rounds at caps 1 and 2 resolve the near probes — the
        common case for model predictions — on small count-filtered
        candidate blocks, scoring each candidate **once** across the
        ladder (the cap-1 round already scores with the cap-2 kernel,
        so the cap-2 round only scores newly admitted candidates).
        Every probe still unresolved then gets an **upper bound** (the
        exact distance to its max-gram-overlap targets) and finishes in
        two waves, no cap ladder needed:

        * **Wave 1** scores only the near-length candidates
          (``|len - length| <= 2``) at the bound.  The argmin almost
          always lives there, so the wave-1 minimum ``b1`` is a much
          tighter upper bound (``b1 <= bound`` always, since the
          candidate set at the bound provably contains the argmin or
          wave 2 covers it).
        * **Wave 2** scores the remaining candidates at cap ``b1`` —
          any target beating or tying ``b1`` is within edit distance
          ``b1``, hence within the ``b1`` length window and count
          filter — with the kernel's per-pair settlement trimming
          doomed pairs after about ``b1`` DP steps.

        This is the batched analogue of the brute scan's best-so-far
        pruning: far/garbage probes scan the wide part of the column
        exactly once, against the tightest bound known.
        """
        resolved: dict[str, tuple[int, int]] = {}
        pending = self._ladder_rounds(index, length, probes, resolved)
        if not pending:
            return resolved
        probe_codes, _ = encode_strings(pending)
        bounds = self._upper_bounds(index, length, pending, probe_codes)
        by_bound: dict[int, list[int]] = {}
        for j, bound in enumerate(bounds):
            by_bound.setdefault(int(bound), []).append(j)
        near_scores: dict[int, tuple[int, np.ndarray]] = {}
        by_refined: dict[int, list[int]] = {}
        for bound, rows in sorted(by_bound.items()):
            group = [pending[j] for j in rows]
            cand_lists = index.candidates_bucket(group, length, bound)
            near_lists = [
                cands[np.abs(index.lengths[cands] - length) <= self._NEAR_LENGTHS]
                for cands in cand_lists
            ]
            wave1 = self._wave_scores(
                index, probe_codes[rows], near_lists, bound
            )
            for j, score in zip(rows, wave1, strict=True):
                near_scores[j] = score
                by_refined.setdefault(min(bound, score[0]), []).append(j)
        for refined, rows in sorted(by_refined.items()):
            group = [pending[j] for j in rows]
            group_codes = probe_codes[rows]
            cand_lists = index.candidates_bucket(group, length, refined)
            far_lists = [
                cands[np.abs(index.lengths[cands] - length) > self._NEAR_LENGTHS]
                for cands in cand_lists
            ]
            wave2 = self._wave_scores(index, group_codes, far_lists, refined)
            for j, probe, (far_best, far_tied) in zip(
                rows, group, wave2, strict=True
            ):
                near_best, near_tied = near_scores[j]
                best = min(near_best, far_best)
                if best > refined:
                    raise RuntimeError(
                        "q-gram blocking missed a match within a proven "
                        "upper bound; the completeness invariant is broken"
                    )
                waves = ((near_best, near_tied), (far_best, far_tied))
                tied = np.concatenate(
                    [tied for tied_best, tied in waves if tied_best == best]
                )
                winner = tied[np.argmin(index.first_rows[tied])]
                resolved[probe] = (int(winner), best)
        return resolved

    def _ladder_rounds(
        self,
        index: QGramIndex,
        length: int,
        probes: list[str],
        resolved: dict[str, tuple[int, int]],
    ) -> list[str]:
        """Caps-1-and-2 rounds with score reuse across the deepening.

        The cap-1 candidates are scored once with a **cap-2 kernel**
        (the lookahead costs a little settlement slack but yields exact
        distances up to 2), so when a probe survives to the cap-2
        round, only the candidates the wider filters *newly* admit are
        scored — the previous round's candidates are never re-scored.
        Resolution stays byte-identical to independent rounds: a
        distance within cap 1 is the same number under either kernel
        cap, candidate sets are monotone in the cap, and reused scores
        clamped at 3 (beyond the lookahead) can never win a cap-2
        round.  Resolves probes into ``resolved`` (as
        ``(winner_value_id, distance)``) and returns the survivors.
        """
        max_cap = max(length, index.max_length)
        lookahead = min(2, max_cap)
        probe_codes, _ = encode_strings(probes)
        cand_lists = index.candidates_bucket(probes, length, min(1, max_cap))
        dist_lists = self._scored_lists(index, probe_codes, cand_lists, lookahead)
        survivors: list[int] = []
        for j, probe in enumerate(probes):
            segment = dist_lists[j]
            if segment.size:
                best = int(segment.min())
                if best <= 1:
                    tied = cand_lists[j][segment == best]
                    winner = tied[np.argmin(index.first_rows[tied])]
                    resolved[probe] = (int(winner), best)
                    continue
            survivors.append(j)
        if not survivors or max_cap < 2:
            return [probes[j] for j in survivors]
        rem = [probes[j] for j in survivors]
        wide_lists = index.candidates_bucket(rem, length, 2)
        # Newly admitted candidates only: both arrays are ascending, so
        # a searchsorted membership test keeps the set difference O(n).
        fresh_lists: list[np.ndarray] = []
        for j, wide in zip(survivors, wide_lists, strict=True):
            narrow = cand_lists[j]
            if not narrow.size:
                fresh_lists.append(wide)
                continue
            slot = np.searchsorted(narrow, wide)
            slot[slot == narrow.size] = narrow.size - 1
            fresh_lists.append(wide[narrow[slot] != wide])
        fresh_dists = self._scored_lists(
            index, probe_codes[survivors], fresh_lists, lookahead
        )
        still: list[str] = []
        for j, probe, fresh, fresh_d in zip(
            survivors, rem, fresh_lists, fresh_dists, strict=True
        ):
            vids = np.concatenate((cand_lists[j], fresh))
            dists = np.concatenate((dist_lists[j], fresh_d))
            if not vids.size:
                still.append(probe)
                continue
            best = int(dists.min())
            if best > 2:
                still.append(probe)
                continue
            tied = vids[dists == best]
            winner = tied[np.argmin(index.first_rows[tied])]
            resolved[probe] = (int(winner), best)
        return still

    def _scored_lists(
        self,
        index: QGramIndex,
        probe_codes: np.ndarray,
        cand_lists: list[np.ndarray],
        cap: int,
    ) -> list[np.ndarray]:
        """Capped distances per probe over its candidate list.

        Scores all (probe, candidate) pairs with the lockstep pair DP
        in bounded groups; entry ``i`` aligns with ``cand_lists[i]``
        (distances above ``cap`` clamp to ``cap + 1``).
        """
        out: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * len(cand_lists)
        for start, stop in self._probe_groups(cand_lists):
            group_lists = cand_lists[start:stop]
            sizes = np.fromiter(
                (c.size for c in group_lists), dtype=np.int64, count=stop - start
            )
            vids = (
                np.concatenate(group_lists)
                if sizes.any()
                else np.empty(0, dtype=np.int64)
            )
            probe_rep = np.repeat(np.arange(start, stop), sizes)
            distances = self._pair_distances(
                probe_codes, probe_rep, vids, index, cap
            )
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            for j in range(start, stop):
                lo, hi = int(offsets[j - start]), int(offsets[j - start + 1])
                if lo != hi:
                    out[j] = distances[lo:hi]
        return out

    def _wave_scores(
        self,
        index: QGramIndex,
        probe_codes: np.ndarray,
        cand_lists: list[np.ndarray],
        cap: int,
    ) -> list[tuple[int, np.ndarray]]:
        """``(best, tied_value_ids)`` per probe over given candidates.

        Scores all (probe, candidate) pairs with the lockstep pair DP
        in bounded groups.  ``best`` is ``cap + 1`` (with an empty tie
        array) when no candidate scores within the cap; otherwise the
        ties are every candidate at exactly ``best``.
        """
        empty = np.empty(0, dtype=np.int64)
        results: list[tuple[int, np.ndarray]] = []
        dist_lists = self._scored_lists(index, probe_codes, cand_lists, cap)
        for cands, segment in zip(cand_lists, dist_lists, strict=True):
            best = int(segment.min()) if segment.size else cap + 1
            if best <= cap:
                results.append((best, cands[segment == best]))
            else:
                results.append((cap + 1, empty))
        return results

    def _upper_bounds(
        self,
        index: QGramIndex,
        length: int,
        pending: list[str],
        probe_codes: np.ndarray,
    ) -> np.ndarray:
        """Exact distance from each pending probe to a plausible neighbour.

        One small pair-DP batch (a few candidates per probe) against the
        max-gram-overlap targets from :meth:`QGramIndex.overlap_best`;
        the per-probe minimum upper-bounds the probe's best distance.
        """
        neighbour_lists = index.overlap_best(pending, length)
        sizes = np.fromiter(
            (a.size for a in neighbour_lists),
            dtype=np.int64,
            count=len(neighbour_lists),
        )
        vids = np.concatenate(neighbour_lists)
        probe_rep = np.repeat(np.arange(len(pending)), sizes)
        cand_codes, cand_lengths = index.batch_codes(vids)
        # Any target is within max(length, longest target), so the
        # distances come back exact.
        vacuous = max(length, index.max_length)
        distances = self.kernel.edit_distance_pairs(
            probe_codes[probe_rep], cand_codes, cand_lengths, vacuous
        )
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        return np.minimum.reduceat(distances, starts)

    def _probe_groups(
        self, cand_lists: list[np.ndarray]
    ) -> list[tuple[int, int]]:
        """Split a bucket round into probe slices of bounded pair count.

        Keeps one round's concatenated pair block within the cell
        budget even when a late (near-vacuous) cap admits most of the
        column for every probe.
        """
        groups: list[tuple[int, int]] = []
        start = 0
        accumulated = 0
        for j, candidates in enumerate(cand_lists):
            if accumulated and accumulated + candidates.size > self._PAIR_GROUP_BUDGET:
                groups.append((start, j))
                start = j
                accumulated = 0
            accumulated += candidates.size
        groups.append((start, len(cand_lists)))
        return groups

    def _pair_distances(
        self,
        probe_codes: np.ndarray,
        probe_rep: np.ndarray,
        vids: np.ndarray,
        index: QGramIndex,
        cap: int,
    ) -> np.ndarray:
        """Chunked pair-DP over ``(probe_rep[i], vids[i])`` pairs.

        Candidate codes are gathered per chunk so peak memory stays
        within the cell budget no matter how wide the index matrix is.
        Chunk boundaries come from the *actual* candidate lengths (the
        kernel pads each chunk only to its own longest candidate), so
        one pathological mega-cell in the column shrinks just the chunk
        that contains it instead of collapsing every chunk to a handful
        of pairs.
        """
        n = vids.size
        out = np.empty(n, dtype=np.int64)
        cells = np.cumsum(index.lengths[vids] + 1)
        lo = 0
        while lo < n:
            consumed = int(cells[lo - 1]) if lo else 0
            hi = int(
                np.searchsorted(
                    cells, consumed + self._PAIR_CELL_BUDGET, side="right"
                )
            )
            hi = max(lo + 1, min(hi, n))
            cand_codes, cand_lengths = index.batch_codes(vids[lo:hi])
            out[lo:hi] = self.kernel.edit_distance_pairs(
                probe_codes[probe_rep[lo:hi]], cand_codes, cand_lengths, cap
            )
            lo = hi
        return out

    def match_many(
        self, predicted: str, targets: Sequence[str], lower: int = 0, upper: int = 0
    ) -> list[tuple[str, int]]:
        """Identical contract to :meth:`EditDistanceJoiner.match_many`."""
        self._validate_many(targets, lower, upper)
        if predicted == "":
            return []
        index = self._index_for(targets)
        vids = index.candidates(predicted, upper)
        if not vids.size:
            return []
        batch_codes, batch_lengths = index.batch_codes(vids)
        distances = self.kernel.edit_distance_codes(
            predicted, batch_codes, batch_lengths, upper
        )
        keep = (distances >= lower) & (distances <= upper)
        # The brute scan appends in row order and sorts stably by
        # distance, i.e. orders by (distance, row); duplicate values
        # contribute one entry per row.
        entries = [
            (int(distance), row, int(vid))
            for vid, distance in zip(vids[keep], distances[keep], strict=True)
            for row in index.rows_for(int(vid))
        ]
        entries.sort(key=lambda item: (item[0], item[1]))
        return [(index.values[vid], distance) for distance, _, vid in entries]


class AutoJoiner(EditDistanceJoiner):
    """Size-adaptive strategy: brute below ``threshold`` rows, else blocked.

    Index construction is linear in the column with a noticeable
    constant, so tiny columns (the common per-table benchmark case) stay
    on the scalar scan while large columns get sub-linear candidate
    generation.  Both delegates are exactly equivalent, so the switch
    never changes results.

    Args:
        config: All tunables in one frozen
            :class:`~repro.core.JoinConfig`; ``auto_threshold`` is the
            minimum target-column length (in rows) at which the q-gram
            engine takes over.
        cache: Index cache for the blocked delegate (``None`` = the
            process-wide shared cache).
        threshold, max_distance, normalized_threshold, q, n_workers,
            parallel_threshold: Deprecated — pass ``JoinConfig(...)``
            (``threshold`` folds into ``auto_threshold``).
    """

    DEFAULT_THRESHOLD = 256

    def __init__(
        self,
        config: JoinConfig | None = None,
        *,
        cache: IndexCache | None = None,
        threshold: int | None = None,
        max_distance: int | None = None,
        normalized_threshold: float | None = None,
        q: int | None = None,
        n_workers: int | None = None,
        parallel_threshold: int | None = None,
    ) -> None:
        config = fold_legacy_kwargs(
            "AutoJoiner",
            config,
            auto_threshold=threshold,
            max_distance=max_distance,
            normalized_threshold=normalized_threshold,
            q=q,
            n_workers=n_workers,
            parallel_threshold=parallel_threshold,
        )
        super().__init__(config)
        self.threshold = config.auto_threshold
        self.last_join_stats: JoinStats | None = None
        self._brute = EditDistanceJoiner(config)
        self._indexed = IndexedJoiner(config, cache=cache)

    def _delegate(self, targets: Sequence[str]) -> EditDistanceJoiner:
        delegate = (
            self._indexed if len(targets) >= self.threshold else self._brute
        )
        # Thresholds and the query-surface defaults are read from this
        # wrapper on every call so that post-construction mutation
        # (joiner.max_distance = 2) behaves exactly as it does on a
        # plain EditDistanceJoiner.
        delegate.max_distance = self.max_distance
        delegate.normalized_threshold = self.normalized_threshold
        delegate.mode = self.mode
        delegate.k = self.k
        delegate.margin = self.margin
        return delegate

    def match(self, predicted: str, targets: Sequence[str]) -> tuple[str | None, int]:
        return self._delegate(targets).match(predicted, targets)

    def join_many(
        self, probes: Sequence[str], targets: Sequence[str]
    ) -> list[tuple[str | None, int]]:
        delegate = self._delegate(targets)
        results = delegate.join_many(probes, targets)
        # Surface the blocked delegate's batch counters (the brute scan
        # keeps none) so eval reports see stats wherever they exist.
        self.last_join_stats = getattr(delegate, "last_join_stats", None)
        return results

    def match_many(
        self, predicted: str, targets: Sequence[str], lower: int = 0, upper: int = 0
    ) -> list[tuple[str, int]]:
        return self._delegate(targets).match_many(predicted, targets, lower, upper)

    def topk_many(
        self, probes: Sequence[str], targets: Sequence[str], k: int
    ) -> list[list[tuple[int, int, str]]]:
        return self._delegate(targets).topk_many(probes, targets, k)

    def join_composite(
        self,
        probes: Sequence[Sequence[str]],
        target_columns: Sequence[Sequence[str]],
    ) -> list[tuple[int | None, int]]:
        first = target_columns[0] if target_columns else ()
        return self._delegate(first).join_composite(probes, target_columns)

    def close(self) -> None:
        """Tear down the blocked delegate's persistent worker pool."""
        self._indexed.close()


def make_joiner(
    strategy: str = "auto",
    config: JoinConfig | None = None,
    *,
    cache: IndexCache | None = None,
    max_distance: int | None = None,
    normalized_threshold: float | None = None,
    q: int | None = None,
    auto_threshold: int | None = None,
    n_workers: int | None = None,
    parallel_threshold: int | None = None,
) -> EditDistanceJoiner:
    """Build a join strategy by name.

    Args:
        strategy: ``"brute"`` (scalar scan), ``"indexed"`` (q-gram
            blocked), or ``"auto"`` (switch on target-column size).
        config: All tunables in one frozen
            :class:`~repro.core.JoinConfig` (thresholds, ``q``,
            ``auto_threshold``, worker-pool settings, and the
            ``mode``/``k``/``margin`` query defaults).
        cache: Index cache for the blocked strategies (``None`` = the
            process-wide shared cache).
        max_distance, normalized_threshold, q, auto_threshold,
            n_workers, parallel_threshold: Deprecated — pass
            ``JoinConfig(...)``.
    """
    config = fold_legacy_kwargs(
        "make_joiner",
        config,
        max_distance=max_distance,
        normalized_threshold=normalized_threshold,
        q=q,
        auto_threshold=auto_threshold,
        n_workers=n_workers,
        parallel_threshold=parallel_threshold,
    )
    if strategy == "brute":
        return EditDistanceJoiner(config)
    if strategy == "indexed":
        return IndexedJoiner(config, cache=cache)
    if strategy == "auto":
        return AutoJoiner(config, cache=cache)
    raise ValueError(
        f"unknown join strategy {strategy!r}; expected 'brute', 'indexed', or 'auto'"
    )

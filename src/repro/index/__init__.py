"""Blocked join engine: sub-linear candidate generation for Eq. 5.

The brute joiner scans every target with a scalar DP — O(|sources| x
|targets| x len^2) — which caps the join at toy column sizes.  This
package keeps the paper's exact semantics while scaling the target
column:

* :mod:`repro.index.qgram` — an inverted q-gram index whose length and
  count filters (Gravano-style bounds) yield a **provably complete**
  candidate set for any distance cap.
* :mod:`repro.index.kernel` — :func:`edit_distance_many`, a batched
  capped edit-distance DP over a padded candidate matrix, vectorized
  across candidates.
* :mod:`repro.index.joiner` — :class:`IndexedJoiner` (drop-in,
  byte-identical results to :class:`~repro.core.joiner.EditDistanceJoiner`),
  :class:`AutoJoiner` (switches strategy on target-column size), and the
  :func:`make_joiner` factory used by ``DTTPipeline(joiner="auto")``.

The guarantee throughout is *exact equivalence* with the brute scan —
enforced by the equivalence test harness in ``tests/`` — so blocking is
purely a performance choice.
"""

from repro.index.kernel import edit_distance_many, encode_strings
from repro.index.qgram import QGramIndex
from repro.index.joiner import AutoJoiner, IndexedJoiner, make_joiner

__all__ = [
    "AutoJoiner",
    "IndexedJoiner",
    "QGramIndex",
    "edit_distance_many",
    "encode_strings",
    "make_joiner",
]

"""Blocked join engine: sub-linear candidate generation for Eq. 5.

The brute joiner scans every target with a scalar DP — O(|sources| x
|targets| x len^2) — which caps the join at toy column sizes.  This
package keeps the paper's exact semantics while scaling the target
column:

* :mod:`repro.index.qgram` — an inverted q-gram index whose length and
  count filters (Gravano-style bounds) yield a **provably complete**
  candidate set for any distance cap.
* :mod:`repro.index.kernel` — :func:`edit_distance_many`, a batched
  capped edit-distance DP over a padded candidate matrix, vectorized
  across candidates.
* :mod:`repro.index.kernels` — pluggable kernel backends behind that
  contract (Myers bit-parallel, Ukkonen banded, per-call auto
  dispatch), selected via ``JoinConfig.kernel_backend`` or the
  ``REPRO_KERNEL_BACKEND`` environment variable; every backend is
  byte-identical to the reference DP.
* :mod:`repro.index.joiner` — :class:`IndexedJoiner` (drop-in,
  byte-identical results to :class:`~repro.core.joiner.EditDistanceJoiner`),
  :class:`AutoJoiner` (switches strategy on target-column size), and the
  :func:`make_joiner` factory used by ``DTTPipeline(joiner="auto")``.

Batch execution rides on top of the same guarantee:

* :mod:`repro.index.cache` — :class:`IndexCache`, a process-level LRU of
  indexes keyed on **column content** (so equal columns share one index
  and any mutation — even a same-length in-place edit — forces a
  rebuild), plus adaptive gram-size selection.
* :meth:`IndexedJoiner.join_many` — the many-probe batch API: dedupe,
  exact-match short-circuit, length-bucketed candidate generation, and
  a pair DP kernel (:func:`~repro.index.kernel.edit_distance_pairs`)
  that scores all (probe, candidate) pairs of a bucket in one sweep.

The guarantee throughout is *exact equivalence* with the brute scan —
enforced by the equivalence test harness in ``tests/`` — so blocking and
batching are purely performance choices.
"""

from repro.core.join_config import JoinConfig
from repro.index.cache import (
    IndexCache,
    column_fingerprint,
    default_index_cache,
)
from repro.index.joiner import AutoJoiner, IndexedJoiner, make_joiner
from repro.index.kernel import (
    edit_distance_many,
    edit_distance_pairs,
    encode_strings,
)
from repro.index.kernels import (
    KernelBackend,
    get_backend,
    pairs_scored_snapshot,
    resolve_backend,
)
from repro.index.parallel import JoinStats
from repro.index.qgram import QGramIndex, adaptive_q

__all__ = [
    "AutoJoiner",
    "IndexCache",
    "IndexedJoiner",
    "JoinConfig",
    "JoinStats",
    "KernelBackend",
    "QGramIndex",
    "adaptive_q",
    "column_fingerprint",
    "default_index_cache",
    "edit_distance_many",
    "edit_distance_pairs",
    "encode_strings",
    "get_backend",
    "make_joiner",
    "pairs_scored_snapshot",
    "resolve_backend",
]

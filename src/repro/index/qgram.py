"""Q-gram inverted index with length and count filtering.

Blocking for the edit-distance join (Eq. 5): given a probe string and a
distance cap ``k``, return a **provably complete** candidate set — every
target within edit distance ``k`` is in the set — without scanning the
whole column.  Two classic filters (Gravano et al., *Approximate String
Joins in a Database (Almost) for Free*, VLDB 2001) make the set small:

* **Length filter** — an edit operation changes the length by at most 1,
  so ``|len(t) - len(p)| <= k`` for any match ``t``.
* **Count filter** — one edit operation destroys at most ``q``
  overlapping q-grams, so ``p`` and ``t`` must share at least
  ``(len(p) - q + 1) - k*q`` q-grams.  When that bound is not positive
  the filter is vacuous and every length-compatible target is returned,
  preserving completeness.

The shared-gram count used here sums target-side multiplicities over the
*distinct* grams of the probe, which can only over-count the true
multiset intersection — the filter only ever admits extra candidates,
never drops a true match.

Duplicated column values are indexed once: candidates are unique-value
ids, and :meth:`QGramIndex.rows_for` expands a value back to its
(ascending) row numbers for row-level semantics such as tie-breaking.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.index.kernel import encode_strings


def adaptive_q(targets: Sequence[str]) -> int:
    """Pick a gram size from the column's length statistics.

    Longer grams are more selective on long strings (each gram carries
    more context, so posting lists shrink) but make the count bound
    ``(len(p) - q + 1) - k*q`` go vacuous sooner on short ones.  The
    median value length balances the two: table-cell columns keep
    ``q = 2`` — measured faster than ``q = 3`` even at 12-18 char
    cells, because the count bound surviving deeper caps beats the
    smaller posting lists — while columns of sentence-like values step
    up.  Any choice is correctness-neutral — the filters stay provably
    complete for every ``q`` — so this only tunes candidate-set size.
    """
    if not targets:
        return 2
    lengths = sorted(len(value) for value in targets)
    median = lengths[len(lengths) // 2]
    if median >= 40:
        return 4
    if median >= 20:
        return 3
    return 2


class QGramIndex:
    """Inverted q-gram index over a target column.

    Args:
        targets: The target-column values (duplicates allowed).
        q: Gram size; 2 suits the short cell values of the benchmarks
            (longer grams filter better on long strings but make the
            count bound vacuous sooner).
    """

    def __init__(self, targets: Sequence[str], q: int = 2) -> None:
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.q = q
        value_ids: dict[str, int] = {}
        rows: list[list[int]] = []
        for row, value in enumerate(targets):
            vid = value_ids.setdefault(value, len(rows))
            if vid == len(rows):
                rows.append([])
            rows[vid].append(row)
        self.values: list[str] = list(value_ids)
        self._value_ids = value_ids
        self._rows = rows
        self.first_rows = np.fromiter(
            (r[0] for r in rows), dtype=np.int64, count=len(rows)
        )
        self.lengths = np.fromiter(
            (len(v) for v in self.values), dtype=np.int64, count=len(self.values)
        )
        self.max_length = int(self.lengths.max()) if self.lengths.size else 0
        # Pre-encode the whole column only while the dense matrix stays
        # modest: one pathologically long cell would otherwise inflate
        # every row to its width (n * max_len uint32 cells).  Past the
        # budget, candidate batches are encoded on demand instead —
        # padded only to the batch's own maximum.
        if len(self.values) * self.max_length <= self._DENSE_BUDGET:
            self._codes, _ = encode_strings(self.values)
        else:
            self._codes = None
        postings: dict[str, list[int]] = {}
        for vid, value in enumerate(self.values):
            for i in range(len(value) - q + 1):
                postings.setdefault(value[i : i + q], []).append(vid)
        self._postings = {
            gram: np.asarray(vids, dtype=np.int64)
            for gram, vids in postings.items()
        }

    # Cells (uint32) allowed for the precomputed code matrix: 1 << 26
    # cells = 256 MB.  Way above any benchmark column, low enough that a
    # single corrupt mega-cell cannot balloon index construction.
    _DENSE_BUDGET = 1 << 26

    def __len__(self) -> int:
        """Number of distinct values in the index."""
        return len(self.values)

    def to_state(self) -> dict[str, np.ndarray]:
        """Flat numpy snapshot of the index, for the on-disk cache tier.

        Every component is a plain array (ragged structures become
        ``flat + offsets`` pairs; strings become UTF-8 blobs encoded
        with ``surrogatepass`` so lone surrogates round-trip), which
        keeps the format loadable with ``allow_pickle=False`` — a
        corrupted or malicious cache file can fail to parse but cannot
        execute code.  :meth:`from_state` inverts this exactly.
        """
        value_blobs = [v.encode("utf-8", "surrogatepass") for v in self.values]
        rows_offsets = np.zeros(len(self._rows) + 1, dtype=np.int64)
        np.cumsum([len(r) for r in self._rows], out=rows_offsets[1:])
        gram_blobs = [g.encode("utf-8", "surrogatepass") for g in self._postings]
        posting_offsets = np.zeros(len(self._postings) + 1, dtype=np.int64)
        if self._postings:
            np.cumsum(
                [p.size for p in self._postings.values()],
                out=posting_offsets[1:],
            )
        state = {
            "q": np.int64(self.q),
            "values_blob": np.frombuffer(b"".join(value_blobs), dtype=np.uint8),
            "values_offsets": np.cumsum([0] + [len(b) for b in value_blobs]),
            "rows_flat": np.fromiter(
                (row for rows in self._rows for row in rows),
                dtype=np.int64,
                count=int(rows_offsets[-1]),
            ),
            "rows_offsets": rows_offsets,
            "grams_blob": np.frombuffer(b"".join(gram_blobs), dtype=np.uint8),
            "grams_offsets": np.cumsum([0] + [len(b) for b in gram_blobs]),
            "postings_flat": (
                np.concatenate(list(self._postings.values()))
                if self._postings
                else np.empty(0, dtype=np.int64)
            ),
            "postings_offsets": posting_offsets,
            "has_codes": np.int64(self._codes is not None),
        }
        if self._codes is not None:
            state["codes"] = self._codes
        return state

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> QGramIndex:
        """Rebuild an index from a :meth:`to_state` snapshot.

        Skips gram extraction and code-matrix encoding — the expensive
        parts of ``__init__`` — leaving only the value/posting dict
        rebuilds, which is what makes a warm disk-cache load cheaper
        than indexing the column from scratch.
        """

        def decode(blob: np.ndarray, offsets: np.ndarray) -> list[str]:
            raw = blob.tobytes()
            return [
                raw[offsets[i] : offsets[i + 1]].decode("utf-8", "surrogatepass")
                for i in range(len(offsets) - 1)
            ]

        self = cls.__new__(cls)
        self.q = int(state["q"])
        if self.q <= 0:
            raise ValueError(f"corrupt index state: q = {self.q}")
        self.values = decode(state["values_blob"], state["values_offsets"])
        self._value_ids = {value: vid for vid, value in enumerate(self.values)}
        if len(self._value_ids) != len(self.values):
            raise ValueError("corrupt index state: duplicate values")
        rows_flat = np.asarray(state["rows_flat"], dtype=np.int64)
        rows_offsets = np.asarray(state["rows_offsets"], dtype=np.int64)
        if len(rows_offsets) != len(self.values) + 1:
            raise ValueError("corrupt index state: rows/values misaligned")
        self._rows = [
            rows_flat[rows_offsets[i] : rows_offsets[i + 1]].tolist()
            for i in range(len(self.values))
        ]
        if any(not rows for rows in self._rows):
            raise ValueError("corrupt index state: value with no rows")
        self.first_rows = np.fromiter(
            (r[0] for r in self._rows), dtype=np.int64, count=len(self._rows)
        )
        self.lengths = np.fromiter(
            (len(v) for v in self.values), dtype=np.int64, count=len(self.values)
        )
        self.max_length = int(self.lengths.max()) if self.lengths.size else 0
        grams = decode(state["grams_blob"], state["grams_offsets"])
        postings_flat = np.asarray(state["postings_flat"], dtype=np.int64)
        postings_offsets = np.asarray(state["postings_offsets"], dtype=np.int64)
        if len(postings_offsets) != len(grams) + 1:
            raise ValueError("corrupt index state: postings/grams misaligned")
        self._postings = {
            gram: postings_flat[postings_offsets[i] : postings_offsets[i + 1]]
            for i, gram in enumerate(grams)
        }
        if int(state["has_codes"]):
            self._codes = np.asarray(state["codes"], dtype=np.uint32)
            if self._codes.shape[0] != len(self.values):
                raise ValueError("corrupt index state: code matrix misaligned")
        else:
            self._codes = None
        return self

    @property
    def nbytes(self) -> int:
        """Approximate bytes retained by the index's numpy state.

        Covers the dense code matrix (the dominant term when present),
        the posting lists, and the per-value arrays; the value strings
        themselves are shared with the caller's column and not counted.
        Used by :class:`~repro.index.cache.IndexCache` for its byte
        budget.
        """
        total = self.first_rows.nbytes + self.lengths.nbytes
        if self._codes is not None:
            total += self._codes.nbytes
        for array in self._postings.values():
            total += array.nbytes
        return total

    def batch_codes(self, value_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, lengths)`` for a candidate batch, kernel-ready.

        Slices the precomputed matrix when it exists, otherwise encodes
        just the batch (padded to the batch maximum).
        """
        if self._codes is not None:
            return self._codes[value_ids], self.lengths[value_ids]
        return encode_strings([self.values[int(v)] for v in value_ids])

    def value_id(self, value: str) -> int | None:
        """Exact-match lookup: the value id, or ``None`` if absent."""
        return self._value_ids.get(value)

    def rows_for(self, value_id: int) -> list[int]:
        """Ascending row numbers holding the given value."""
        return self._rows[value_id]

    def candidates(self, query: str, cap: int) -> np.ndarray:
        """Value ids of every target possibly within ``cap`` of ``query``.

        Completeness guarantee: any indexed value ``t`` with
        ``edit_distance(query, t) <= cap`` is in the returned array.
        The array is ascending (so candidate order is deterministic).
        Single-query form of :meth:`candidates_bucket`, which holds the
        one copy of the filter logic.
        """
        return self.candidates_bucket([query], len(query), cap)[0]

    def _gram_postings(self, query: str) -> list[np.ndarray]:
        """Posting arrays for the distinct q-grams of ``query``."""
        grams = {
            query[i : i + self.q] for i in range(len(query) - self.q + 1)
        }
        return [
            self._postings[gram] for gram in grams if gram in self._postings
        ]

    def overlap_best(
        self, queries: Sequence[str], length: int, k: int = 8
    ) -> list[np.ndarray]:
        """Plausible near-neighbour value ids for each query.

        Returns, per query, up to ``k`` ids of the indexed values
        sharing the most q-grams with it (target-side multiplicities
        included), falling back to the value of closest length when no
        gram is shared.  The returned targets are *not* guaranteed to
        contain the argmin — the minimum of their exact distances is an
        **upper bound** on the query's best distance, which the batch
        engine uses to jump cap deepening straight to a provably
        sufficient candidate set.

        Args:
            queries: Probe strings, each of exactly ``length`` characters.
            length: The shared probe length.
            k: Neighbour candidates per query.
        """
        fallback = np.asarray(
            [int(np.argmin(np.abs(self.lengths - length)))], dtype=np.int64
        )
        out: list[np.ndarray] = []
        for query in queries:
            arrays = self._gram_postings(query)
            if not arrays:
                out.append(fallback)
                continue
            counts = np.bincount(np.concatenate(arrays))
            if counts.size > k:
                top = np.argpartition(counts, -k)[-k:]
                out.append(top[counts[top] > 0])
            else:
                out.append(np.nonzero(counts)[0])
        return out

    def candidates_bucket(
        self, queries: Sequence[str], length: int, cap: int
    ) -> list[np.ndarray]:
        """Per-query candidate ids for a bucket of same-length queries.

        Identical sets to calling :meth:`candidates` per query, but the
        length filter — which depends only on ``length`` and ``cap`` —
        is evaluated once for the whole bucket, and when the count bound
        is vacuous the single shared length-compatible array serves
        every query.  This is the batch engine's candidate generator.

        Args:
            queries: Probe strings, each of exactly ``length`` characters.
            length: The shared probe length.
            cap: Distance cap, as in :meth:`candidates`.
        """
        if cap < 0:
            raise ValueError(f"cap must be >= 0, got {cap}")
        length_ok = np.abs(self.lengths - length) <= cap
        bound = (length - self.q + 1) - cap * self.q
        if bound <= 0:
            base = np.nonzero(length_ok)[0]
            return [base] * len(queries)
        empty = np.empty(0, dtype=np.int64)
        out: list[np.ndarray] = []
        for query in queries:
            arrays = self._gram_postings(query)
            if not arrays:
                out.append(empty)
                continue
            counts = np.bincount(
                np.concatenate(arrays), minlength=len(self.values)
            )
            out.append(np.nonzero(length_ok & (counts >= bound))[0])
        return out

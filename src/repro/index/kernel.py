"""Batched capped edit distance: one query against many candidates.

The blocked joiner scores a whole candidate set at once instead of
calling the scalar DP per target.  Candidates are encoded into a padded
``(n, max_len)`` code-point matrix and a single numpy DP sweeps the
query characters, keeping one ``(n, max_len + 1)`` distance row per
step.  The row-serial insertion recurrence is resolved with the classic
prefix-min trick::

    D[i][j] = min_{t <= j} (C[i][t] + (j - t))
            = j + min_{t <= j} (C[i][t] - t)

which turns the scan into ``np.minimum.accumulate`` along the candidate
axis — every operation is vectorized over all candidates.

Distances are capped: any value that provably exceeds ``cap`` is
reported as ``cap + 1``, matching the contract of
:func:`repro.text.edit_distance.edit_distance_capped`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.text.edit_distance import codepoints

# Pad value for the code matrix.  Unicode code points stop at 0x10FFFF,
# so padding can never spuriously match a query character.
_PAD = np.uint32(0xFFFFFFFF)


def encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings into a padded uint32 code-point matrix.

    Returns:
        ``(codes, lengths)`` where ``codes`` has shape
        ``(len(strings), max_len)`` padded with a non-code-point value
        and ``lengths[i]`` is ``len(strings[i])``.
    """
    lengths = np.fromiter(
        (len(s) for s in strings), dtype=np.int64, count=len(strings)
    )
    max_len = int(lengths.max()) if lengths.size else 0
    codes = np.full((len(strings), max_len), _PAD, dtype=np.uint32)
    for i, s in enumerate(strings):
        if s:
            codes[i, : len(s)] = codepoints(s)
    return codes, lengths


def edit_distance_codes(
    query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
) -> np.ndarray:
    """Capped distances from ``query`` to every pre-encoded candidate.

    Args:
        query: The probe string.
        codes: Padded code matrix from :func:`encode_strings` (rows may
            be a fancy-indexed subset of a larger matrix).
        lengths: True length of each row of ``codes``.
        cap: Distances above this are clamped to ``cap + 1``.

    Returns:
        ``int64`` array of shape ``(len(codes),)`` where entry ``i`` is
        ``edit_distance(query, candidate_i)`` when that is ``<= cap``
        and ``cap + 1`` otherwise.
    """
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    big = cap + 1
    if not query:
        return np.minimum(lengths, big)
    # The rows are often a fancy-indexed subset of a wider index matrix;
    # trim the pad columns past the longest *present* candidate so one
    # long outlier value in the column doesn't tax every query.
    longest = int(lengths.max())
    if codes.shape[1] > longest:
        codes = codes[:, :longest]
    width = codes.shape[1] + 1
    col = np.arange(width, dtype=np.int64)
    previous = np.minimum(np.tile(col, (n, 1)), big)
    current = np.empty_like(previous)
    query_codes = codepoints(query)
    for i in range(1, len(query_codes) + 1):
        current[:, 0] = i
        substitution = previous[:, :-1] + (codes != query_codes[i - 1])
        deletion = previous[:, 1:] + 1
        np.minimum(substitution, deletion, out=current[:, 1:])
        # Insertion closure via prefix-min of (value - column index).
        current -= col
        np.minimum.accumulate(current, axis=1, out=current)
        current += col
        np.minimum(current, big, out=current)
        # Row minima never decrease as the DP advances, so once every
        # candidate's row exceeds the cap the outcome is settled.
        if current.min() > cap:
            return np.full(n, big, dtype=np.int64)
        previous, current = current, previous
    return previous[np.arange(n), lengths]


def edit_distance_many(
    query: str, candidates: Sequence[str], cap: int
) -> np.ndarray:
    """Capped edit distance from ``query`` to each of ``candidates``.

    Equivalent to ``[edit_distance_capped(query, c, cap) for c in
    candidates]`` (with the over-cap sentinel fixed at ``cap + 1``) but
    computed as one vectorized DP over a padded candidate matrix.
    """
    codes, lengths = encode_strings(candidates)
    return edit_distance_codes(query, codes, lengths, cap)

"""Batched capped edit distance: one query against many candidates.

The blocked joiner scores a whole candidate set at once instead of
calling the scalar DP per target.  Candidates are encoded into a padded
``(n, max_len)`` code-point matrix and a single numpy DP sweeps the
query characters, keeping one ``(n, max_len + 1)`` distance row per
step.  The row-serial insertion recurrence is resolved with the classic
prefix-min trick::

    D[i][j] = min_{t <= j} (C[i][t] + (j - t))
            = j + min_{t <= j} (C[i][t] - t)

which turns the scan into ``np.minimum.accumulate`` along the candidate
axis — every operation is vectorized over all candidates.

Distances are capped: any value that provably exceeds ``cap`` is
reported as ``cap + 1``, matching the contract of
:func:`repro.text.edit_distance.edit_distance_capped`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.edit_distance import codepoints

# Pad value for the code matrix.  Unicode code points stop at 0x10FFFF,
# so padding can never spuriously match a query character.
_PAD = np.uint32(0xFFFFFFFF)


def encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings into a padded uint32 code-point matrix.

    Returns:
        ``(codes, lengths)`` where ``codes`` has shape
        ``(len(strings), max_len)`` padded with a non-code-point value
        and ``lengths[i]`` is ``len(strings[i])``.
    """
    lengths = np.fromiter(
        (len(s) for s in strings), dtype=np.int64, count=len(strings)
    )
    max_len = int(lengths.max()) if lengths.size else 0
    codes = np.full((len(strings), max_len), _PAD, dtype=np.uint32)
    if max_len == 0:
        return codes, lengths
    # One join + one frombuffer instead of a Python-level loop per
    # string: utf-32-le yields exactly one uint32 per code point, and a
    # ragged boolean mask scatters the flat buffer into the padded rows.
    try:
        flat = np.frombuffer(
            "".join(strings).encode("utf-32-le"), dtype=np.uint32
        )
    except UnicodeEncodeError:
        # Lone surrogates can't round-trip through utf-32; fall back to
        # the per-string scalar path (codepoints() handles them).
        for i, s in enumerate(strings):
            if s:
                codes[i, : len(s)] = codepoints(s)
        return codes, lengths
    mask = np.arange(max_len) < lengths[:, None]
    codes[mask] = flat
    return codes, lengths


def edit_distance_codes(
    query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
) -> np.ndarray:
    """Capped distances from ``query`` to every pre-encoded candidate.

    Args:
        query: The probe string.
        codes: Padded code matrix from :func:`encode_strings` (rows may
            be a fancy-indexed subset of a larger matrix).
        lengths: True length of each row of ``codes``.
        cap: Distances above this are clamped to ``cap + 1``.

    Returns:
        ``int64`` array of shape ``(len(codes),)`` where entry ``i`` is
        ``edit_distance(query, candidate_i)`` when that is ``<= cap``
        and ``cap + 1`` otherwise.
    """
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    big = cap + 1
    if not query:
        return np.minimum(lengths, big)
    # The rows are often a fancy-indexed subset of a wider index matrix;
    # trim the pad columns past the longest *present* candidate so one
    # long outlier value in the column doesn't tax every query.
    longest = int(lengths.max())
    if codes.shape[1] > longest:
        codes = codes[:, :longest]
    out = np.full(n, big, dtype=np.int64)
    # Maps compacted row positions back to caller candidate indices.
    active = np.arange(n)
    width = codes.shape[1] + 1
    col = np.arange(width, dtype=np.int64)
    previous = np.minimum(np.tile(col, (n, 1)), big)
    current = np.empty_like(previous)
    query_codes = codepoints(query)
    query_len = len(query_codes)
    for i in range(1, query_len + 1):
        current[:, 0] = i
        substitution = previous[:, :-1] + (codes != query_codes[i - 1])
        deletion = previous[:, 1:] + 1
        np.minimum(substitution, deletion, out=current[:, 1:])
        # Insertion closure via prefix-min of (value - column index).
        current -= col
        np.minimum.accumulate(current, axis=1, out=current)
        current += col
        np.minimum(current, big, out=current)
        previous, current = current, previous
        if i & 1 and i != query_len:
            continue
        # A candidate whose row minimum exceeds the cap is settled —
        # row minima never decrease as the DP advances — so its
        # distance is reported as ``big`` and the row drops out of the
        # sweep.  Same settled-count/compaction policy as
        # :func:`edit_distance_pairs`: checking every other row halves
        # the full-matrix min scans, and compaction keeps a batch that
        # mixes doomed and promising candidates from paying full width
        # for the doomed majority.
        row_min = previous.min(axis=1)
        settled = int(np.count_nonzero(row_min > cap))
        if settled == active.size:
            return out
        if settled >= 256 and settled * 4 >= active.size:
            keep = row_min <= cap
            active = active[keep]
            previous = previous[keep]
            codes = codes[keep]
            lengths = lengths[keep]
            longest = int(lengths.max())
            if codes.shape[1] > longest:
                codes = codes[:, :longest]
                previous = previous[:, : longest + 1]
                col = col[: longest + 1]
            current = np.empty_like(previous)
    out[active] = previous[np.arange(active.size), lengths]
    return out


def edit_distance_pairs(
    query_codes: np.ndarray,
    cand_codes: np.ndarray,
    cand_lengths: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Capped distances for ``n`` independent (query, candidate) pairs.

    The multi-probe generalization of :func:`edit_distance_codes`: row
    ``i`` scores ``query_i`` against ``candidate_i``, and the DP is
    vectorized across *all pairs of all probes at once* — one numpy
    sweep per query character instead of one kernel launch per probe.
    Every query must have the same true length (the batch engine buckets
    probes by length for exactly this reason), so the sweep advances all
    pairs in lockstep.

    Args:
        query_codes: ``(n, query_len)`` code matrix; each row is a full
            (unpadded) query of exactly ``query_len`` characters.
        cand_codes: ``(n, max_cand_len)`` padded candidate code matrix
            (rows may be a fancy-indexed subset of an index matrix).
        cand_lengths: True length of each candidate row.
        cap: Distances above this are clamped to ``cap + 1``.

    Returns:
        ``int64`` array of shape ``(n,)``; entry ``i`` is
        ``edit_distance(query_i, candidate_i)`` when that is ``<= cap``
        and ``cap + 1`` otherwise.
    """
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = cand_codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    big = cap + 1
    query_len = query_codes.shape[1]
    if query_len == 0:
        return np.minimum(cand_lengths, big)
    longest = int(cand_lengths.max())
    if cand_codes.shape[1] > longest:
        cand_codes = cand_codes[:, :longest]
    out = np.full(n, big, dtype=np.int64)
    # Maps compacted column positions back to caller pair indices.
    active = np.arange(n)
    # The sweep runs the *exact* (unclamped) DP in int32 — distances
    # are bounded by the longest string, so the narrow dtype halves
    # memory traffic — in **reduced space** ``E[i][j] = D[i][j] - j``,
    # where the row-serial insertion recurrence collapses to a plain
    # prefix-min (``D[i][j] = min(D'[i][j], D[i][j-1] + 1)`` becomes
    # ``E[i][j] = min(E'[i][j], E[i][j-1])``) and the initial row is
    # all zeros.  State is stored **transposed** — ``(width, n)`` with
    # pairs along the contiguous axis — so the prefix-min accumulate
    # runs its data-dependent loop across rows while its inner loop
    # stays a fully vectorized sweep over all pairs (the row-serial
    # layout made ``np.minimum.accumulate`` dominate kernel profiles).
    # Distances clamp to ``big`` only on output.
    cand_codes = np.ascontiguousarray(cand_codes.T)
    width = cand_codes.shape[0] + 1
    col = np.arange(width, dtype=np.int32)[:, None]
    previous = np.zeros((width, n), dtype=np.int32)
    current = np.empty_like(previous)
    unequal = np.empty(cand_codes.shape, dtype=np.int32)
    scratch = np.empty(cand_codes.shape, dtype=np.int32)
    for i in range(1, query_len + 1):
        current[0, :] = i
        # Each pair substitutes against its own query character:
        # E-substitution = E_prev[j-1] + (mismatch) - 1.
        query_row = query_codes[:, i - 1]
        np.not_equal(cand_codes, query_row, out=unequal, casting="unsafe")
        np.add(previous[:-1, :], unequal, out=unequal)
        unequal -= 1
        # E-deletion = E_prev[j] + 1.
        np.add(previous[1:, :], 1, out=scratch)
        np.minimum(unequal, scratch, out=current[1:, :])
        # Insertion closure: prefix-min along the (row) width axis.
        np.minimum.accumulate(current, axis=0, out=current)
        previous, current = current, previous
        if i & 1 and i != query_len:
            continue
        # A pair whose row minimum (in D space: E + j) exceeds the cap
        # is settled — row minima never decrease as the DP advances —
        # so its distance is reported as ``big`` and the pair drops out
        # of the sweep.  This is the per-pair analogue of the scalar
        # kernel's global early exit, and it is what makes mixing
        # doomed and promising pairs in one batch affordable: a pair
        # many edits beyond the cap stops paying after about ``cap``
        # steps instead of the full query length.
        row_min = np.add(previous, col, out=current).min(axis=0)
        settled = int(np.count_nonzero(row_min > cap))
        if settled == active.size:
            return out
        if settled >= 256 and settled * 4 >= active.size:
            keep = row_min <= cap
            active = active[keep]
            previous = previous[:, keep]
            cand_codes = cand_codes[:, keep]
            query_codes = query_codes[keep]
            cand_lengths = cand_lengths[keep]
            # Surviving candidates may all be shorter than the batch
            # pad width; shrink the sweep to match (row-prefix slices
            # of the transposed state stay contiguous).
            longest = int(cand_lengths.max()) if cand_lengths.size else 0
            if cand_codes.shape[0] > longest:
                cand_codes = cand_codes[:longest, :]
                previous = previous[: longest + 1, :]
                col = col[: longest + 1]
            current = np.empty_like(previous)
            unequal = np.empty(cand_codes.shape, dtype=np.int32)
            scratch = np.empty(cand_codes.shape, dtype=np.int32)
    final = previous[cand_lengths, np.arange(active.size)] + cand_lengths
    out[active] = np.minimum(final, big)
    return out


def edit_distance_many(
    query: str, candidates: Sequence[str], cap: int
) -> np.ndarray:
    """Capped edit distance from ``query`` to each of ``candidates``.

    Equivalent to ``[edit_distance_capped(query, c, cap) for c in
    candidates]`` (with the over-cap sentinel fixed at ``cap + 1``) but
    computed as one vectorized DP over a padded candidate matrix.
    """
    codes, lengths = encode_strings(candidates)
    return edit_distance_codes(query, codes, lengths, cap)

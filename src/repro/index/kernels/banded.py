"""Ukkonen's banded DP: sweep only the ``2*cap + 1`` diagonal band.

The capped contract makes most of the DP matrix irrelevant: a cell
``D[i][j]`` with ``|i - j| > cap`` can never feed a result ``<= cap``
(each step changes ``i - j`` by at most one, and ``D[i][j] >= |i -
j|``).  This backend stores only the band, re-indexed so row ``i``
holds ``B[i][d] = D[i][i + d - cap]`` for ``d`` in ``[0, 2*cap]`` —
``(n_candidates, 2*cap + 1)`` per DP row instead of ``(n_candidates,
longest + 1)``.  In band coordinates the recurrence reads

* substitution from ``B[i-1][d]`` (same ``d``: ``j`` shifts with ``i``),
* deletion from ``B[i-1][d+1]``,
* insertion from ``B[i][d-1]`` — resolved with the same prefix-min
  trick as the reference kernel, but along an axis of ``2*cap + 1``
  cells instead of the whole candidate length.

Each row's character window ``candidate[i - cap - 1 .. i + cap - 1]``
is a contiguous view into a pad-framed code matrix, so no per-row
gather is needed.  Out-of-range cells carry a poison value larger than
any in-band distance can reach; they decay by at most one per step and
start ``> cap + longest`` above the band, so they can never leak into a
valid final read.

When the band is at least as wide as the candidates are long the
banding is vacuous — the reference sweep touches fewer cells — so the
call delegates to :mod:`repro.index.kernel` (the result is identical
either way; this is purely the cheaper schedule).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.index import kernel as _reference
from repro.index.kernel import _PAD, encode_strings
from repro.text.edit_distance import codepoints

# Compaction thresholds, same policy as the reference pair sweep.
_COMPACT_MIN = 256


def _band_sweep(
    query_rows: np.ndarray,
    shared_query: bool,
    cand_codes: np.ndarray,
    cand_lengths: np.ndarray,
    cap: int,
    out: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Run the banded sweep over the active candidates.

    ``query_rows`` is ``(1, m)`` when ``shared_query`` (every candidate
    scores against the same query) or ``(n_active, m)`` otherwise.
    ``out`` is pre-filled with ``big``; the final band cell of each
    surviving candidate overwrites it.
    """
    big = cap + 1
    m = query_rows.shape[1]
    band = 2 * cap + 1
    lengths = cand_lengths
    longest = int(lengths.max())
    # Poison for cells outside the matrix: decays by at most 1 per row
    # across m rows, so it stays above ``cap`` (and above any real
    # in-band value) for the whole sweep.
    poison = big + m + longest
    # Pad-framed codes: row i's window is columns [i-1, i-1+band) —
    # j = i + d - cap maps the band cell to candidate char j - 1 at
    # frame column (j - 1) + cap = i + d - 1.
    frame = np.full(
        (active.size, max(longest, m) + 2 * cap), _PAD, dtype=np.uint32
    )
    frame[:, cap : cap + longest] = cand_codes[:, :longest]
    col_d = np.arange(band, dtype=np.int64)
    # Row 0: D[0][j] = j at d = j + cap, out-of-matrix cells poisoned.
    previous = np.where(col_d >= cap, col_d - cap, poison)
    previous = np.repeat(previous[None, :], active.size, axis=0)
    current = np.empty_like(previous)
    for i in range(1, m + 1):
        qc = (
            query_rows[0, i - 1]
            if shared_query
            else query_rows[:, i - 1][:, None]
        )
        window = frame[:, i - 1 : i - 1 + band]
        np.add(previous, window != qc, out=current)
        deletion = previous[:, 1:] + 1
        np.minimum(current[:, :-1], deletion, out=current[:, :-1])
        # Insertion closure via prefix-min of (value - band index).
        current -= col_d
        np.minimum.accumulate(current, axis=1, out=current)
        current += col_d
        # Cells below the matrix (j = i + d - cap < 0) must stay
        # poisoned; without this a poisoned cell could be rewritten
        # from a real neighbour and alias D[i][j<0] as a cheap path.
        low = cap - i
        if low > 0:
            current[:, :low] = poison
        previous, current = current, previous
        if i == m:
            break
        if i & 1:
            continue
        row_min = previous.min(axis=1)
        settled = int(np.count_nonzero(row_min > cap))
        if settled == active.size:
            return out
        if settled >= _COMPACT_MIN and settled * 4 >= active.size:
            keep = row_min <= cap
            active = active[keep]
            lengths = lengths[keep]
            previous = previous[keep]
            frame = frame[keep]
            if not shared_query:
                query_rows = query_rows[keep]
            current = np.empty_like(previous)
    final = previous[np.arange(active.size), lengths - m + cap]
    out[active] = np.minimum(final, big)
    return out


def _run(
    query_rows: np.ndarray,
    shared_query: bool,
    codes: np.ndarray,
    lengths: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Shared entry: length-window filter, trivial cases, band sweep."""
    n = codes.shape[0]
    big = cap + 1
    m = query_rows.shape[1]
    out = np.full(n, big, dtype=np.int64)
    # |len - m| > cap settles a candidate before the sweep; it also
    # guarantees the final band read ``lengths - m + cap`` is in range.
    window = np.abs(lengths - m) <= cap
    active = np.nonzero(window)[0]
    if not active.size:
        return out
    alens = lengths[active]
    empty = alens == 0
    if empty.any():
        out[active[empty]] = min(m, big)
        active = active[~empty]
        alens = alens[~empty]
    if not active.size:
        return out
    if shared_query:
        rows = query_rows
    else:
        rows = query_rows[active]
    return _band_sweep(rows, shared_query, codes[active], alens, cap, out, active)


def edit_distance_codes(
    query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
) -> np.ndarray:
    """Banded analogue of :func:`repro.index.kernel.edit_distance_codes`."""
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if not query:
        return np.minimum(lengths, cap + 1)
    longest = int(lengths.max()) if n else 0
    if 2 * cap + 1 >= longest + 1:
        # Vacuous band: the reference full-width sweep is cheaper.
        return _reference.edit_distance_codes(query, codes, lengths, cap)
    return _run(codepoints(query).reshape(1, -1), True, codes, lengths, cap)


def edit_distance_pairs(
    query_codes: np.ndarray,
    cand_codes: np.ndarray,
    cand_lengths: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Banded analogue of :func:`repro.index.kernel.edit_distance_pairs`."""
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = cand_codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if query_codes.shape[1] == 0:
        return np.minimum(cand_lengths, cap + 1)
    longest = int(cand_lengths.max())
    if 2 * cap + 1 >= longest + 1:
        return _reference.edit_distance_pairs(
            query_codes, cand_codes, cand_lengths, cap
        )
    return _run(query_codes, False, cand_codes, cand_lengths, cap)


def edit_distance_many(
    query: str, candidates: Sequence[str], cap: int
) -> np.ndarray:
    """Banded analogue of :func:`repro.index.kernel.edit_distance_many`."""
    codes, lengths = encode_strings(candidates)
    return edit_distance_codes(query, codes, lengths, cap)


__all__ = [
    "edit_distance_codes",
    "edit_distance_many",
    "edit_distance_pairs",
]

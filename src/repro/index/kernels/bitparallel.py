"""Myers' bit-parallel capped edit distance, vectorized over candidates.

One DP *column* of Myers' algorithm (the query runs down the pattern
axis) is two uint64 bit-vectors — ``VP``/``VN`` mark pattern rows whose
distance increases/decreases along the column — and one text character
advances the whole column in ~15 word operations.  Here the word
operations are numpy ufuncs over **all candidates at once**: state is
``(n_blocks, n_candidates)`` uint64 matrices, so a batch of ``n``
candidates costs the same number of numpy dispatches as one candidate
costs scalar word ops.

Queries longer than 64 characters chain blocks edlib-style: each block
consumes the horizontal delta (``hin`` in {-1, 0, +1}) the block below
produced this column and emits its own from bit 63.  The running
distance ``score = D[m][j]`` is tracked at bit ``(m - 1) % 64`` of the
last block — bits above it hold garbage, which is safe because
information only flows *upward* within a column (shifts and adder
carries), never down.

The capped contract matches :mod:`repro.index.kernel`: values ``<=
cap`` are exact, everything else reports ``cap + 1``.  Early exit uses
the lower bound ``D[m][len] >= score_j - (len - j)``: the slack
``score_j - (len - j)`` changes by 0 or +2 per column, so once a
candidate's bound exceeds the cap it is settled for good and the batch
compacts it away under the same policy as the reference pair sweep.

Per-query ``Peq`` tables (which pattern rows match each alphabet
symbol) are the only preprocessing; for the single-query entry points
they are memoized in a small LRU keyed on the query string, so repeated
probes against rotating candidate sets pay table construction once.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.index.kernel import encode_strings
from repro.text.edit_distance import codepoints

_WORD = 64
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)
_TOP = np.uint64(63)

#: Query string -> (ucodes, peq) memo for the single-query entry points.
_PEQ_CACHE: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = OrderedDict()
_PEQ_CACHE_CAP = 512

# Columns between settled-candidate scans; compaction thresholds match
# the reference pair sweep.
_CHECK_EVERY = 16
_COMPACT_MIN = 256


def _build_peq(query_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-symbol match masks for a batch of equal-length queries.

    Args:
        query_rows: ``(p, m)`` uint32 code matrix, one row per distinct
            query.

    Returns:
        ``(ucodes, peq)`` where ``ucodes`` is the sorted alphabet of
        the queries and ``peq`` has shape ``(n_blocks, p, len(ucodes)
        + 1)`` — ``peq[b, r, s]`` marks which rows of block ``b`` of
        query ``r`` match symbol ``ucodes[s]``; the last column is the
        all-zero mask for characters outside the alphabet.
    """
    p, m = query_rows.shape
    n_blocks = (m + _WORD - 1) // _WORD
    ucodes = np.unique(query_rows)
    peq = np.zeros((n_blocks, p, ucodes.size + 1), dtype=np.uint64)
    rows = np.arange(p)
    symbol = np.searchsorted(ucodes, query_rows)
    for k in range(m):
        bit = np.uint64(1 << (k % _WORD))
        peq[k // _WORD][rows, symbol[:, k]] |= bit
    return ucodes, peq


def _peq_for_query(query: str) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``(ucodes, peq)`` for one query string."""
    hit = _PEQ_CACHE.get(query)
    if hit is not None:
        _PEQ_CACHE.move_to_end(query)
        return hit
    tables = _build_peq(codepoints(query).reshape(1, -1))
    _PEQ_CACHE[query] = tables
    while len(_PEQ_CACHE) > _PEQ_CACHE_CAP:
        _PEQ_CACHE.popitem(last=False)
    return tables


def _symbol_ids(ucodes: np.ndarray, chars: np.ndarray) -> np.ndarray:
    """Map one column of candidate characters into ``peq`` columns.

    Characters outside the query alphabet (pad included) land on the
    sentinel all-zero column ``len(ucodes)``.
    """
    pos = np.searchsorted(ucodes, chars)
    pos[pos == ucodes.size] = 0
    # ``pos`` now indexes a real symbol; keep it only where it matches.
    return np.where(ucodes[pos] == chars, pos, ucodes.size)


def _sweep(
    peq: np.ndarray,
    query_ids: np.ndarray | None,
    ucodes: np.ndarray,
    m: int,
    cand_codes: np.ndarray,
    cand_lengths: np.ndarray,
    cap: int,
    out: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Run the bit-parallel column sweep over the active candidates.

    ``query_ids`` selects each active candidate's query row of ``peq``
    (``None`` means every candidate shares query row 0).  ``out`` is
    pre-filled with ``big``; settled candidates simply keep it.
    """
    big = cap + 1
    n_blocks = peq.shape[0]
    score_bit = np.uint64((m - 1) % _WORD)
    # Transposed codes: column j of the DP is one contiguous gather.
    codes_t = np.ascontiguousarray(cand_codes.T)
    n_cols = codes_t.shape[0]
    vp = np.full((n_blocks, active.size), _ONES, dtype=np.uint64)
    vn = np.zeros((n_blocks, active.size), dtype=np.uint64)
    score = np.full(active.size, m, dtype=np.int64)
    lengths = cand_lengths
    since_check = 0
    for j in range(n_cols):
        ids = _symbol_ids(ucodes, codes_t[j])
        hin_p = np.full(ids.shape, _ONE, dtype=np.uint64)
        hin_n = np.zeros(ids.shape, dtype=np.uint64)
        for b in range(n_blocks):
            if query_ids is None:
                eq = peq[b][0, ids]
            else:
                eq = peq[b][query_ids, ids]
            pv = vp[b]
            mv = vn[b]
            xv = eq | mv
            eq = eq | hin_n
            xh = (((eq & pv) + pv) ^ pv) | eq
            ph = mv | ~(xh | pv)
            mh = pv & xh
            if b == n_blocks - 1:
                score += ((ph >> score_bit) & _ONE).astype(np.int64)
                score -= ((mh >> score_bit) & _ONE).astype(np.int64)
            else:
                hout_p = (ph >> _TOP) & _ONE
                hout_n = (mh >> _TOP) & _ONE
            ph = (ph << _ONE) | hin_p
            mh = (mh << _ONE) | hin_n
            vp[b] = mh | ~(xv | ph)
            vn[b] = ph & xv
            if b != n_blocks - 1:
                hin_p = hout_p
                hin_n = hout_n
        finished = lengths == j + 1
        if finished.any():
            out[active[finished]] = np.minimum(score[finished], big)
        since_check += 1
        if since_check < _CHECK_EVERY or j + 1 == n_cols:
            continue
        since_check = 0
        # D[m][len] >= score - (len - (j + 1)): every remaining column
        # can lower the score by at most 1.  The slack is monotone, so
        # a settled candidate stays settled.
        alive = lengths > j + 1
        settled = score - (lengths - (j + 1)) > cap
        pending = int(np.count_nonzero(alive & ~settled))
        done = active.size - pending
        if pending == 0:
            return out
        if done >= _COMPACT_MIN and done * 4 >= active.size:
            keep = alive & ~settled
            active = active[keep]
            lengths = lengths[keep]
            score = score[keep]
            if query_ids is not None:
                query_ids = query_ids[keep]
            vp = np.ascontiguousarray(vp[:, keep])
            vn = np.ascontiguousarray(vn[:, keep])
            codes_t = codes_t[:, keep]
    return out


def edit_distance_codes(
    query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
) -> np.ndarray:
    """Bit-parallel analogue of :func:`repro.index.kernel.edit_distance_codes`."""
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    big = cap + 1
    if not query:
        return np.minimum(lengths, big)
    m = len(codepoints(query))
    out = np.full(n, big, dtype=np.int64)
    # |len - m| is a lower bound on the distance: candidates outside
    # the window are settled before the sweep starts.
    window = np.abs(lengths - m) <= cap
    active = np.nonzero(window)[0]
    if not active.size:
        return out
    alens = lengths[active]
    empty = alens == 0
    if empty.any():
        out[active[empty]] = min(m, big)
        active = active[~empty]
        alens = alens[~empty]
    if not active.size:
        return out
    longest = int(alens.max())
    acodes = codes[active][:, :longest]
    ucodes, peq = _peq_for_query(query)
    return _sweep(peq, None, ucodes, m, acodes, alens, cap, out, active)


def edit_distance_pairs(
    query_codes: np.ndarray,
    cand_codes: np.ndarray,
    cand_lengths: np.ndarray,
    cap: int,
) -> np.ndarray:
    """Bit-parallel analogue of :func:`repro.index.kernel.edit_distance_pairs`.

    Queries arrive as a lockstep ``(n, m)`` code matrix (every row the
    same true length).  Distinct query rows are deduplicated so the
    ``Peq`` tables are built once per distinct probe, not per pair.
    """
    if cap < 0:
        raise ValueError(f"cap must be >= 0, got {cap}")
    n = cand_codes.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    big = cap + 1
    m = query_codes.shape[1]
    if m == 0:
        return np.minimum(cand_lengths, big)
    out = np.full(n, big, dtype=np.int64)
    window = np.abs(cand_lengths - m) <= cap
    active = np.nonzero(window)[0]
    if not active.size:
        return out
    alens = cand_lengths[active]
    empty = alens == 0
    if empty.any():
        out[active[empty]] = min(m, big)
        active = active[~empty]
        alens = alens[~empty]
    if not active.size:
        return out
    unique_rows, inverse = np.unique(
        query_codes[active], axis=0, return_inverse=True
    )
    ucodes, peq = _build_peq(unique_rows)
    longest = int(alens.max())
    acodes = cand_codes[active][:, :longest]
    return _sweep(
        peq, inverse.reshape(-1), ucodes, m, acodes, alens, cap, out, active
    )


def edit_distance_many(
    query: str, candidates: Sequence[str], cap: int
) -> np.ndarray:
    """Bit-parallel analogue of :func:`repro.index.kernel.edit_distance_many`."""
    codes, lengths = encode_strings(candidates)
    return edit_distance_codes(query, codes, lengths, cap)


__all__ = [
    "edit_distance_codes",
    "edit_distance_many",
    "edit_distance_pairs",
]

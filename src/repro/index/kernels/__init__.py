"""Pluggable edit-distance kernel backends behind one equivalence contract.

Every join in the Eq. 5 resolution path bottoms out in three kernel
entry points — ``edit_distance_codes`` (one query vs. a candidate
matrix), ``edit_distance_pairs`` (lockstep per-pair scoring) and
``edit_distance_many`` (encode + codes) — historically served only by
the pure-numpy DP in :mod:`repro.index.kernel`.  This package turns
that call surface into a registry of interchangeable backends:

* ``"reference"`` — the numpy DP sweeps, unchanged, always available;
  they define the capped contract every other backend must match
  byte-for-byte (values ``<= cap`` exact, everything else ``cap + 1``).
* ``"bitparallel"`` — Myers' bit-parallel DP over uint64 bit-vectors
  (:mod:`repro.index.kernels.bitparallel`); the fast path for the
  short-string regime (queries up to 64 characters in one word,
  multi-block chaining beyond).
* ``"banded"`` — Ukkonen's diagonal-band DP
  (:mod:`repro.index.kernels.banded`); wins when strings are long but
  the cap keeps the band narrow.
* ``"auto"`` — per-call dispatch between the above.

Selection: an explicit ``JoinConfig(kernel_backend=...)`` wins; a
config left at ``"auto"`` defers to the ``REPRO_KERNEL_BACKEND``
environment variable (so CI can sweep the whole test suite across
backends without touching call sites); otherwise the auto heuristic
picks per call.  Backend names are validated against
:data:`repro.core.join_config.KERNEL_BACKENDS`.

Every concrete backend counts the candidate pairs it scores into a
process-wide tally (:func:`pairs_scored_snapshot`), which
``IndexedJoiner.join_many`` turns into per-call ``JoinStats`` deltas —
parallel workers report their own deltas per shard — and the serving
layer exports through ``/v1/stats`` and ``/metrics``.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence

import numpy as np

from repro.core.join_config import KERNEL_BACKENDS
from repro.index import kernel as _reference
from repro.index.kernel import encode_strings
from repro.index.kernels import banded as _banded
from repro.index.kernels import bitparallel as _bitparallel

#: Query length (code points) that fits a single bit-parallel word.
_BLOCK = 64

_COUNTS_LOCK = threading.Lock()
_PAIRS_SCORED: dict[str, int] = {
    "reference": 0,
    "bitparallel": 0,
    "banded": 0,
}


def _count_pairs(backend: str, n: int) -> None:
    """Credit ``n`` scored candidate pairs to a concrete backend."""
    if n:
        with _COUNTS_LOCK:
            _PAIRS_SCORED[backend] += n


def pairs_scored_snapshot() -> dict[str, int]:
    """Cumulative pairs scored per concrete backend, process-wide.

    Callers (``join_many``, parallel shard workers) snapshot before and
    after a unit of work and report the difference, so the tally never
    needs resetting between calls.
    """
    with _COUNTS_LOCK:
        return dict(_PAIRS_SCORED)


def reset_pairs_scored() -> None:
    """Zero the tally (test isolation hook)."""
    with _COUNTS_LOCK:
        for name in _PAIRS_SCORED:
            _PAIRS_SCORED[name] = 0


class KernelBackend:
    """One edit-distance kernel implementation behind the shared contract.

    Subclasses implement the three entry points with semantics
    byte-identical to :mod:`repro.index.kernel` (the enforcement lives
    in ``tests/test_kernels.py``) and credit the pairs they score to
    the process-wide tally under their ``name``.
    """

    name: str = "abstract"

    def edit_distance_codes(
        self, query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
    ) -> np.ndarray:
        raise NotImplementedError

    def edit_distance_pairs(
        self,
        query_codes: np.ndarray,
        cand_codes: np.ndarray,
        cand_lengths: np.ndarray,
        cap: int,
    ) -> np.ndarray:
        raise NotImplementedError

    def edit_distance_many(
        self, query: str, candidates: Sequence[str], cap: int
    ) -> np.ndarray:
        codes, lengths = encode_strings(candidates)
        return self.edit_distance_codes(query, codes, lengths, cap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class _DelegatingBackend(KernelBackend):
    """Counts pairs at entry, then delegates to a kernel module."""

    _module = _reference

    def edit_distance_codes(
        self, query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
    ) -> np.ndarray:
        _count_pairs(self.name, codes.shape[0])
        return self._module.edit_distance_codes(query, codes, lengths, cap)

    def edit_distance_pairs(
        self,
        query_codes: np.ndarray,
        cand_codes: np.ndarray,
        cand_lengths: np.ndarray,
        cap: int,
    ) -> np.ndarray:
        _count_pairs(self.name, cand_codes.shape[0])
        return self._module.edit_distance_pairs(
            query_codes, cand_codes, cand_lengths, cap
        )

    def edit_distance_many(
        self, query: str, candidates: Sequence[str], cap: int
    ) -> np.ndarray:
        _count_pairs(self.name, len(candidates))
        return self._module.edit_distance_many(query, candidates, cap)


class ReferenceBackend(_DelegatingBackend):
    """The pure-numpy DP sweeps — always available, defines the contract."""

    name = "reference"
    _module = _reference


class BitParallelBackend(_DelegatingBackend):
    """Myers' bit-parallel DP in uint64 bit-vectors."""

    name = "bitparallel"
    _module = _bitparallel


class BandedBackend(_DelegatingBackend):
    """Ukkonen's banded DP over the ``2*cap + 1`` diagonal."""

    name = "banded"
    _module = _banded


class AutoBackend(KernelBackend):
    """Per-call dispatch between the concrete backends.

    The heuristic keys on the two quantities that decide each backend's
    cost: the query length ``m`` (bit-parallel does one word of work
    per 64 query characters) and the band width ``2*cap + 1`` (banded
    work per DP row).  Queries that fit one word always take the
    bit-parallel kernel; longer queries take the banded kernel while
    the band is narrower than a word, else multi-block bit-parallel.
    Pairs scored are credited to whichever concrete backend ran.
    """

    name = "auto"

    @staticmethod
    def _pick(m: int, cap: int) -> KernelBackend:
        if m == 0:
            return _BACKENDS["reference"]
        if m <= _BLOCK:
            return _BACKENDS["bitparallel"]
        if 2 * cap + 1 <= _BLOCK:
            return _BACKENDS["banded"]
        return _BACKENDS["bitparallel"]

    def edit_distance_codes(
        self, query: str, codes: np.ndarray, lengths: np.ndarray, cap: int
    ) -> np.ndarray:
        return self._pick(len(query), cap).edit_distance_codes(
            query, codes, lengths, cap
        )

    def edit_distance_pairs(
        self,
        query_codes: np.ndarray,
        cand_codes: np.ndarray,
        cand_lengths: np.ndarray,
        cap: int,
    ) -> np.ndarray:
        return self._pick(query_codes.shape[1], cap).edit_distance_pairs(
            query_codes, cand_codes, cand_lengths, cap
        )

    def edit_distance_many(
        self, query: str, candidates: Sequence[str], cap: int
    ) -> np.ndarray:
        return self._pick(len(query), cap).edit_distance_many(
            query, candidates, cap
        )


_BACKENDS: dict[str, KernelBackend] = {
    "reference": ReferenceBackend(),
    "bitparallel": BitParallelBackend(),
    "banded": BandedBackend(),
    "auto": AutoBackend(),
}
assert set(_BACKENDS) == set(KERNEL_BACKENDS)


def get_backend(name: str) -> KernelBackend:
    """Look a backend up by exact name; raises on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{KERNEL_BACKENDS}"
        ) from None


def resolve_backend(name: str | None = None) -> KernelBackend:
    """Resolve a configured backend name to a backend object.

    An explicit name other than ``"auto"`` wins outright.  ``None`` /
    ``""`` / ``"auto"`` defer to the ``REPRO_KERNEL_BACKEND``
    environment variable (empty value = unset), falling back to the
    auto heuristic.  Unknown names — from config or environment —
    raise ``ValueError``.
    """
    if name in (None, "", "auto"):
        name = os.environ.get("REPRO_KERNEL_BACKEND", "").strip() or "auto"
    return get_backend(name)


__all__ = [
    "AutoBackend",
    "BandedBackend",
    "BitParallelBackend",
    "KernelBackend",
    "ReferenceBackend",
    "get_backend",
    "pairs_scored_snapshot",
    "reset_pairs_scored",
    "resolve_backend",
]

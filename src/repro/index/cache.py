"""Process-level q-gram index cache keyed by column content.

Index construction is linear in the target column with a noticeable
constant (dedup, postings, dense code matrix), so rebuilding the index
for a column that was already indexed — a fresh ``list(...)`` copy in
:mod:`repro.eval.runner`, a second :class:`~repro.core.pipeline.DTTPipeline`
over the same table, a re-run of a benchmark sweep — is pure waste.
:class:`IndexCache` shares one :class:`~repro.index.qgram.QGramIndex`
per *column content* across every joiner in the process.

Keys are the column contents themselves (as tuples), not object
identities: two equal columns hit the same entry no matter which
sequence object carries them, and *any* edit to a cached column —
including a same-length in-place cell overwrite, the staleness hole of
the old identity+length guard — misses and forces a rebuild.  Using the
values as the key (rather than a hash of them) keeps lookups exact: a
hash collision degrades to a dict-bucket equality walk, never to serving
the wrong index.

A lookup is O(column) — one tuple build plus its hash (CPython caches
each ``str`` hash, so repeats mostly combine cached hashes; when the
caller already holds a tuple, e.g. :attr:`repro.types.TablePair.targets`,
the key build is a zero-copy pass-through).  Scalar ``match`` loops pay
it per probe; the batch API
(:meth:`~repro.index.joiner.IndexedJoiner.join_many`) pays it once per
column, which is one of the reasons batching wins.

On top of the in-memory LRU sits an optional **on-disk tier**: with a
``cache_dir`` (or the ``REPRO_INDEX_CACHE_DIR`` environment variable for
the process-wide default cache), built indexes are persisted as
``qgram-<sha256>.npz`` snapshots keyed by :func:`column_fingerprint` —
a content hash of the column plus gram size — and reloaded by any later
process that misses in memory.  Writes are atomic (temp file +
``os.replace``), files carry a format-version stamp, and loads fall
back to a rebuild on any corruption, so the disk tier can be shared by
concurrent workers without coordination.

The tier is **garbage collected**: with ``max_disk_bytes`` (or the
``REPRO_INDEX_CACHE_MAX_BYTES`` environment variable for the default
cache) and/or ``max_disk_age_seconds`` set, every snapshot write prunes
the directory — age-expired files first, then least-recently-used files
(by mtime; loads refresh it) until the tier fits the byte budget — so a
long-lived serving deployment cycling through many target columns
cannot fill the disk.  Ages are clamped against clock skew (negative
ages read as zero), so a stepped clock or a peer host's future-dated
mtimes in a shared directory can neither mass-evict fresh snapshots nor
pin stale ones at the head of the LRU order.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
import threading
import time
import zipfile
from collections import OrderedDict
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.index.qgram import QGramIndex, adaptive_q

#: Cache key: ``(gram_size, column_values)``; gram size 0 marks entries
#: whose q was chosen adaptively (so hits skip re-deriving it).
CacheKey = tuple[int, tuple[str, ...]]

_ADAPTIVE = 0

#: Environment variable naming the on-disk tier's directory for the
#: process-wide default cache (read lazily, on the first
#: :func:`default_index_cache` call).
CACHE_DIR_ENV = "REPRO_INDEX_CACHE_DIR"

#: Environment variable bounding the on-disk tier's total bytes for the
#: process-wide default cache (read alongside :data:`CACHE_DIR_ENV`).
CACHE_MAX_BYTES_ENV = "REPRO_INDEX_CACHE_MAX_BYTES"

#: Bump when the :meth:`QGramIndex.to_state` layout changes; files
#: stamped with any other version are ignored and rebuilt in place.
DISK_FORMAT_VERSION = 1


def column_fingerprint(targets: Sequence[str], q: int) -> str:
    """Content fingerprint of a target column at a given gram size.

    SHA-256 over the gram size, the row count, and every value as a
    length-prefixed UTF-8 blob (``surrogatepass``, so lone surrogates
    hash too).  Length prefixes make the encoding injective — no two
    distinct columns produce the same byte stream — so same-length
    in-place cell edits, row reorders, and boundary shifts between
    adjacent values all change the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(b"repro.qgram.index")
    digest.update(struct.pack("<qq", q, len(targets)))
    for value in targets:
        blob = value.encode("utf-8", "surrogatepass")
        digest.update(struct.pack("<q", len(blob)))
        digest.update(blob)
    return digest.hexdigest()


class IndexCache:
    """LRU cache of :class:`QGramIndex` instances, content-keyed.

    Entries are bounded both by count and by total retained bytes
    (dense code matrices can reach hundreds of MB for huge columns), so
    a long-lived process cycling through many large target columns
    cannot accumulate unbounded index memory.  Thread-safe for lookups
    and insertions; concurrent misses on the same key may build the
    index twice, with one build winning the slot (both results are
    equivalent, so this is benign).

    An optional **on-disk tier** (``cache_dir``) persists indexes as
    content-fingerprint-keyed ``.npz`` files so they survive across
    processes — parallel join workers, repeated CLI invocations,
    successive ``eval/runner.py`` runs.  A memory miss first tries the
    disk file for the column's fingerprint; a disk miss builds the index
    and writes it back (atomic ``os.replace`` of a same-directory temp
    file, so concurrent readers never observe a torn write).  Disk loads
    are corruption-tolerant: a truncated, garbled, or version-mismatched
    file is ignored (and overwritten by the rebuild), never trusted.

    Args:
        capacity: Maximum number of cached indexes.
        max_bytes: Maximum total :attr:`QGramIndex.nbytes` across
            entries; least recently used entries are evicted beyond
            either bound (the most recent entry is always kept).
        cache_dir: Directory for the on-disk tier; ``None`` (the
            default) keeps the cache memory-only.  The process-wide
            default cache reads the ``REPRO_INDEX_CACHE_DIR``
            environment variable instead.
        max_disk_bytes: Total-size bound for the on-disk tier; when the
            ``qgram-*.npz`` snapshots exceed it, the least recently
            used files (by mtime — loads refresh it) are deleted until
            the tier fits.  ``None`` leaves the tier unbounded.  The
            process-wide default cache reads the
            ``REPRO_INDEX_CACHE_MAX_BYTES`` environment variable.
        max_disk_age_seconds: Age bound for the on-disk tier; snapshots
            whose mtime is older are deleted during garbage collection.
            ``None`` (the default) disables the age bound.
        clock: Wall-clock source for disk GC age computation
            (injectable for tests).  Ages are **skew-guarded**: a
            negative age — the clock stepped backwards, or another
            host wrote a future-dated mtime into a shared directory —
            clamps to zero, so fresh snapshots are never mass-evicted
            by a clock step and future-dated files neither pin
            themselves past the age bound's intent nor jump the LRU
            queue (they sort as written-just-now, then age normally).
    """

    def __init__(
        self,
        capacity: int = 8,
        max_bytes: int = 1 << 29,
        cache_dir: str | os.PathLike[str] | None = None,
        max_disk_bytes: int | None = None,
        max_disk_age_seconds: float | None = None,
        clock=time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_disk_bytes is not None and max_disk_bytes <= 0:
            raise ValueError(
                f"max_disk_bytes must be positive, got {max_disk_bytes}"
            )
        if max_disk_age_seconds is not None and max_disk_age_seconds <= 0:
            raise ValueError(
                "max_disk_age_seconds must be positive, got "
                f"{max_disk_age_seconds}"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_disk_bytes = max_disk_bytes
        self.max_disk_age_seconds = max_disk_age_seconds
        self._clock = clock
        self._entries: OrderedDict[CacheKey, QGramIndex] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_evictions = 0

    def __len__(self) -> int:
        """Number of cached indexes."""
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes retained by all cached indexes."""
        return self._bytes

    def get(self, targets: Sequence[str], q: int | None = None) -> QGramIndex:
        """Return the index for ``targets``, building it on a miss.

        Args:
            targets: The target column (non-empty).
            q: Gram size; ``None`` picks it adaptively from the column's
                length statistics (:func:`~repro.index.qgram.adaptive_q`),
                resolved only on a miss — adaptive q is a pure function
                of the column content, so adaptive entries cache under
                their own key and hits skip the derivation.  Distinct
                gram sizes for the same column cache separately (an
                adaptive entry is distinct from an explicit one even
                when both resolve to the same q).
        """
        key = (_ADAPTIVE if q is None else q, tuple(targets))
        with self._lock:
            index = self._entries.get(key)
            if index is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return index
            self.misses += 1
        resolved_q = adaptive_q(targets) if q is None else q
        index = None
        path = None
        if self.cache_dir is not None:
            path = self.disk_path(key[1], resolved_q)
            index = self._load_disk(path)
            with self._lock:
                if index is not None:
                    self.disk_hits += 1
                else:
                    self.disk_misses += 1
            if index is not None:
                # Refresh the snapshot's mtime: disk GC evicts in LRU
                # order, and a load is a use.
                try:
                    os.utime(path)
                except OSError:
                    pass
        if index is None:
            index = QGramIndex(key[1], q=resolved_q)
            if path is not None:
                self._save_disk(path, index)
                self._collect_disk_garbage(keep=path)
        with self._lock:
            if key not in self._entries:
                self._entries[key] = index
                self._bytes += index.nbytes
            self._entries.move_to_end(key)
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
        return index

    def disk_path(self, targets: Sequence[str], q: int) -> Path:
        """On-disk file for a column at a resolved gram size.

        The fingerprint covers the gram size, so adaptive and explicit
        lookups that resolve to the same ``q`` share one file.
        """
        if self.cache_dir is None:
            raise ValueError("cache has no on-disk tier (cache_dir is None)")
        return self.cache_dir / f"qgram-{column_fingerprint(targets, q)}.npz"

    def _load_disk(self, path: Path) -> QGramIndex | None:
        """Load an index snapshot, or ``None`` when absent or unusable.

        Treats *every* failure mode — missing file, truncated zip,
        mangled member arrays, a stamp from another format version,
        state that fails :meth:`QGramIndex.from_state` validation — as
        a plain miss: the caller rebuilds from the column and the
        rewrite replaces the bad file.  A cache must never be able to
        make a join fail.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["version"]) != DISK_FORMAT_VERSION:
                    return None
                state = {name: data[name] for name in data.files}
            return QGramIndex.from_state(state)
        except FileNotFoundError:
            return None
        except (OSError, KeyError, ValueError, IndexError, zipfile.BadZipFile):
            return None

    def _save_disk(self, path: Path, index: QGramIndex) -> None:
        """Atomically persist an index snapshot; failures are non-fatal.

        Writes to a temp file in the target directory and ``os.replace``s
        it into place, so a concurrent reader sees either the old file or
        the complete new one — never a partial write.
        """
        state = index.to_state()
        state["version"] = np.int64(DISK_FORMAT_VERSION)
        tmp_path = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=path.parent, prefix=".qgram-", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **state)
            os.replace(tmp_path, path)
            tmp_path = None
        except OSError:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass

    def _collect_disk_garbage(self, keep: Path) -> None:
        """Age- and size-bound the on-disk tier, LRU by clamped age.

        Runs after every snapshot write (the only operation that grows
        the tier).  Files older than ``max_disk_age_seconds`` are
        deleted outright; if the survivors still exceed
        ``max_disk_bytes``, the least recently used are deleted until
        the tier fits.  ``keep`` — the snapshot just written — is never
        deleted, so the cache always holds at least the current column
        even under a budget smaller than one file.

        Ages are **clock-skew guarded**: ``age = max(0, now - mtime)``.
        Raw mtime arithmetic breaks on shared directories and stepped
        clocks — a future-dated mtime (a peer host's fast clock, or a
        local backwards step landing every pre-step file "in the
        future") makes ``now - mtime`` negative, which a naive age
        check never expires and a naive mtime sort ranks permanently
        most-recent, pinning the file at the head of the LRU order
        while genuinely fresh snapshots are evicted around it.  A
        future-dated file is instead treated as written *now*: its age
        clamps to zero for this pass **and its mtime is rewritten to
        ``now``** (best-effort), so from this GC onward it ages
        normally — it can expire and it competes in LRU order like
        everything else, instead of being pinned until the local clock
        catches up to its timestamp.

        Every filesystem failure is swallowed: concurrent processes GC
        the same directory without coordination, so files may vanish
        mid-scan, and a cache must never be able to make a join fail.
        """
        if self.max_disk_bytes is None and self.max_disk_age_seconds is None:
            return
        assert self.cache_dir is not None
        try:
            candidates = list(self.cache_dir.glob("qgram-*.npz"))
        except OSError:
            return
        now = self._clock()
        entries: list[tuple[float, int, Path]] = []
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            if stat.st_mtime > now:
                # De-pin: restamp the future-dated file as written now
                # so it ages (and can expire) from this point on.
                try:
                    os.utime(path, (now, now))
                except OSError:
                    pass
            age = max(0.0, now - stat.st_mtime)
            entries.append((age, stat.st_size, path))
        # Largest clamped age first == least recently used.  Ties (all
        # future-dated files clamp to age zero) break by path name, so
        # concurrent GCs walk one deterministic order.
        entries.sort(key=lambda entry: (-entry[0], entry[2].name))
        survivors: list[tuple[float, int, Path]] = []
        for age, size, path in entries:
            if path == keep:
                survivors.append((age, size, path))
                continue
            if (
                self.max_disk_age_seconds is not None
                and age > self.max_disk_age_seconds
            ):
                self._evict_disk(path)
            else:
                survivors.append((age, size, path))
        if self.max_disk_bytes is None:
            return
        total = sum(size for _, size, _ in survivors)
        for _, size, path in survivors:
            if total <= self.max_disk_bytes:
                break
            if path == keep:
                continue
            self._evict_disk(path)
            total -= size

    def _evict_disk(self, path: Path) -> None:
        """Delete one snapshot; missing or busy files are not an error."""
        try:
            os.unlink(path)
        except OSError:
            return
        with self._lock:
            self.disk_evictions += 1

    def clear(self) -> None:
        """Drop every cached index (counters are kept).

        Only the in-memory tier is dropped; on-disk files persist (they
        are the cross-process tier — remove ``cache_dir`` contents to
        invalidate them).
        """
        with self._lock:
            self._entries.clear()
            self._bytes = 0


_DEFAULT_CACHE: IndexCache | None = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_index_cache() -> IndexCache:
    """The process-wide cache shared by joiners that were given none.

    Created lazily so the ``REPRO_INDEX_CACHE_DIR`` environment variable
    is read at first use, not at import: when set, the default cache
    gains an on-disk tier rooted there and q-gram indexes survive across
    processes and runner invocations.
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            max_disk = os.environ.get(CACHE_MAX_BYTES_ENV)
            try:
                max_disk_bytes = int(max_disk) if max_disk else None
            except ValueError as error:
                raise ValueError(
                    f"{CACHE_MAX_BYTES_ENV}={max_disk!r} is not a valid "
                    "byte count: expected a plain integer (e.g. 536870912)"
                ) from error
            _DEFAULT_CACHE = IndexCache(
                cache_dir=os.environ.get(CACHE_DIR_ENV) or None,
                max_disk_bytes=max_disk_bytes,
            )
        return _DEFAULT_CACHE

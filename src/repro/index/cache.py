"""Process-level q-gram index cache keyed by column content.

Index construction is linear in the target column with a noticeable
constant (dedup, postings, dense code matrix), so rebuilding the index
for a column that was already indexed — a fresh ``list(...)`` copy in
:mod:`repro.eval.runner`, a second :class:`~repro.core.pipeline.DTTPipeline`
over the same table, a re-run of a benchmark sweep — is pure waste.
:class:`IndexCache` shares one :class:`~repro.index.qgram.QGramIndex`
per *column content* across every joiner in the process.

Keys are the column contents themselves (as tuples), not object
identities: two equal columns hit the same entry no matter which
sequence object carries them, and *any* edit to a cached column —
including a same-length in-place cell overwrite, the staleness hole of
the old identity+length guard — misses and forces a rebuild.  Using the
values as the key (rather than a hash of them) keeps lookups exact: a
hash collision degrades to a dict-bucket equality walk, never to serving
the wrong index.

A lookup is O(column) — one tuple build plus its hash (CPython caches
each ``str`` hash, so repeats mostly combine cached hashes; when the
caller already holds a tuple, e.g. :attr:`repro.types.TablePair.targets`,
the key build is a zero-copy pass-through).  Scalar ``match`` loops pay
it per probe; the batch API
(:meth:`~repro.index.joiner.IndexedJoiner.join_many`) pays it once per
column, which is one of the reasons batching wins.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence

from repro.index.qgram import QGramIndex, adaptive_q

#: Cache key: ``(gram_size, column_values)``; gram size 0 marks entries
#: whose q was chosen adaptively (so hits skip re-deriving it).
CacheKey = tuple[int, tuple[str, ...]]

_ADAPTIVE = 0


class IndexCache:
    """LRU cache of :class:`QGramIndex` instances, content-keyed.

    Entries are bounded both by count and by total retained bytes
    (dense code matrices can reach hundreds of MB for huge columns), so
    a long-lived process cycling through many large target columns
    cannot accumulate unbounded index memory.  Thread-safe for lookups
    and insertions; concurrent misses on the same key may build the
    index twice, with one build winning the slot (both results are
    equivalent, so this is benign).

    Args:
        capacity: Maximum number of cached indexes.
        max_bytes: Maximum total :attr:`QGramIndex.nbytes` across
            entries; least recently used entries are evicted beyond
            either bound (the most recent entry is always kept).
    """

    def __init__(self, capacity: int = 8, max_bytes: int = 1 << 29) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: OrderedDict[CacheKey, QGramIndex] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        """Number of cached indexes."""
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate bytes retained by all cached indexes."""
        return self._bytes

    def get(self, targets: Sequence[str], q: int | None = None) -> QGramIndex:
        """Return the index for ``targets``, building it on a miss.

        Args:
            targets: The target column (non-empty).
            q: Gram size; ``None`` picks it adaptively from the column's
                length statistics (:func:`~repro.index.qgram.adaptive_q`),
                resolved only on a miss — adaptive q is a pure function
                of the column content, so adaptive entries cache under
                their own key and hits skip the derivation.  Distinct
                gram sizes for the same column cache separately (an
                adaptive entry is distinct from an explicit one even
                when both resolve to the same q).
        """
        key = (_ADAPTIVE if q is None else q, tuple(targets))
        with self._lock:
            index = self._entries.get(key)
            if index is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return index
            self.misses += 1
        resolved_q = adaptive_q(targets) if q is None else q
        index = QGramIndex(key[1], q=resolved_q)
        with self._lock:
            if key not in self._entries:
                self._entries[key] = index
                self._bytes += index.nbytes
            self._entries.move_to_end(key)
            while len(self._entries) > 1 and (
                len(self._entries) > self.capacity
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
        return index

    def clear(self) -> None:
        """Drop every cached index (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0


_DEFAULT_CACHE = IndexCache()


def default_index_cache() -> IndexCache:
    """The process-wide cache shared by joiners that were given none."""
    return _DEFAULT_CACHE

"""Parallel sharded execution for the batched join.

:class:`JoinWorkerPool` owns a :class:`~concurrent.futures.ProcessPoolExecutor`
that **persists across** :meth:`~repro.index.joiner.IndexedJoiner.join_many`
calls — the pool is created on the first parallel batch and reused until
:meth:`JoinWorkerPool.close` (the serving layer closes it on shutdown;
a garbage-collected joiner releases it through the executor's own
finalization).  Each call fans its length buckets out across the pool
and merges the results deterministically.  The contract is the
engine-wide one: **byte-identical results to the serial scan**, which
the sharding preserves by construction —

* a bucket probe's argmin depends only on ``(index, length, probe)``,
  never on which other probes share the bucket, so buckets can split
  anywhere;
* every worker scores against an equal-content index — resolved from
  its own content-keyed cache (seeded with the parent's cache under the
  ``fork`` start method, loaded from the shared on-disk tier, or
  rebuilt from the column shipped with the shard; all three construct
  the identical structure); and
* the merge keys results by probe value, so completion order is
  irrelevant.

Because the pool outlives any single call, shards are addressed by
**column fingerprint**: a column's bytes ship with its shards only the
first time the pool sees it, after which shards go fingerprint-only
and resolve through each worker's fingerprint memo (a worker that
still misses — freshly spawned, or its memo evicted the entry — raises
for a one-shot resend with the column attached).  That is what makes
reuse pay in a serving deployment: repeated joins against the same hot
target columns stop paying worker startup, index resolution, *and*
column serialization.

Shards are planned by **candidate mass**, not probe count: a bucket's
per-probe cost scales with how many targets sit within the near-length
window, so a skewed workload (thousands of probes at the column's modal
length) is split into more pieces than its probe share alone would
suggest.  Workers return ``(value_id, distance)`` pairs as reduced
``int32`` arrays — the parent maps ids back to strings through its own
index — so result pickling stays cheap even for very wide batches.

Worker startup prefers the ``fork`` start method where the platform
offers it and no other threads are alive (forking a multi-threaded
process is a deadlock hazard): the parent's index cache arrives by
copy-on-write, so workers usually begin scoring without building or
loading anything.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass

import numpy as np

from repro.index.cache import (
    IndexCache,
    column_fingerprint,
    default_index_cache,
)
from repro.index.qgram import QGramIndex


@dataclass(frozen=True)
class JoinStats:
    """Counters from one :meth:`IndexedJoiner.join_many` call.

    Attributes:
        probes: Probe rows requested (duplicates included).
        unique_probes: Distinct probe values after deduplication.
        exact_matches: Unique probes resolved by exact-match lookup.
        empty_probes: Unique probes that were abstentions (``""``).
        pending: Unique probes that went through bucketed scoring.
        buckets: Length buckets those probes formed.
        n_workers: Worker processes the pool could run for this call
            (capped by the shard count; 1 = serial execution).
        shards: Bucket shards dispatched to the pool (0 when serial).
        shard_sizes: Probe count of each shard, in dispatch order.
        cache_hits: In-memory index-cache hits during the call.
        cache_misses: In-memory index-cache misses during the call.
        disk_hits: On-disk index-cache hits — the parent's plus those
            newly reported by shard-executing workers during this call
            (fork-started workers inherit the parent's in-memory cache
            and usually pay none).
        disk_misses: On-disk index-cache misses, same accounting;
            zero when no disk tier is configured.
        kernel_backend: Resolved kernel backend the joiner scored with
            (``"auto"`` means per-call dispatch; the per-backend pairs
            show what actually ran).
        kernel_pairs: ``(backend_name, pairs_scored)`` tuples — how
            many (probe, candidate) pairs each concrete kernel backend
            scored during this call, parent process plus per-shard
            worker deltas.  Zero-count backends are omitted.  Parent
            counts come from the process-wide tally, so concurrent
            joins from other threads of the same process would be
            attributed to whichever call snapshots last — the engines
            serialize joins (the serving layer through its batch
            executor), which keeps the accounting exact.
    """

    probes: int = 0
    unique_probes: int = 0
    exact_matches: int = 0
    empty_probes: int = 0
    pending: int = 0
    buckets: int = 0
    n_workers: int = 1
    shards: int = 0
    shard_sizes: tuple[int, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    kernel_backend: str = "auto"
    kernel_pairs: tuple[tuple[str, int], ...] = ()

    def as_dict(self) -> dict:
        """JSON-friendly dict form (tuples become lists/mappings)."""
        out = asdict(self)
        out["shard_sizes"] = list(out["shard_sizes"])
        out["kernel_pairs"] = dict(out["kernel_pairs"])
        return out


@dataclass(frozen=True)
class PoolStats:
    """What one pool run can report back to ``join_many``."""

    workers: int
    shards: int
    shard_sizes: tuple[int, ...]
    disk_hits: int
    disk_misses: int
    #: Summed per-shard ``(backend, pairs)`` deltas from the workers.
    kernel_pairs: tuple[tuple[str, int], ...] = ()


# Target shards per worker: a few pieces of slack per process so one
# slow shard (a dense region of the column) doesn't leave the rest of
# the pool idle at the tail of the batch.
_OVERSPLIT = 4

# Worker-process state, set once per worker by :func:`_init_worker`.
_WORKER_CACHE: IndexCache | None = None
_WORKER_DISK_BASE: tuple[int, int] = (0, 0)
# Fingerprint -> resolved index, so warm shards carry no column at all.
_WORKER_INDEXES: OrderedDict[str, QGramIndex] = OrderedDict()
_WORKER_INDEX_CAP = 8


class _ColumnNeeded(Exception):
    """A worker lacks the index behind a column fingerprint.

    Raised by :func:`_score_shard` when a shard arrives fingerprint-only
    (the warm path) but this worker has never resolved that column — a
    freshly spawned worker, or one whose small fingerprint memo evicted
    it.  The parent catches it and resubmits the shard with the column
    attached, so the protocol is self-healing at the cost of one extra
    round trip on the cold path.
    """

    @property
    def shard_id(self) -> int:
        return self.args[0]


def plan_shards(
    index: QGramIndex, buckets: dict[int, list[str]], n_workers: int
) -> list[tuple[int, list[str]]]:
    """Split length buckets into pool shards balanced by candidate mass.

    A probe's scoring cost is dominated by how many targets sit near its
    length, so each bucket's mass is ``probes x near-window targets``.
    Buckets whose mass exceeds the per-shard target (total mass spread
    over ``n_workers x oversplit`` shards) are split into probe chunks;
    small buckets ship whole.  The plan is a pure function of the
    inputs, so parent and test harnesses can reproduce it exactly.
    """
    # Imported lazily: joiner imports this module for the pool, so a
    # module-level import here would cycle.
    from repro.index.joiner import IndexedJoiner

    sorted_lengths = np.sort(index.lengths)
    window = IndexedJoiner._NEAR_LENGTHS
    entries: list[tuple[int, list[str], int]] = []
    total_mass = 0
    for length, bucket in buckets.items():
        lo = np.searchsorted(sorted_lengths, length - window, side="left")
        hi = np.searchsorted(sorted_lengths, length + window, side="right")
        mass = max(int(hi - lo), 1)
        entries.append((length, bucket, mass))
        total_mass += mass * len(bucket)
    if not entries:
        return []
    shard_target = max(1, -(-total_mass // (n_workers * _OVERSPLIT)))
    shards: list[tuple[int, list[str]]] = []
    for length, bucket, mass in entries:
        chunk = max(1, shard_target // mass)
        for start in range(0, len(bucket), chunk):
            shards.append((length, bucket[start : start + chunk]))
    return shards


def pool_context() -> multiprocessing.context.BaseContext:
    """Pick a start method: ``fork`` when it is safe, else a fresh start.

    ``fork`` is preferred — cheap startup, and the parent's built state
    (index caches, model weights) arrives copy-on-write — but forking a
    multi-threaded process is a deadlock hazard: any lock held by
    another thread at fork time (the index cache's own lock included)
    stays held forever in the child.  With other threads alive (the
    serving layer's scheduler, a caller's thread pool), fall back to
    ``forkserver``/``spawn``, which start workers from a clean
    interpreter.

    This policy is shared process-spawning machinery: the join engine's
    :class:`JoinWorkerPool` and the serving tier's
    :class:`~repro.serve.workers.ServeWorkerPool` both decide fork
    safety through it, so "fork-first, but never fork a threaded
    parent" holds everywhere worker processes are started.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


#: Backwards-compatible alias (pre-PR-9 internal name).
_pool_context = pool_context


def _init_worker(
    inherited_cache: IndexCache | None,
    cache_dir: str | None,
    use_default_cache: bool,
) -> None:
    """Set up this worker's index cache, once per worker process.

    Under the ``fork`` start method the parent's cache object rides in
    directly (initargs are inherited memory, never pickled), so the
    worker starts with every index the parent had already built.
    Fresh-start workers build their own cache over the same on-disk
    tier instead.  Either way the worker records its disk-counter
    baseline so shards can report deltas attributable to pool work.
    """
    global _WORKER_CACHE, _WORKER_DISK_BASE
    if inherited_cache is not None:
        _WORKER_CACHE = inherited_cache
    elif use_default_cache:
        _WORKER_CACHE = default_index_cache()
    else:
        _WORKER_CACHE = IndexCache(cache_dir=cache_dir)
    _WORKER_DISK_BASE = (_WORKER_CACHE.disk_hits, _WORKER_CACHE.disk_misses)


def _resolve_worker_index(
    shard_id: int,
    fingerprint: str,
    column: tuple[str, ...] | None,
    q: int | None,
) -> QGramIndex:
    """Resolve one column's index through this worker's memo/cache.

    A miss with no column attached raises :class:`_ColumnNeeded` so the
    parent can resubmit the shard with the column bytes.
    """
    cache = _WORKER_CACHE
    assert cache is not None, "worker initialized without a cache"
    index = _WORKER_INDEXES.get(fingerprint)
    if index is None:
        if column is None:
            raise _ColumnNeeded(shard_id)
        index = cache.get(column, q=q)
        _WORKER_INDEXES[fingerprint] = index
        while len(_WORKER_INDEXES) > _WORKER_INDEX_CAP:
            _WORKER_INDEXES.popitem(last=False)
    else:
        _WORKER_INDEXES.move_to_end(fingerprint)
    return index


def _worker_scorer(q: int | None, kernel_backend: str = "auto"):
    """Build the per-shard serial scorer (lazy import breaks the cycle).

    ``kernel_backend`` is the parent joiner's *resolved* backend name,
    so workers score with the same kernel whatever their environment
    says (``"auto"`` stays per-call dispatch, which resolves the same
    way in every process).
    """
    from repro.core.join_config import JoinConfig
    from repro.index.joiner import IndexedJoiner

    cache = _WORKER_CACHE
    assert cache is not None, "worker initialized without a cache"
    return IndexedJoiner(
        JoinConfig(q=q, n_workers=1, kernel_backend=kernel_backend),
        cache=cache,
    )


def _worker_disk_counters() -> tuple[int, int]:
    """This worker's disk-tier deltas since worker start."""
    cache = _WORKER_CACHE
    assert cache is not None, "worker initialized without a cache"
    return (
        cache.disk_hits - _WORKER_DISK_BASE[0],
        cache.disk_misses - _WORKER_DISK_BASE[1],
    )


def _score_shard(
    shard_id: int,
    length: int,
    probes: list[str],
    fingerprint: str,
    column: tuple[str, ...] | None,
    q: int | None,
    kernel_backend: str = "auto",
    k: int | None = None,
) -> tuple:
    """Score one shard; ship the results as reduced int32 arrays.

    Shards are addressed by column *fingerprint*: warm shards (the
    persistent pool's steady state) carry no column bytes at all and
    resolve through this worker's fingerprint memo; a miss with no
    column attached raises :class:`_ColumnNeeded` so the parent can
    resubmit with the column, which the worker then resolves through
    its content-keyed cache (memory, disk tier, or rebuild).  The
    payload carries value ids, not matched strings — the parent owns an
    equal-content index and maps ids back — plus this worker's pid and
    disk-tier counters (cumulative since worker start) so the parent
    can aggregate per-process cache behaviour without double-counting
    shards.

    With ``k`` set the shard runs the top-k bucket instead of the
    argmin: the payload becomes a ragged triple — per-probe candidate
    counts plus flat ``(vids, distances)`` arrays in rank order — which
    the parent slices back per probe.

    Each payload also carries this shard's per-backend kernel-pairs
    delta (snapshotted around the scoring, so persistent workers never
    double-report across shards or calls).
    """
    from repro.index.kernels import pairs_scored_snapshot

    index = _resolve_worker_index(shard_id, fingerprint, column, q)
    scorer = _worker_scorer(q, kernel_backend)
    pairs_before = pairs_scored_snapshot()
    if k is not None:
        ranked = scorer._topk_bucket(index, length, probes, k)
        counts = np.fromiter(
            (len(ranked[probe]) for probe in probes),
            dtype=np.int32,
            count=len(probes),
        )
        flat = [pair for probe in probes for pair in ranked[probe]]
        distances = np.fromiter(
            (distance for distance, _ in flat), dtype=np.int32, count=len(flat)
        )
        vids = np.fromiter(
            (vid for _, vid in flat), dtype=np.int32, count=len(flat)
        )
        payload = (counts, vids, distances)
    else:
        argmin = scorer._argmin_bucket(index, length, probes)
        vids = np.fromiter(
            (argmin[probe][0] for probe in probes),
            dtype=np.int32,
            count=len(probes),
        )
        distances = np.fromiter(
            (argmin[probe][1] for probe in probes),
            dtype=np.int32,
            count=len(probes),
        )
        payload = (vids, distances)
    kernel_pairs = tuple(
        (name, count - pairs_before.get(name, 0))
        for name, count in pairs_scored_snapshot().items()
        if count - pairs_before.get(name, 0)
    )
    disk_hits, disk_misses = _worker_disk_counters()
    return (
        shard_id,
        os.getpid(),
        disk_hits,
        disk_misses,
        kernel_pairs,
        *payload,
    )


def _composite_shard(
    shard_id: int,
    probes: list[tuple[str, ...]],
    fingerprints: list[str],
    columns: list[tuple[str, ...]] | None,
    qs: list[int | None],
    kernel_backend: str = "auto",
) -> tuple:
    """Resolve one composite-probe shard against per-column indexes.

    Same fingerprint-addressed protocol as :func:`_score_shard`, one
    fingerprint per target column; the payload is the per-probe
    ``(best_row, best_sum, matched_length)`` triple as int32 arrays
    (thresholds are applied by the parent, keeping rejection semantics
    in one place).
    """
    from repro.index.joiner import IndexedJoiner

    indexes = [
        _resolve_worker_index(
            shard_id,
            fingerprint,
            columns[position] if columns is not None else None,
            qs[position],
        )
        for position, fingerprint in enumerate(fingerprints)
    ]
    scorer = _worker_scorer(qs[0], kernel_backend)
    row_vids = [IndexedJoiner._row_value_ids(index) for index in indexes]
    rows = np.empty(len(probes), dtype=np.int32)
    sums = np.empty(len(probes), dtype=np.int32)
    lengths = np.empty(len(probes), dtype=np.int32)
    for j, probe in enumerate(probes):
        best_row, best_sum, matched_length = scorer._composite_argmin(
            indexes, row_vids, probe
        )
        rows[j] = best_row
        sums[j] = best_sum
        lengths[j] = matched_length
    disk_hits, disk_misses = _worker_disk_counters()
    return shard_id, os.getpid(), disk_hits, disk_misses, rows, sums, lengths


class JoinWorkerPool:
    """A process pool reused across ``join_many`` calls.

    Args:
        n_workers: Maximum worker processes (the executor spawns them
            on demand, so a pool sized for peak load costs nothing
            while idle).
        cache: The owning joiner's index cache; under the ``fork``
            start method it is inherited by workers copy-on-write, and
            its ``cache_dir`` names the on-disk tier fresh-start
            workers share.
        q: Gram size the owning joiner resolves indexes at (``None`` =
            adaptive), forwarded to workers with every shard.
        kernel_backend: The owning joiner's *resolved* kernel-backend
            name, forwarded to workers with every shard so sharded
            scoring runs the exact kernel the serial path would.

    The pool is not itself thread-safe — it executes one ``join_many``
    at a time, which is how :class:`~repro.index.joiner.IndexedJoiner`
    drives it (the serving layer serializes joins through its batch
    executor).  ``close()`` is idempotent; a closed pool refuses new
    work.
    """

    def __init__(
        self,
        n_workers: int,
        cache: IndexCache,
        q: int | None = None,
        kernel_backend: str = "auto",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.q = q
        self.kernel_backend = kernel_backend
        self._cache = cache
        self._executor: ProcessPoolExecutor | None = None
        self._fork_started = False
        self._closed = False
        # Per-pid cumulative disk counters already credited to earlier
        # calls, so each call reports only its own delta.
        self._credited_disk: dict[int, tuple[int, int]] = {}
        # Column fingerprints whose columns have already been shipped to
        # this executor's workers (warm shards go fingerprint-only).
        self._shipped_fps: set[str] = set()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if (
            self._executor is not None
            and self._fork_started
            and threading.active_count() > 1
        ):
            # The fork decision was made while single-threaded, but the
            # executor forks workers lazily at submit time — doing that
            # now, with other threads alive, risks inheriting a held
            # lock forever.  Rebuild from a fresh-start context before
            # accepting more work (the per-call re-check PR4's one-shot
            # pools performed implicitly).
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._executor is None:
            context = _pool_context()
            self._fork_started = context.get_start_method() == "fork"
            self._credited_disk.clear()
            self._shipped_fps.clear()
            if self._fork_started:
                # Initargs are inherited through fork, not pickled, so
                # the cache object (locks and all) rides in directly.
                initargs = (self._cache, None, False)
            else:
                cache_dir = (
                    str(self._cache.cache_dir)
                    if self._cache.cache_dir is not None
                    else None
                )
                initargs = (
                    None,
                    cache_dir,
                    self._cache is default_index_cache(),
                )
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=initargs,
            )
        return self._executor

    def run_buckets(
        self,
        index: QGramIndex,
        buckets: dict[int, list[str]],
        targets: Sequence[str],
        k: int | None = None,
    ) -> tuple[dict, PoolStats]:
        """Run every bucket's argmin (or top-k) through the pool.

        With ``k=None`` returns the merged ``probe -> (winner_value_id,
        distance)`` mapping — byte-identical to running
        :meth:`IndexedJoiner._argmin_bucket` serially per bucket — plus
        the pool counters for :class:`JoinStats`.  With ``k`` set, the
        mapping is ``probe -> [(distance, value_id), ...]`` in rank
        order, byte-identical to :meth:`IndexedJoiner._topk_bucket`.
        """
        shards = plan_shards(index, buckets, self.n_workers)
        if not shards:
            return {}, PoolStats(0, 0, (), 0, 0, ())
        try:
            return self._run_shards(index, shards, targets, k)
        except BrokenProcessPool:
            # A killed worker (OOM, signal) breaks the executor for
            # good.  Fail this call, but discard the executor so the
            # next call starts a fresh one — a crash costs one batch,
            # exactly as it did with per-call pools.
            self._discard_executor()
            raise

    def run_composite(
        self,
        indexes: Sequence[QGramIndex],
        probes: list[tuple[str, ...]],
        columns: Sequence[Sequence[str]],
    ) -> dict[tuple[str, ...], tuple[int, int, int]]:
        """Shard composite probes across the pool and merge the results.

        Returns ``probe -> (best_row, best_sum, matched_length)``,
        byte-identical to :meth:`IndexedJoiner._composite_argmin` per
        probe (each probe's result depends only on the indexes and the
        probe itself, so the chunking is irrelevant).  Columns ship by
        fingerprint with the same first-sighting / resend protocol as
        :meth:`run_buckets`.
        """
        if not probes:
            return {}
        chunk = max(1, -(-len(probes) // (self.n_workers * _OVERSPLIT)))
        shards = [
            probes[start : start + chunk]
            for start in range(0, len(probes), chunk)
        ]
        try:
            return self._run_composite_shards(indexes, shards, columns)
        except BrokenProcessPool:
            self._discard_executor()
            raise

    def _run_composite_shards(
        self,
        indexes: Sequence[QGramIndex],
        shards: list[list[tuple[str, ...]]],
        columns: Sequence[Sequence[str]],
    ) -> dict[tuple[str, ...], tuple[int, int, int]]:
        executor = self._ensure_executor()
        column_tuples = [tuple(column) for column in columns]
        qs = [index.q for index in indexes]
        fingerprints = [
            column_fingerprint(column, q)
            for column, q in zip(column_tuples, qs, strict=True)
        ]
        cold = any(fp not in self._shipped_fps for fp in fingerprints)
        shipped = column_tuples if cold else None
        self._shipped_fps.update(fingerprints)
        futures = [
            executor.submit(
                _composite_shard,
                shard_id,
                shard,
                fingerprints,
                shipped,
                qs,
                self.kernel_backend,
            )
            for shard_id, shard in enumerate(shards)
        ]
        argmins: dict[tuple[str, ...], tuple[int, int, int]] = {}
        worker_disk: dict[int, tuple[int, int]] = {}
        for future in futures:
            try:
                result = future.result()
            except _ColumnNeeded as missing:
                result = executor.submit(
                    _composite_shard,
                    missing.shard_id,
                    shards[missing.shard_id],
                    fingerprints,
                    column_tuples,
                    qs,
                    self.kernel_backend,
                ).result()
            shard_id, pid, disk_hits, disk_misses, rows, sums, lengths = result
            for probe, row, total, length in zip(
                shards[shard_id],
                rows.tolist(),
                sums.tolist(),
                lengths.tolist(),
                strict=True,
            ):
                argmins[probe] = (row, total, length)
            worker_disk[pid] = (disk_hits, disk_misses)
        self._credit_disk(worker_disk)
        return argmins

    def _credit_disk(self, worker_disk: dict[int, tuple[int, int]]) -> tuple[int, int]:
        """Turn per-pid cumulative disk counters into this call's delta."""
        call_hits = 0
        call_misses = 0
        for pid, (disk_hits, disk_misses) in worker_disk.items():
            seen_hits, seen_misses = self._credited_disk.get(pid, (0, 0))
            call_hits += disk_hits - seen_hits
            call_misses += disk_misses - seen_misses
            self._credited_disk[pid] = (disk_hits, disk_misses)
        return call_hits, call_misses

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def _run_shards(
        self,
        index: QGramIndex,
        shards: list[tuple[int, list[str]]],
        targets: Sequence[str],
        k: int | None = None,
    ) -> tuple[dict, PoolStats]:
        executor = self._ensure_executor()
        column = tuple(targets)
        fingerprint = column_fingerprint(column, index.q)
        # First sighting of a column ships its bytes with every shard;
        # after that, shards go fingerprint-only and a worker that
        # still misses (fresh process, evicted memo) asks for a resend.
        shipped = None if fingerprint in self._shipped_fps else column
        self._shipped_fps.add(fingerprint)
        futures = [
            executor.submit(
                _score_shard,
                shard_id,
                length,
                probes,
                fingerprint,
                shipped,
                self.q,
                self.kernel_backend,
                k,
            )
            for shard_id, (length, probes) in enumerate(shards)
        ]
        argmins: dict = {}
        worker_disk: dict[int, tuple[int, int]] = {}
        call_pairs: dict[str, int] = {}
        for future in futures:
            try:
                result = future.result()
            except _ColumnNeeded as missing:
                length, probes = shards[missing.shard_id]
                result = executor.submit(
                    _score_shard,
                    missing.shard_id,
                    length,
                    probes,
                    fingerprint,
                    column,
                    self.q,
                    self.kernel_backend,
                    k,
                ).result()
            if k is not None:
                (
                    shard_id,
                    pid,
                    disk_hits,
                    disk_misses,
                    shard_pairs,
                    counts,
                    vids,
                    distances,
                ) = result
                _, probes = shards[shard_id]
                offsets = np.concatenate(([0], np.cumsum(counts)))
                vid_list = vids.tolist()
                dist_list = distances.tolist()
                for j, probe in enumerate(probes):
                    lo, hi = int(offsets[j]), int(offsets[j + 1])
                    argmins[probe] = list(
                        zip(dist_list[lo:hi], vid_list[lo:hi], strict=True)
                    )
            else:
                (
                    shard_id,
                    pid,
                    disk_hits,
                    disk_misses,
                    shard_pairs,
                    vids,
                    distances,
                ) = result
                _, probes = shards[shard_id]
                for probe, vid, distance in zip(
                    probes, vids.tolist(), distances.tolist(), strict=True
                ):
                    argmins[probe] = (vid, distance)
            worker_disk[pid] = (disk_hits, disk_misses)
            for name, count in shard_pairs:
                call_pairs[name] = call_pairs.get(name, 0) + count
        call_hits, call_misses = self._credit_disk(worker_disk)
        return argmins, PoolStats(
            workers=min(self.n_workers, len(shards)),
            shards=len(shards),
            shard_sizes=tuple(len(probes) for _, probes in shards),
            disk_hits=call_hits,
            disk_misses=call_misses,
            kernel_pairs=tuple(sorted(call_pairs.items())),
        )

    def close(self) -> None:
        """Shut the executor down; idempotent."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> JoinWorkerPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Parallel sharded execution for the batched join.

:func:`parallel_argmin_buckets` fans the length buckets of one
:meth:`~repro.index.joiner.IndexedJoiner.join_many` call out across a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges the results
deterministically.  The contract is the engine-wide one: **byte-identical
results to the serial scan**, which the sharding preserves by
construction —

* a bucket probe's argmin depends only on ``(index, length, probe)``,
  never on which other probes share the bucket, so buckets can split
  anywhere;
* every worker scores against an equal-content index (loaded from the
  on-disk cache tier, inherited through ``fork``, or rebuilt from the
  shipped column — all three construct the identical structure); and
* the merge keys results by probe value, so completion order is
  irrelevant.

Shards are planned by **candidate mass**, not probe count: a bucket's
per-probe cost scales with how many targets sit within the near-length
window, so a skewed workload (thousands of probes at the column's modal
length) is split into more pieces than its probe share alone would
suggest.  Workers return ``(value_id, distance)`` pairs as reduced
``int32`` arrays — the parent maps ids back to strings through its own
index — so result pickling stays cheap even for very wide batches.

Worker startup prefers the ``fork`` start method where the platform
offers it: the parent's process-level index cache arrives by
copy-on-write, so workers usually begin scoring without building or
loading anything.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass

import numpy as np

from repro.index.cache import IndexCache, default_index_cache
from repro.index.joiner import IndexedJoiner
from repro.index.qgram import QGramIndex


@dataclass(frozen=True)
class JoinStats:
    """Counters from one :meth:`IndexedJoiner.join_many` call.

    Attributes:
        probes: Probe rows requested (duplicates included).
        unique_probes: Distinct probe values after deduplication.
        exact_matches: Unique probes resolved by exact-match lookup.
        empty_probes: Unique probes that were abstentions (``""``).
        pending: Unique probes that went through bucketed scoring.
        buckets: Length buckets those probes formed.
        n_workers: Worker processes the pool actually ran (capped by
            the shard count; 1 = serial execution).
        shards: Bucket shards dispatched to the pool (0 when serial).
        shard_sizes: Probe count of each shard, in dispatch order.
        cache_hits: In-memory index-cache hits during the call.
        cache_misses: In-memory index-cache misses during the call.
        disk_hits: On-disk index-cache hits — the parent's plus those
            reported by shard-executing workers (fork-started workers
            inherit the parent's index and pay none; a fresh-start
            worker that initialized but never drew a shard goes
            unreported).
        disk_misses: On-disk index-cache misses, same accounting;
            zero when no disk tier is configured.
    """

    probes: int = 0
    unique_probes: int = 0
    exact_matches: int = 0
    empty_probes: int = 0
    pending: int = 0
    buckets: int = 0
    n_workers: int = 1
    shards: int = 0
    shard_sizes: tuple[int, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly dict form (tuples become lists)."""
        out = asdict(self)
        out["shard_sizes"] = list(out["shard_sizes"])
        return out


@dataclass(frozen=True)
class PoolStats:
    """What the pool run itself can report back to ``join_many``."""

    workers: int
    shards: int
    shard_sizes: tuple[int, ...]
    disk_hits: int
    disk_misses: int


# Target shards per worker: a few pieces of slack per process so one
# slow shard (a dense region of the column) doesn't leave the rest of
# the pool idle at the tail of the batch.
_OVERSPLIT = 4

# Worker-process state, set once per pool by :func:`_init_worker`.
_WORKER_INDEX: QGramIndex | None = None
_WORKER_SCORER: IndexedJoiner | None = None
_WORKER_DISK: tuple[int, int] = (0, 0)

# Under the fork start method the parent's already-built index rides to
# workers through this module global (copy-on-write, zero pickling and
# zero rebuilding) instead of initargs; the parent sets it immediately
# before pool creation and clears it after.  Spawn/forkserver pools
# ship the column via initargs instead and resolve the index through
# the cache hierarchy.
_FORK_INDEX: QGramIndex | None = None


def plan_shards(
    index: QGramIndex, buckets: dict[int, list[str]], n_workers: int
) -> list[tuple[int, list[str]]]:
    """Split length buckets into pool shards balanced by candidate mass.

    A probe's scoring cost is dominated by how many targets sit near its
    length, so each bucket's mass is ``probes x near-window targets``.
    Buckets whose mass exceeds the per-shard target (total mass spread
    over ``n_workers x oversplit`` shards) are split into probe chunks;
    small buckets ship whole.  The plan is a pure function of the
    inputs, so parent and test harnesses can reproduce it exactly.
    """
    sorted_lengths = np.sort(index.lengths)
    window = IndexedJoiner._NEAR_LENGTHS
    entries: list[tuple[int, list[str], int]] = []
    total_mass = 0
    for length, bucket in buckets.items():
        lo = np.searchsorted(sorted_lengths, length - window, side="left")
        hi = np.searchsorted(sorted_lengths, length + window, side="right")
        mass = max(int(hi - lo), 1)
        entries.append((length, bucket, mass))
        total_mass += mass * len(bucket)
    if not entries:
        return []
    shard_target = max(1, -(-total_mass // (n_workers * _OVERSPLIT)))
    shards: list[tuple[int, list[str]]] = []
    for length, bucket, mass in entries:
        chunk = max(1, shard_target // mass)
        for start in range(0, len(bucket), chunk):
            shards.append((length, bucket[start : start + chunk]))
    return shards


def _pool_context() -> multiprocessing.context.BaseContext:
    """Pick a start method: ``fork`` when it is safe, else a fresh start.

    ``fork`` is preferred — cheap startup and the parent's index cache
    (plus :data:`_FORK_COLUMN`) arrives copy-on-write — but forking a
    multi-threaded process is a deadlock hazard: any lock held by
    another thread at fork time (the index cache's own lock included)
    stays held forever in the child.  With other threads alive, fall
    back to ``forkserver``/``spawn``, which start workers from a clean
    interpreter.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


def _init_worker(
    targets: tuple[str, ...] | None,
    q: int | None,
    cache_dir: str | None,
    use_default_cache: bool,
) -> None:
    """Resolve this worker's index once, before any shard arrives.

    ``targets`` is ``None`` under the fork start method — the parent's
    built index arrives directly through the inherited
    :data:`_FORK_INDEX` (no pickling, no rebuild, no disk traffic).
    Fresh-start pools get the pickled column instead and resolve
    through the cache hierarchy: the on-disk tier under ``cache_dir``,
    then a rebuild from the column.  All paths produce an equal-content
    index, so the choice affects startup cost only.
    """
    global _WORKER_INDEX, _WORKER_SCORER, _WORKER_DISK
    if targets is None:
        assert _FORK_INDEX is not None, "forked worker missing its index"
        _WORKER_INDEX = _FORK_INDEX
        _WORKER_SCORER = IndexedJoiner(q=q, n_workers=1)
        return
    cache = (
        default_index_cache()
        if use_default_cache
        else IndexCache(cache_dir=cache_dir)
    )
    disk_hits, disk_misses = cache.disk_hits, cache.disk_misses
    _WORKER_INDEX = cache.get(targets, q=q)
    _WORKER_DISK = (cache.disk_hits - disk_hits, cache.disk_misses - disk_misses)
    _WORKER_SCORER = IndexedJoiner(q=q, cache=cache, n_workers=1)


def _score_shard(
    shard_id: int, length: int, probes: list[str]
) -> tuple[int, int, int, int, np.ndarray, np.ndarray]:
    """Score one shard; ship the results as reduced int32 arrays.

    The payload carries value ids, not matched strings — the parent
    owns an equal-content index and maps ids back — plus this worker's
    pid and disk-tier counters so the parent can aggregate per-process
    cache behaviour without double-counting shards.
    """
    assert _WORKER_INDEX is not None and _WORKER_SCORER is not None
    argmin = _WORKER_SCORER._argmin_bucket(_WORKER_INDEX, length, probes)
    vids = np.fromiter(
        (argmin[probe][0] for probe in probes), dtype=np.int32, count=len(probes)
    )
    distances = np.fromiter(
        (argmin[probe][1] for probe in probes), dtype=np.int32, count=len(probes)
    )
    return shard_id, os.getpid(), *_WORKER_DISK, vids, distances


def parallel_argmin_buckets(
    joiner: IndexedJoiner,
    index: QGramIndex,
    buckets: dict[int, list[str]],
    n_workers: int,
    targets: Sequence[str],
) -> tuple[dict[str, tuple[int, int]], PoolStats]:
    """Run every bucket's argmin through a worker pool.

    Returns the merged ``probe -> (winner_value_id, distance)`` mapping
    — byte-identical to running
    :meth:`IndexedJoiner._argmin_bucket` serially per bucket — plus the
    pool counters for :class:`JoinStats`.
    """
    shards = plan_shards(index, buckets, n_workers)
    if not shards:
        return {}, PoolStats(0, 0, (), 0, 0)
    cache = joiner.cache
    use_default_cache = cache is default_index_cache()
    cache_dir = str(cache.cache_dir) if cache.cache_dir is not None else None
    context = _pool_context()
    pool_workers = min(n_workers, len(shards))
    if context.get_start_method() == "fork":
        # Workers fork during the submit loop below and inherit the
        # parent's built index copy-on-write; ship a sentinel instead
        # of pickling the column into every worker and rebuilding.
        global _FORK_INDEX
        _FORK_INDEX = index
        shipped_column = None
    else:
        shipped_column = tuple(targets)
    argmins: dict[str, tuple[int, int]] = {}
    worker_disk: dict[int, tuple[int, int]] = {}
    try:
        with ProcessPoolExecutor(
            max_workers=pool_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(shipped_column, joiner.q, cache_dir, use_default_cache),
        ) as pool:
            futures = [
                pool.submit(_score_shard, shard_id, length, probes)
                for shard_id, (length, probes) in enumerate(shards)
            ]
            for future in futures:
                shard_id, pid, disk_hits, disk_misses, vids, distances = (
                    future.result()
                )
                _, probes = shards[shard_id]
                for probe, vid, distance in zip(
                    probes, vids.tolist(), distances.tolist(), strict=True
                ):
                    argmins[probe] = (vid, distance)
                worker_disk[pid] = (disk_hits, disk_misses)
    finally:
        if shipped_column is None:
            _FORK_INDEX = None
    return argmins, PoolStats(
        workers=pool_workers,
        shards=len(shards),
        shard_sizes=tuple(len(probes) for _, probes in shards),
        disk_hits=sum(hits for hits, _ in worker_disk.values()),
        disk_misses=sum(misses for _, misses in worker_disk.values()),
    )

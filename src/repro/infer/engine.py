"""The generation engine: batched, scheduled auto-regressive decoding.

:class:`GenerationEngine` owns the decode loop that used to live inside
``ByteSeq2SeqModel.generate``.  Given one or more ``(model, prompts)``
jobs it schedules the actual decoding work:

* **Dedupe** — in greedy mode, identical tokenized prompts (across the
  trials of a scheduled call) decode once and fan back out to every
  occurrence.  Sampling mode never dedupes: repeated prompts draw
  independent samples, matching the surrogates' occurrence semantics.
* **Length-bucketed micro-batching** — prompts are sorted by token
  length and grouped into buckets of similar length (``bucket_width``),
  then chunked at ``max_batch_size``, so short prompts don't pay the
  padded cost of the longest prompt in the call.
* **Live compaction** — rows that emit ``<eos>`` are sliced out of the
  micro-batch (KV caches included) mid-decode, so a few long outputs
  don't drag finished rows through the remaining steps.

Models that do not expose the incremental-decoding interface (the
surrogates, or any external :class:`~repro.core.interface.SequenceModel`)
fall back to their own ``generate``, keeping the engine a drop-in
scheduler for heterogeneous ensembles.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.interface import IncrementalSequenceModel, SequenceModel
from repro.nn.functional import softmax
from repro.obs.trace import get_tracer
from repro.utils.rng import derive_rng

_MODES = ("greedy", "sample")


@dataclass
class EngineStats:
    """Counters from the most recent :meth:`GenerationEngine.generate`.

    Attributes:
        prompts: Prompts requested.
        decoded_rows: Rows actually decoded (post-dedupe).  Zero when
            the call fell back to a non-incremental model's own
            ``generate`` — the engine decoded nothing itself.
        chunks: Micro-batches scheduled.
        steps: Total ``decode_step`` calls across all chunks.
        row_steps: Sum of live batch sizes over those steps — the number
            of per-row decode operations actually paid.  With compaction
            this is strictly less than ``decoded_rows * max_steps`` when
            rows finish early.
    """

    prompts: int = 0
    decoded_rows: int = 0
    chunks: int = 0
    steps: int = 0
    row_steps: int = 0

    @classmethod
    def merged(cls, stats: Sequence[EngineStats]) -> EngineStats:
        """Sum counters across jobs (an ensemble pass, a serve batch)."""
        total = cls()
        for item in stats:
            total.prompts += item.prompts
            total.decoded_rows += item.decoded_rows
            total.chunks += item.chunks
            total.steps += item.steps
            total.row_steps += item.row_steps
        return total


@dataclass
class _Workload:
    """One unique decode row and the request indices it fans out to."""

    token_ids: list[int]
    rows: list[int] = field(default_factory=list)


class GenerationEngine:
    """Schedules auto-regressive decoding for one or more models.

    Args:
        mode: ``"greedy"`` (deterministic argmax) or ``"sample"``
            (temperature sampling).
        temperature: Softmax temperature for sampling mode (> 0).
        seed: Sampling seed; the engine is deterministic given the seed,
            the model, and the prompt list.
        max_batch_size: Largest decode micro-batch.
        bucket_width: Prompt-length bucket granularity in tokens; 1
            buckets only exactly-equal lengths, larger values trade a
            little padding for bigger micro-batches.
        dedupe: Collapse identical prompts before decoding (greedy mode
            only; sampling always decodes every occurrence).
        stop_on_eos: Stop a row at its first ``<eos>``.  Disabled only
            by benchmarks that need every row to run the full budget.
    """

    def __init__(
        self,
        mode: str = "greedy",
        temperature: float = 1.0,
        seed: int = 0,
        max_batch_size: int = 64,
        bucket_width: int = 16,
        dedupe: bool = True,
        stop_on_eos: bool = True,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if mode == "sample" and temperature <= 0.0:
            raise ValueError(f"temperature must be > 0, got {temperature}")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if bucket_width < 1:
            raise ValueError(f"bucket_width must be >= 1, got {bucket_width}")
        self.mode = mode
        self.temperature = temperature
        self.seed = seed
        self.max_batch_size = max_batch_size
        self.bucket_width = bucket_width
        self.dedupe = dedupe
        self.stop_on_eos = stop_on_eos
        self.last_stats = EngineStats()

    # -- scheduling entry points ------------------------------------------

    def run(
        self, jobs: Sequence[tuple[SequenceModel, Sequence[str]]]
    ) -> list[list[str]]:
        """Run every ``(model, prompts)`` job through one scheduled pass.

        The per-model workloads are planned independently (different
        models share no weights, so their decodes cannot be merged), but
        each incremental model's full prompt set — all trials at once —
        goes through dedupe, bucketing, and compaction as one batch.

        Returns:
            One output list per job, aligned with the job's prompts.
        """
        return [self.generate(model, prompts) for model, prompts in jobs]

    def run_with_stats(
        self, jobs: Sequence[tuple[SequenceModel, Sequence[str]]]
    ) -> tuple[list[list[str]], list[EngineStats]]:
        """Like :meth:`run`, returning per-job stats alongside the outputs.

        Unlike :meth:`run`/:meth:`generate` — which publish counters
        through the shared :attr:`last_stats` slot — this entry point
        hands each job's :class:`EngineStats` straight back to the
        caller, so concurrent schedulers (the serving layer's batch
        executor, an eval run on another thread) never read each
        other's counters.  The engine holds no per-call mutable state
        beyond ``last_stats``, which this method does not touch, making
        it safe to re-enter from multiple threads with externally
        composed batches.
        """
        tracer = get_tracer()
        outputs: list[list[str]] = []
        stats: list[EngineStats] = []
        for model, prompts in jobs:
            span = tracer.start_span("engine.decode")
            try:
                job_outputs, job_stats = self.generate_with_stats(
                    model, prompts
                )
            except BaseException as error:
                span.set_error(repr(error))
                span.finish()
                raise
            span.set_attributes(
                {
                    "model": getattr(model, "name", type(model).__name__),
                    "prompts": job_stats.prompts,
                    "decoded_rows": job_stats.decoded_rows,
                    "chunks": job_stats.chunks,
                    "steps": job_stats.steps,
                    "row_steps": job_stats.row_steps,
                }
            )
            span.finish()
            outputs.append(job_outputs)
            stats.append(job_stats)
        return outputs, stats

    def generate(
        self, model: SequenceModel, prompts: Sequence[str]
    ) -> list[str]:
        """Generate one output per prompt with ``model``.

        Incremental models decode through the engine's scheduled loop;
        any other ``SequenceModel`` falls back to its own ``generate``.
        A model carrying its *own* configured engine (for example a
        sampling engine on one ensemble member) is delegated to it —
        the most specific engine wins.
        """
        outputs, stats = self.generate_with_stats(model, prompts)
        self.last_stats = stats
        return outputs

    def generate_with_stats(
        self, model: SequenceModel, prompts: Sequence[str]
    ) -> tuple[list[str], EngineStats]:
        """:meth:`generate` without publishing to :attr:`last_stats`.

        The re-entrant core of the engine: a pure function of
        ``(engine config, model, prompts)`` with no shared mutable
        state, so external schedulers can run it concurrently.
        """
        prompts = list(prompts)
        if not prompts:
            return [], EngineStats()
        own_engine = getattr(model, "engine", None)
        if isinstance(own_engine, GenerationEngine) and own_engine is not self:
            outputs, stats = own_engine.generate_with_stats(model, prompts)
            # The most specific engine wins, and it also publishes the
            # counters — a model-owned engine is that model's private
            # scheduler, never shared across threads.
            own_engine.last_stats = stats
            return outputs, stats
        if not isinstance(model, IncrementalSequenceModel):
            return model.generate(prompts), EngineStats(prompts=len(prompts))

        token_ids = model.tokenize_prompts(prompts)
        workloads = self._collect(token_ids)
        stats = EngineStats(prompts=len(prompts), decoded_rows=len(workloads))
        rng = (
            derive_rng(self.seed, "generate", getattr(model, "name", ""))
            if self.mode == "sample"
            else None
        )
        results: list[str | None] = [None] * len(prompts)
        for chunk in self._plan(workloads):
            outputs = self._decode_chunk(
                model, [w.token_ids for w in chunk], rng, stats
            )
            stats.chunks += 1
            for workload, text in zip(chunk, outputs, strict=True):
                for row in workload.rows:
                    results[row] = text
        assert all(text is not None for text in results)
        return results, stats  # type: ignore[return-value]

    # -- planning ----------------------------------------------------------

    def _collect(self, token_ids: list[list[int]]) -> list[_Workload]:
        """Build unique decode rows, collapsing duplicates in greedy mode."""
        if not (self.dedupe and self.mode == "greedy"):
            return [_Workload(ids, [row]) for row, ids in enumerate(token_ids)]
        groups: dict[tuple[int, ...], _Workload] = {}
        for row, ids in enumerate(token_ids):
            key = tuple(ids)
            workload = groups.get(key)
            if workload is None:
                workload = _Workload(ids)
                groups[key] = workload
            workload.rows.append(row)
        return list(groups.values())

    def _plan(self, workloads: list[_Workload]) -> list[list[_Workload]]:
        """Sort by prompt length, bucket, and chunk to the batch cap."""
        ordered = sorted(workloads, key=lambda w: len(w.token_ids))
        chunks: list[list[_Workload]] = []
        current: list[_Workload] = []
        current_bucket: int | None = None
        for workload in ordered:
            bucket = len(workload.token_ids) // self.bucket_width
            if current and (
                bucket != current_bucket or len(current) >= self.max_batch_size
            ):
                chunks.append(current)
                current = []
            current_bucket = bucket
            current.append(workload)
        if current:
            chunks.append(current)
        return chunks

    # -- the decode loop ---------------------------------------------------

    def _decode_chunk(
        self,
        model: IncrementalSequenceModel,
        prompt_ids: list[list[int]],
        rng: np.random.Generator | None,
        stats: EngineStats,
    ) -> list[str]:
        """Decode one micro-batch, compacting finished rows out live."""
        session = model.start_decode(prompt_ids)
        n_rows = len(prompt_ids)
        tokens: list[list[int]] = [[] for _ in range(n_rows)]
        live = np.arange(n_rows)
        current = np.full(n_rows, session.sos_id, dtype=np.int64)
        for _ in range(session.max_steps):
            logits = session.step(current)
            stats.steps += 1
            stats.row_steps += live.size
            next_ids = self._choose(logits, rng)
            for slot, row in enumerate(live):
                tokens[row].append(int(next_ids[slot]))
            if not self.stop_on_eos:
                current = next_ids
                continue
            finished = next_ids == session.eos_id
            if finished.any():
                keep = ~finished
                live = live[keep]
                if live.size == 0:
                    break
                session.compact(keep)
                current = next_ids[keep]
            else:
                current = next_ids
        return [session.decode_tokens(row_tokens) for row_tokens in tokens]

    def _choose(
        self, logits: np.ndarray, rng: np.random.Generator | None
    ) -> np.ndarray:
        """Pick next tokens: argmax (greedy) or temperature sampling."""
        if self.mode == "greedy":
            return logits.argmax(axis=-1)
        assert rng is not None
        probs = softmax(logits / self.temperature, axis=-1)
        draws = rng.random((probs.shape[0], 1))
        next_ids = (probs.cumsum(axis=-1) < draws).sum(axis=-1)
        return np.minimum(next_ids, probs.shape[-1] - 1)

"""One incremental decode session over an encoded prompt micro-batch.

A :class:`DecodeSession` is the unit of work the generation engine
schedules: it encodes one micro-batch of tokenized prompts, holds the
decoder's incremental state (per-block self-attention KV caches plus the
one-time cross-attention projections of the encoder memory), and steps
the decoder one token per call.  Finished rows are compacted out of the
batch via :meth:`compact` so the remaining rows decode in a smaller
batch.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.transformer import Seq2SeqTransformer
from repro.tokenizer import ByteTokenizer


class DecodeSession:
    """Incremental decoding over one encoded micro-batch.

    Args:
        network: The transformer whose decoder is stepped.
        tokenizer: Tokenizer used to pad the batch and decode outputs.
        prompt_ids: Tokenized (pre-truncated) prompts of the micro-batch.
        max_steps: Decode-step budget (tokens generated per row).
    """

    def __init__(
        self,
        network: Seq2SeqTransformer,
        tokenizer: ByteTokenizer,
        prompt_ids: Sequence[Sequence[int]],
        max_steps: int,
    ) -> None:
        input_ids, input_mask = tokenizer.pad_batch(
            [list(ids) for ids in prompt_ids]
        )
        if input_ids.shape[1] == 0:
            # A micro-batch of zero-token prompts (impossible via the
            # §4.1 markup, reachable through the raw generate API):
            # give the encoder one padding column so shapes stay valid.
            # The all-zero mask routes cross-attention through the
            # degeneracy guard (zero context) instead of the batch
            # path's uniform-over-padding fallback, so such rows are
            # excluded from the byte-identical equivalence claim.
            input_ids = np.full(
                (len(prompt_ids), 1), tokenizer.vocab.pad_id, dtype=np.int64
            )
            input_mask = np.zeros((len(prompt_ids), 1))
        memory = network.encode(input_ids, input_mask)
        self._network = network
        self._tokenizer = tokenizer
        self.state = network.start_decoder_state(
            memory, input_mask, capacity=max_steps
        )
        self.max_steps = max_steps
        self.batch_size = len(prompt_ids)

    @property
    def sos_id(self) -> int:
        return self._tokenizer.vocab.sos_id

    @property
    def eos_id(self) -> int:
        return self._tokenizer.vocab.eos_id

    def step(self, token_ids: np.ndarray) -> np.ndarray:
        """Decode one token per live row; returns ``(batch, vocab)`` logits."""
        return self._network.decode_step(token_ids, self.state)

    def compact(self, keep: np.ndarray) -> None:
        """Drop finished rows; ``keep`` flags the rows that stay live."""
        self.state.select(keep)
        self.batch_size = int(np.count_nonzero(keep))

    def decode_tokens(self, token_ids: Sequence[int]) -> str:
        """Render generated token ids as text (stops at ``<eos>``)."""
        return self._tokenizer.decode(list(token_ids), strip_special=True)

"""The inference subsystem: KV-cached generation with batched scheduling.

Generation used to re-decode the entire growing prefix at every step —
O(T²) per row in output length.  This package routes it through the
transformer's incremental path instead: per-block self-attention KV
caches, one-time cross-attention projections of the encoder memory, and
a :class:`GenerationEngine` that schedules prompts across micro-batches
(greedy dedupe, length bucketing, live compaction of finished rows).
Greedy engine output is byte-identical to the full-prefix reference
decode (``ByteSeq2SeqModel.generate_full_prefix``), enforced by
``tests/test_generation.py`` — except zero-token prompts (impossible
via the §4.1 markup), which decode through the masked-softmax
degeneracy guard instead of the batch path's uniform-over-padding
fallback.
"""

from repro.infer.engine import EngineStats, GenerationEngine
from repro.infer.session import DecodeSession

__all__ = ["GenerationEngine", "EngineStats", "DecodeSession"]

"""Zero-dependency structured request tracing for the serving tier.

A **trace** is the tree of timed spans one request produces as it
crosses the serving stack: the HTTP layer opens a *root span* per
request, the :class:`~repro.serve.service.TransformService` scheduler
adds queue-wait and batch-execute children, the
:class:`~repro.infer.engine.GenerationEngine` adds per-job decode
spans, and the Eq. 5 join layer adds index-build / candidate-filter /
kernel-sweep spans tagged with its :class:`~repro.index.parallel.JoinStats`
counters.  Worker processes serialize their span context over the
dispatch pipe and ship finished spans back with each reply, so a trace
fans back in with correct parentage whichever worker served it.

Three design constraints shape everything here:

* **Unmeasurable when off.**  Sampling is *head-based*: the root span
  decides once, at request start, whether this trace records.  An
  unsampled trace creates exactly one lightweight :class:`Span` (the
  root, so ``X-Repro-Trace-Id`` and log correlation still work) and
  every child-span call short-circuits to the shared :data:`NULL_SPAN`
  — no allocation, no clock reads, no lock traffic on the request
  path.  ``BENCH_serve.json`` holds the serving tier to this.
* **Errors always surface.**  Whatever the sample rate, a trace whose
  root finishes with ``status="error"`` (5xx responses, deadline
  breaches, worker crashes) is committed to the collector — root-only
  when the trace was unsampled, with full children when it was.
* **Process-agnostic.**  A :class:`SpanContext` is a tiny frozen
  dataclass that pickles across the worker pipe; remote children carry
  the originating trace/span ids, so the parent's collector can splice
  worker-side spans into the right tree.  Span ``start`` times are
  per-process monotonic clocks (only durations are comparable across
  processes); ``wall_start`` is stamped for cross-process ordering.

The module owns a process-global :class:`Tracer` (``get_tracer()``),
configured by the serving CLI's ``--trace-sample-rate`` via
:func:`configure_tracing`.  Nothing here imports anything outside the
standard library.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass

#: Wire version of the ``/debug/traces`` payload.
TRACE_SCHEMA_VERSION = 1

#: Default collector capacity (recent traces kept) and slowest-set size.
DEFAULT_CAPACITY = 256
DEFAULT_SLOWEST = 32

#: Open traces the tracer will buffer spans for before dropping the
#: oldest — a leak guard for traces whose root never finishes (a worker
#: whose parent died mid-request, a crashed handler thread).
_MAX_PENDING_TRACES = 512


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: what crosses threads and pipes.

    Attributes:
        trace_id: Id shared by every span of one request's trace.
        span_id: This span's own id (children cite it as ``parent_id``).
        sampled: The head-based sampling decision, made once at the
            root; remote children honour it without re-rolling.
    """

    trace_id: str
    span_id: str
    sampled: bool


class Span:
    """One timed, attributed node of a trace tree.

    Spans are created through a :class:`Tracer` (never directly), carry
    monotonic ``start``/``duration_s`` plus a wall-clock ``wall_start``
    for cross-process ordering, and report themselves to their tracer
    exactly once on :meth:`finish`.  All methods are safe to call on
    the no-op :data:`NULL_SPAN` too, so instrumentation sites never
    need a conditional.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
        "start",
        "wall_start",
        "duration_s",
        "status",
        "attributes",
        "_tracer",
        "_finished",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        sampled: bool,
        attributes: dict | None = None,
        start: float | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.start = time.monotonic() if start is None else start
        self.wall_start = time.time()
        self.duration_s: float | None = None
        self.status = "ok"
        self.attributes: dict = dict(attributes) if attributes else {}
        self._tracer = tracer
        self._finished = False

    @property
    def context(self) -> SpanContext:
        """This span's picklable identity (for pipes and threads)."""
        return SpanContext(self.trace_id, self.span_id, self.sampled)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one typed attribute (JSON-friendly values only)."""
        self.attributes[key] = value

    def set_attributes(self, attributes: dict) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def set_error(self, detail: str = "") -> None:
        """Mark the span failed; error traces are always collected."""
        self.status = "error"
        if detail:
            self.attributes["error_detail"] = detail

    def finish(
        self, status: str | None = None, end: float | None = None
    ) -> None:
        """Close the span (idempotent) and report it to the tracer."""
        if self._finished:
            return
        self._finished = True
        if status is not None:
            self.status = status
        self.duration_s = (
            time.monotonic() if end is None else end
        ) - self.start
        self._tracer._on_finish(self)

    def to_dict(self) -> dict:
        """JSON-friendly form (what crosses the worker pipe)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall_start": self.wall_start,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class _NullSpan:
    """The shared no-op span: every method returns immediately.

    Handed out for children of unsampled (or absent) parents, so
    instrumentation sites call the same API whatever the sampling
    decision — the cost of tracing-off is one identity check.
    """

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    sampled = False
    status = "ok"
    duration_s = None

    @property
    def context(self) -> SpanContext | None:
        """No identity: a null span cannot parent anything."""
        return None

    def set_attribute(self, key: str, value: object) -> None:
        """No-op."""

    def set_attributes(self, attributes: dict) -> None:
        """No-op."""

    def set_error(self, detail: str = "") -> None:
        """No-op."""

    def finish(
        self, status: str | None = None, end: float | None = None
    ) -> None:
        """No-op."""


#: The singleton no-op span (identity-comparable: ``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()

_CURRENT_SPAN: ContextVar[Span | None] = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Span | None:
    """The span active in this thread/task context, or ``None``."""
    return _CURRENT_SPAN.get()


def current_context() -> SpanContext | None:
    """The active *sampled* span's context, or ``None``.

    The propagation helper request paths use: it returns ``None`` both
    when no trace is active and when the active trace is unsampled, so
    callers can store the result and skip all downstream tracing work
    on a single ``is None`` check.
    """
    span = _CURRENT_SPAN.get()
    if span is None or not span.sampled:
        return None
    return span.context


class TraceCollector:
    """A thread-safe bounded store of finished traces.

    Keeps two views: a ring of the most recent traces (``capacity``)
    and the slowest-N by root duration since process start — the pair
    the ``/debug/traces`` endpoint serves.  Adding is O(capacity) worst
    case (slowest-list insertion) under one lock; the serving tier only
    pays it for sampled or errored traces.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slowest: int = DEFAULT_SLOWEST,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slowest < 0:
            raise ValueError(f"slowest must be >= 0, got {slowest}")
        self.capacity = capacity
        self.max_slowest = slowest
        self._recent: deque[dict] = deque(maxlen=capacity)
        self._slowest: list[dict] = []
        self._lock = threading.Lock()
        self.collected = 0

    def add(self, trace: dict) -> None:
        """Record one finished trace (see :meth:`Tracer._commit`)."""
        with self._lock:
            self.collected += 1
            self._recent.append(trace)
            if self.max_slowest:
                self._slowest.append(trace)
                self._slowest.sort(
                    key=lambda t: t.get("duration_s") or 0.0, reverse=True
                )
                del self._slowest[self.max_slowest :]

    def snapshot(self, limit: int | None = None) -> dict:
        """The ``/debug/traces`` body: recent + slowest, newest first."""
        with self._lock:
            recent = list(self._recent)
            slowest = list(self._slowest)
            collected = self.collected
        recent.reverse()
        if limit is not None:
            recent = recent[:limit]
            slowest = slowest[:limit]
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "collected": collected,
            "recent": recent,
            "slowest": slowest,
        }

    def clear(self) -> None:
        """Drop every stored trace (tests and bench isolation)."""
        with self._lock:
            self._recent.clear()
            self._slowest.clear()
            self.collected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)


class Tracer:
    """Creates spans, buffers them per trace, commits finished traces.

    Args:
        collector: Destination for finished traces; ``None`` builds a
            default :class:`TraceCollector`.
        sample_rate: Head-based sampling probability in ``[0, 1]``.
            ``0.0`` (the default) records nothing except errored
            traces' roots; ``1.0`` records every trace.
        rng: Sampling source (injectable for tests).

    Finished spans buffer in a per-trace pending table; when a trace's
    *root* finishes, the whole tree commits to the collector iff the
    trace was sampled or the root errored.  Worker processes — whose
    roots live in the parent — instead :meth:`drain` their finished
    spans into each reply, and the parent :meth:`ingest`\\ s them back
    into the still-open trace.
    """

    def __init__(
        self,
        collector: TraceCollector | None = None,
        sample_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        self.collector = (
            collector if collector is not None else TraceCollector()
        )
        self.sample_rate = float(sample_rate)
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        # trace_id -> finished span dicts, insertion-ordered so the
        # oldest open trace is the one evicted by the leak guard.
        self._pending: dict[str, list[dict]] = {}

    # -- span creation -----------------------------------------------------

    def _new_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def reseed(self) -> None:
        """Re-seed the id generator from OS entropy.

        Must be called in a child process after ``fork``: the child
        inherits this RNG's state, so without reseeding its first id
        draws are *identical* to the parent's next draws — worker span
        ids would collide with the very request ids they parent under,
        corrupting every assembled tree.
        """
        self._rng.seed()

    def start_trace(
        self,
        name: str,
        attributes: dict | None = None,
        force_sample: bool | None = None,
    ) -> Span:
        """Open a new trace's root span (always a real :class:`Span`).

        The head-based sampling decision happens here and nowhere else:
        ``force_sample`` overrides the rate (tests, the bench's traced
        replay), otherwise the trace samples with probability
        ``sample_rate``.  Unsampled roots stay cheap — children will be
        :data:`NULL_SPAN` — but still exist, so every response can
        carry a trace id and an errored request can still commit.
        """
        if force_sample is not None:
            sampled = force_sample
        elif self.sample_rate >= 1.0:
            sampled = True
        elif self.sample_rate <= 0.0:
            sampled = False
        else:
            sampled = self._rng.random() < self.sample_rate
        return Span(
            self,
            name,
            trace_id=self._new_id(),
            span_id=self._new_id(),
            parent_id=None,
            sampled=sampled,
            attributes=attributes,
        )

    def start_span(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        attributes: dict | None = None,
    ) -> Span | _NullSpan:
        """Open a child span under ``parent`` (default: current span).

        Returns :data:`NULL_SPAN` when there is no parent or the parent
        is unsampled — the zero-cost path every instrumentation site
        takes while tracing is off.
        """
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if parent is None or not parent.sampled:
            return NULL_SPAN
        return Span(
            self,
            name,
            trace_id=parent.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id,
            sampled=True,
            attributes=attributes,
        )

    def record_span(
        self,
        name: str,
        parent: Span | SpanContext | None,
        start: float,
        end: float,
        attributes: dict | None = None,
        status: str = "ok",
    ) -> None:
        """Record a span retroactively from explicit monotonic times.

        For phases whose boundaries are only known after the fact —
        queue wait is measured when the batch starts, not while the
        request sits in the queue.  No-op without a sampled parent.
        """
        if parent is None or not parent.sampled:
            return
        span = Span(
            self,
            name,
            trace_id=parent.trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id,
            sampled=True,
            attributes=attributes,
            start=start,
        )
        span.finish(status=status, end=end)

    @contextlib.contextmanager
    def activate(self, span: Span | _NullSpan):
        """Make ``span`` the context's current span for the ``with`` body.

        Only real spans are installed; activating :data:`NULL_SPAN`
        leaves the context untouched (so nested instrumentation keeps
        short-circuiting on the unsampled path).
        """
        if not isinstance(span, Span):
            yield span
            return
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        finally:
            _CURRENT_SPAN.reset(token)

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        attributes: dict | None = None,
    ):
        """``start_span`` + ``activate`` + ``finish`` in one context.

        Exceptions mark the span errored and re-raise.
        """
        child = self.start_span(name, parent=parent, attributes=attributes)
        try:
            with self.activate(child):
                yield child
        except BaseException as error:
            child.set_error(repr(error))
            child.finish()
            raise
        else:
            child.finish()

    # -- trace assembly ----------------------------------------------------

    def _on_finish(self, span: Span) -> None:
        """Buffer a finished span; commit the trace when its root closes."""
        record = span.to_dict()
        is_root = span.parent_id is None
        with self._lock:
            spans = self._pending.setdefault(span.trace_id, [])
            if not is_root:
                # Only sampled spans buffer (unsampled children are
                # NULL_SPAN and never reach here), so the guard below
                # is about errored-unsampled roots, not children.
                if span.sampled:
                    spans.append(record)
                while len(self._pending) > _MAX_PENDING_TRACES:
                    self._pending.pop(next(iter(self._pending)))
                return
            children = self._pending.pop(span.trace_id, [])
        if span.sampled or span.status == "error":
            self._commit(record, children, span.sampled)

    def _commit(
        self, root: dict, children: list[dict], sampled: bool
    ) -> None:
        trace = {
            "trace_id": root["trace_id"],
            "name": root["name"],
            "status": root["status"],
            "duration_s": root["duration_s"],
            "wall_start": root["wall_start"],
            "sampled": sampled,
            "spans": [root, *children],
        }
        self.collector.add(trace)

    def drain(self, trace_id: str) -> list[dict]:
        """Remove and return the finished spans buffered for one trace.

        The worker-side half of cross-process tracing: the root lives
        in the parent, so the worker drains its finished spans into the
        reply instead of waiting for a root that will never close here.
        """
        with self._lock:
            return self._pending.pop(trace_id, [])

    def ingest(self, spans: list[dict]) -> None:
        """Splice remote finished spans into their still-open traces.

        The parent-side half: spans shipped back in worker replies are
        buffered under their original trace ids, so when the root
        finishes (the HTTP handler responds) they commit as one tree.
        """
        if not spans:
            return
        with self._lock:
            for record in spans:
                self._pending.setdefault(record["trace_id"], []).append(
                    record
                )
            while len(self._pending) > _MAX_PENDING_TRACES:
                self._pending.pop(next(iter(self._pending)))


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer every subsystem records through."""
    return _GLOBAL_TRACER


def configure_tracing(
    sample_rate: float | None = None,
    capacity: int | None = None,
    slowest: int | None = None,
) -> Tracer:
    """Reconfigure the global tracer in place; returns it.

    ``capacity``/``slowest`` rebuild the collector (dropping stored
    traces); ``sample_rate`` takes effect for the next root span.  The
    serving CLI calls this once at startup from
    ``--trace-sample-rate``; tests call it around each case.
    """
    tracer = _GLOBAL_TRACER
    if sample_rate is not None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        tracer.sample_rate = float(sample_rate)
    if capacity is not None or slowest is not None:
        tracer.collector = TraceCollector(
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            slowest=slowest if slowest is not None else DEFAULT_SLOWEST,
        )
    return tracer


def span_tree(trace: dict) -> dict[str | None, list[dict]]:
    """Index a trace's spans by ``parent_id`` (test/debug helper).

    ``tree[None]`` is the root list; ``tree[span_id]`` the children of
    that span, in finish order.
    """
    tree: dict[str | None, list[dict]] = {}
    for record in trace["spans"]:
        tree.setdefault(record["parent_id"], []).append(record)
    return tree

"""Thread-safe metric primitives with a Prometheus-compatible exporter.

The serving tier needs three shapes of telemetry:

* :class:`Counter` — monotone event counts (requests, cache hits,
  evictions);
* :class:`Gauge` — point-in-time readings (queue depth, cache bytes),
  either set explicitly or read live from a callback;
* :class:`LatencyHistogram` — value distributions over **fixed
  log-spaced buckets**, chosen once at construction so concurrent
  observers only ever increment integers (no rebucketing, no
  per-observation allocation, one lock per observe).

A :class:`MetricsRegistry` owns a set of named metrics and renders them
two ways: :meth:`MetricsRegistry.snapshot` returns a JSON-friendly dict
(nested under the service's ``/v1/stats``), and
:meth:`MetricsRegistry.render_text` emits the Prometheus text exposition
format (``# TYPE`` comments, cumulative ``_bucket{le="..."}`` series,
``_sum`` / ``_count``) for the ``/metrics`` scrape endpoint — readable
by Prometheus, VictoriaMetrics, or a plain ``curl``.

Instrumentation must be invisible to results: nothing here touches the
values flowing through the service, and every operation is O(buckets)
or better, so the byte-equivalence suites run with metrics enabled.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections.abc import Callable, Sequence


def log_spaced_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` bucket upper bounds: ``start * factor**i``.

    Args:
        start: First (smallest) upper bound, e.g. ``1e-4`` seconds.
        factor: Geometric growth per bucket (> 1).
        count: Number of finite bounds (an implicit ``+Inf`` bucket is
            always appended by the histogram).
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor**i for i in range(count))


#: Default latency bounds: 100 µs to ~105 s in x2 steps (21 buckets).
#: Wide enough for a warm-cache hit and a cold 20k-row join alike.
DEFAULT_LATENCY_BUCKETS = log_spaced_buckets(1e-4, 2.0, 21)

#: Default occupancy bounds: 1 to 1024 in x2 steps, for rows-per-batch
#: and requests-per-batch distributions.
DEFAULT_OCCUPANCY_BUCKETS = log_spaced_buckets(1.0, 2.0, 11)


class Counter:
    """A monotone, thread-safe event counter.

    Args:
        name: Metric name (Prometheus conventions: ``snake_case``,
            ``_total`` suffix).
        help: One-line description for the ``# HELP`` comment.
        fn: Optional zero-argument callback; when given, reads report
            the callback's value instead of the stored one, so an
            existing counter (e.g. a service's stats field) exports
            live without being counted twice.  ``inc`` is then invalid.
    """

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], int] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._fn = fn
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if self._fn is not None:
            raise ValueError(
                f"counter {self.name!r} reads from a callback; inc() "
                "would be silently ignored"
            )
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        if self._fn is not None:
            return int(self._fn())
        return self._value


class Gauge:
    """A point-in-time reading: set explicitly or computed on read.

    Args:
        name: Metric name (Prometheus conventions: ``snake_case``).
        help: One-line description for the ``# HELP`` comment.
        fn: Optional zero-argument callback; when given, every read
            calls it instead of using the stored value, so the gauge
            always reports live state (queue depth, cache entries)
            without the service having to push updates.
    """

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class LatencyHistogram:
    """Fixed log-spaced-bucket histogram of observed values.

    Buckets are chosen at construction and never change; an observation
    is one ``bisect`` plus two integer adds under a lock.  Snapshots
    report *cumulative* bucket counts (Prometheus ``le`` semantics: the
    count at bound ``b`` includes every observation ``<= b``) plus the
    running sum and count, from which mean and coarse quantiles follow.

    Args:
        name: Metric name; rendered with ``_bucket``/``_sum``/``_count``
            suffixes in text format.
        help: One-line description.
        buckets: Ascending finite upper bounds; an implicit ``+Inf``
            bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending: {bounds}")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if value < 0.0:
            value = 0.0
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """Cumulative bucket counts plus sum/count, JSON-friendly."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append({"le": bound, "count": running})
        return {
            "buckets": cumulative,
            "count": total,
            "sum": observed_sum,
            "mean": observed_sum / total if total else 0.0,
        }

    def quantile(self, q: float) -> float:
        """Coarse quantile: the upper bound of the bucket holding ``q``.

        Accurate to one bucket width — good enough for dashboards and
        floor checks; the raw buckets are exported for anything finer.
        Returns 0.0 when empty; the last finite bound when ``q`` lands
        in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = math.ceil(q * total)
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            if running >= rank:
                return bound
        return self.bounds[-1]


def _format_number(value: float) -> str:
    """Prometheus-style number formatting (integers stay integral)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: str = "") -> str:
    """Render ``{key="value",...}`` with values escaped; keys as given."""
    parts = [
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}"


def merge_labeled_snapshots(
    labeled: Sequence[tuple[dict[str, str], dict]],
) -> str:
    """Merge per-source registry snapshots into one labeled exposition.

    The multi-process serving tier has one
    :class:`MetricsRegistry` *per route per worker*; a scrape endpoint
    must present them as one page.  Each input pairs a label set (e.g.
    ``{"worker": "0", "route": "default"}``) with the JSON snapshot of
    one registry (:meth:`MetricsRegistry.snapshot`), and the output is
    Prometheus text exposition 0.0.4 with one ``# TYPE`` block per
    metric name and one sample per label set — so ``sum by (route)
    (serve_requests_total)`` works exactly as it would against any
    multi-replica exporter.

    Metric kinds are recovered from the snapshot shape: a dict payload
    is a histogram (rendered with labeled ``_bucket``/``_sum``/
    ``_count`` series, ``le`` last), a ``_total`` name is a counter,
    anything else a gauge — the same conventions
    :meth:`MetricsRegistry.render_text` emits.

    An empty input renders an empty page (no trailing newline — there
    are no samples to terminate).  Histogram samples sharing one metric
    name must agree on bucket boundaries: merging snapshots whose
    bounds differ would produce a series Prometheus silently
    mis-aggregates, so that raises :class:`ValueError` instead.
    """
    # name -> list of (labels, payload), first-seen name order.
    by_name: dict[str, list[tuple[dict[str, str], object]]] = {}
    for labels, snapshot in labeled:
        for name, payload in snapshot.items():
            by_name.setdefault(name, []).append((labels, payload))
    if not by_name:
        return ""
    lines: list[str] = []
    for name, samples in by_name.items():
        is_histogram = isinstance(samples[0][1], dict)
        if is_histogram:
            kind = "histogram"
            bounds = [
                tuple(bucket["le"] for bucket in payload["buckets"])
                for _, payload in samples
                if isinstance(payload, dict)
            ]
            if any(b != bounds[0] for b in bounds[1:]):
                raise ValueError(
                    f"histogram {name!r} has mismatched bucket "
                    f"boundaries across sources; refusing to merge"
                )
        elif name.endswith("_total"):
            kind = "counter"
        else:
            kind = "gauge"
        lines.append(f"# TYPE {name} {kind}")
        for labels, payload in samples:
            if isinstance(payload, dict):
                for bucket in payload["buckets"]:
                    le = 'le="' + _format_number(bucket["le"]) + '"'
                    rendered = _render_labels(labels, le)
                    lines.append(
                        f"{name}_bucket{rendered} {bucket['count']}"
                    )
                rendered = _render_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{rendered} {payload['count']}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_number(payload['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{payload['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_number(payload)}"  # type: ignore[arg-type]
                )
    return "\n".join(lines) + "\n"


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Creation methods are idempotent per name (asking twice returns the
    same object), so instrumentation sites can be written without
    coordinating construction order.  Each method accepts a per-metric
    ``prefix`` override (``None`` means the registry default) so one
    registry can host series from several subsystems — the serving
    registry carries ``serve_*`` alongside unprefixed ``engine_*`` and
    ``join_*`` names.

    Callback-backed metrics are rendered defensively: a callback that
    raises degrades *that one series* (skipped from the page, with the
    always-present ``obs_callback_errors_total`` counter incremented)
    instead of failing the whole scrape.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._metrics: dict[str, Counter | Gauge | LatencyHistogram] = {}
        self._lock = threading.Lock()
        self.callback_errors = self._register(
            Counter(
                "obs_callback_errors_total",
                "Metric callbacks that raised during a read "
                "(each skips its series for that scrape)",
            )
        )

    def _read_value(self, metric: Counter | Gauge):
        """``metric.value`` or ``None`` if its callback raised."""
        try:
            return metric.value
        except Exception:
            self.callback_errors.inc()
            return None

    def _register(self, metric):
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def _full_name(self, name: str, prefix: str | None) -> str:
        return (self.prefix if prefix is None else prefix) + name

    def counter(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], int] | None = None,
        prefix: str | None = None,
    ) -> Counter:
        return self._register(
            Counter(self._full_name(name, prefix), help, fn=fn)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], float] | None = None,
        prefix: str | None = None,
    ) -> Gauge:
        return self._register(
            Gauge(self._full_name(name, prefix), help, fn=fn)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        prefix: str | None = None,
    ) -> LatencyHistogram:
        return self._register(
            LatencyHistogram(
                self._full_name(name, prefix), help, buckets=buckets
            )
        )

    def snapshot(self) -> dict:
        """JSON-friendly snapshot of every metric, keyed by name.

        A callback-backed metric whose callback raises is omitted from
        the snapshot (and counted in ``obs_callback_errors_total``).
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: dict[str, object] = {}
        for metric in metrics:
            if isinstance(metric, LatencyHistogram):
                out[metric.name] = metric.snapshot()
            else:
                value = self._read_value(metric)
                if value is not None:
                    out[metric.name] = value
        return out

    def render_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        A callback-backed metric whose callback raises is skipped for
        this scrape (and counted in ``obs_callback_errors_total``); the
        rest of the page renders normally.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            if isinstance(metric, (Counter, Gauge)):
                value = self._read_value(metric)
                if value is None:
                    continue
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {kind}")
                lines.append(f"{metric.name} {_format_number(value)}")
            else:
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                snap = metric.snapshot()
                lines.append(f"# TYPE {metric.name} histogram")
                for bucket in snap["buckets"]:
                    lines.append(
                        f'{metric.name}_bucket{{le="'
                        f'{_format_number(bucket["le"])}"}} {bucket["count"]}'
                    )
                lines.append(
                    f'{metric.name}_bucket{{le="+Inf"}} {snap["count"]}'
                )
                lines.append(
                    f"{metric.name}_sum {_format_number(snap['sum'])}"
                )
                lines.append(f"{metric.name}_count {snap['count']}")
        return "\n".join(lines) + "\n"

"""Observability: service metrics primitives and the run manifest.

Two halves, both dependency-free:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  log-bucketed latency histograms, collected in a
  :class:`MetricsRegistry` that renders either a JSON-friendly snapshot
  (for the service's ``/v1/stats``) or the Prometheus text exposition
  format (for the scrape-friendly ``/metrics`` endpoint).
* :mod:`repro.obs.manifest` — the run-manifest schema behind
  ``scripts/reproduce_all.py``: environment provenance (interpreter,
  numpy, platform, host ``cpu_count``), per-bench key-metric extraction
  from ``BENCH_*.json`` reports, delta computation against the
  committed artifacts, and manifest build/save/load round-tripping.

Every later perf claim in this repository reports through this layer:
benches stamp their reports with :func:`~repro.obs.manifest.provenance`,
the serving tier exports its latency/occupancy/cache counters live, and
one command (``python scripts/reproduce_all.py``) folds all of it into a
single machine-readable ledger.
"""

from repro.obs.manifest import (
    GATED_BENCHES,
    MANIFEST_VERSION,
    artifact_flags,
    bench_deltas,
    build_manifest,
    key_metrics,
    load_manifest,
    new_run_id,
    provenance,
    save_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = [
    "GATED_BENCHES",
    "MANIFEST_VERSION",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "artifact_flags",
    "bench_deltas",
    "build_manifest",
    "key_metrics",
    "load_manifest",
    "new_run_id",
    "provenance",
    "save_manifest",
]

"""Observability: metrics primitives, request tracing, the run manifest.

Three parts, all dependency-free:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges, and
  log-bucketed latency histograms, collected in a
  :class:`MetricsRegistry` that renders either a JSON-friendly snapshot
  (for the service's ``/v1/stats``) or the Prometheus text exposition
  format (for the scrape-friendly ``/metrics`` endpoint).
* :mod:`repro.obs.trace` — structured request tracing: head-sampled
  :class:`Span` trees with contextvar propagation, a bounded
  :class:`TraceCollector` ring, and picklable span contexts so traces
  survive the hop into pre-fork serve workers (surfaced at
  ``GET /debug/traces``).
* :mod:`repro.obs.manifest` — the run-manifest schema behind
  ``scripts/reproduce_all.py``: environment provenance (interpreter,
  numpy, platform, host ``cpu_count``), per-bench key-metric extraction
  from ``BENCH_*.json`` reports, delta computation against the
  committed artifacts, the :data:`BENCH_FLOORS` acceptance-bar schema
  shared by CI and the bench emitters, and run-over-run trend history
  (:func:`manifest_trends`).

Every later perf claim in this repository reports through this layer:
benches stamp their reports with :func:`~repro.obs.manifest.provenance`,
the serving tier exports its latency/occupancy/cache counters live, and
one command (``python scripts/reproduce_all.py``) folds all of it into a
single machine-readable ledger.
"""

from repro.obs.manifest import (
    BENCH_FLOORS,
    GATED_BENCHES,
    MANIFEST_VERSION,
    artifact_flags,
    bench_deltas,
    build_manifest,
    check_floors,
    key_metrics,
    load_manifest,
    manifest_trends,
    new_run_id,
    provenance,
    save_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    TraceCollector,
    Tracer,
    configure_tracing,
    current_context,
    current_span,
    get_tracer,
    span_tree,
)

__all__ = [
    "BENCH_FLOORS",
    "GATED_BENCHES",
    "MANIFEST_VERSION",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "TraceCollector",
    "Tracer",
    "artifact_flags",
    "bench_deltas",
    "build_manifest",
    "check_floors",
    "configure_tracing",
    "current_context",
    "current_span",
    "get_tracer",
    "key_metrics",
    "load_manifest",
    "manifest_trends",
    "new_run_id",
    "provenance",
    "save_manifest",
    "span_tree",
]

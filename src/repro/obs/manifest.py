"""The run-manifest schema: one machine-readable ledger per repro run.

``scripts/reproduce_all.py`` re-runs every gated bench emitter and the
eval tables, then folds the results into a single manifest JSON via
this module.  The schema (``MANIFEST_VERSION`` 1):

* ``run_id`` — sortable unique id (UTC timestamp + random hex);
* ``environment`` — interpreter/numpy/platform versions, host
  ``cpu_count`` and scheduler affinity (:func:`provenance`), so every
  number in the manifest is self-describing about the host that
  produced it;
* ``benches.<name>`` — the fresh report's seed and key metrics, the
  committed ``BENCH_<name>.json`` artifact's key metrics and recorded
  provenance, per-metric deltas (:func:`bench_deltas`), the floor
  verdict, and :func:`artifact_flags` calling out committed artifacts
  whose provenance invalidates a class of claims (the canonical case:
  parallel-join speedups recorded on a single-core host);
* ``eval`` — dataset-level score rows from the eval runner;
* ``verdict`` — overall pass/fail plus the reasons.

Key metrics are **dimensionless ratios** (speedups), extracted per
bench by :func:`key_metrics` under stable labels (``speedup[mode=...]``,
``speedup[workers=4]``).  Labels carry the sweep's scale, so a smoke
run and the committed full sweep only share keys where the scales
coincide; the scale-independent ``headline`` metric (the most loaded
configuration present in a report) always produces a delta, flagged
with ``scale_matches_committed`` so nobody mistakes a smoke-vs-full
comparison for like-for-like.
"""

from __future__ import annotations

import json
import os
import platform
import secrets
import sys
import time
from pathlib import Path

MANIFEST_VERSION = 1

#: The gated benches (``BENCH_<name>.json`` at the repo root) every
#: reproduction covers; ``reproduce_all.py`` fails when one is missing.
GATED_BENCHES = (
    "generate",
    "join_batch",
    "join_scaling",
    "join_parallel",
    "join_topk",
    "kernels",
    "serve",
)

#: Smoke-floor schema: the single source of truth for the CI acceptance
#: bars, keyed by :data:`GATED_BENCHES` name.  Each spec names a
#: :func:`key_metrics` label, the minimum acceptable value, and an
#: optional ``min_cores`` gate — parallel-scaling floors only apply on
#: hosts whose scheduler actually grants that many cores (starved
#: runners record the numbers and rely on :func:`artifact_flags` for
#: the caveat instead of failing spuriously).  Bench emitters import
#: their ``--smoke`` assertions from here and ``reproduce_all.py``
#: re-applies the same schema to every fresh report via
#: :func:`check_floors`, so the bars cannot drift apart.  Full-sweep
#: pytest paths may assert *stronger* bars on top; they must never be
#: weaker than these.
BENCH_FLOORS: dict[str, tuple[dict, ...]] = {
    "generate": ({"metric": "headline", "min": 1.5},),
    "join_batch": ({"metric": "headline", "min": 1.1},),
    "join_scaling": ({"metric": "headline", "min": 1.0},),
    "join_topk": ({"metric": "headline", "min": 1.2},),
    "kernels": ({"metric": "headline", "min": 3.0},),
    "join_parallel": (
        {"metric": "speedup[workers=4]", "min": 1.3, "min_cores": 4},
        {"metric": "disk_warm_speedup", "min": 1.05},
    ),
    "serve": (
        {"metric": "speedup[clients=16]", "min": 2.0},
        {"metric": "warm_cache_speedup", "min": 10.0},
        {"metric": "speedup[serve_workers=4]", "min": 2.0, "min_cores": 4},
    ),
}


def check_floors(
    bench: str, metrics: dict[str, float], cores: int | None = None
) -> dict:
    """Apply the :data:`BENCH_FLOORS` schema to one bench's key metrics.

    Returns ``{"passed", "detail", "checked", "skipped"}``.  A floor
    whose ``min_cores`` exceeds ``cores`` (or whose metric is absent
    from the report — e.g. a sweep shape that omitted the labeled row)
    is *skipped*, not failed: the schema encodes acceptance bars, and a
    bar you could not measure is a hole to report, not a regression.
    ``passed`` is ``True`` iff every floor that could be checked held.
    """
    checked: list[str] = []
    skipped: list[str] = []
    failures: list[str] = []
    for spec in BENCH_FLOORS.get(bench, ()):
        metric = spec["metric"]
        min_cores = spec.get("min_cores")
        if min_cores is not None and (cores is None or cores < min_cores):
            skipped.append(
                f"{metric}: needs >= {min_cores} cores "
                f"(host grants {cores})"
            )
            continue
        value = metrics.get(metric)
        if value is None:
            skipped.append(f"{metric}: absent from report")
            continue
        if value < spec["min"]:
            failures.append(
                f"{metric} {value:.2f} < floor {spec['min']}"
            )
        else:
            checked.append(f"{metric} {value:.2f} >= {spec['min']}")
    if failures:
        detail = "; ".join(failures)
    else:
        detail = f"{len(checked)} floors held, {len(skipped)} skipped"
        if skipped:
            detail += f" ({'; '.join(skipped)})"
    return {
        "passed": not failures,
        "detail": detail,
        "checked": checked,
        "skipped": skipped,
    }


def provenance() -> dict:
    """Environment/host provenance stamped into reports and manifests.

    ``cpu_count`` is the raw host count; ``cpu_affinity`` is how many
    cores the scheduler actually grants this process (cgroup-limited CI
    runners often differ) — parallel-scaling claims need the latter.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        affinity = os.cpu_count() or 1
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "recorded_unix": round(time.time(), 3),
    }


def new_run_id(now: float | None = None) -> str:
    """Sortable run id: UTC timestamp plus 4 random bytes."""
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ", time.gmtime(time.time() if now is None else now)
    )
    return f"{stamp}-{secrets.token_hex(4)}"


def _labeled(rows: list, label_field: str, metric_field: str) -> dict:
    """``{'speedup[workers=4]': 1.65, ...}`` from a report's row list."""
    out: dict[str, float] = {}
    for row in rows:
        if label_field not in row or metric_field not in row:
            continue
        value = row[metric_field]
        if isinstance(value, (int, float)):
            out[f"speedup[{label_field}={row[label_field]}]"] = float(value)
    return out


def key_metrics(bench: str, report: dict) -> dict[str, float]:
    """Stable-labeled dimensionless metrics from one bench report.

    Returns an empty dict for an unrecognized bench or a report missing
    its rows — the caller records the absence rather than crashing,
    because a manifest that cannot be built is worse than a manifest
    with a hole it can point at.
    """
    rows = report.get("rows") or []
    metrics: dict[str, float] = {}
    if bench == "generate":
        metrics.update(_labeled(rows, "mode", "speedup"))
        if rows:
            metrics["headline"] = float(rows[0]["speedup"])
    elif bench == "join_batch":
        metrics.update(_labeled(rows, "rows", "speedup"))
        if rows:
            metrics["headline"] = float(rows[-1]["speedup"])
    elif bench == "join_scaling":
        metrics.update(_labeled(rows, "target_rows", "speedup"))
        if rows:
            metrics["headline"] = float(rows[-1]["speedup"])
    elif bench == "join_parallel":
        metrics.update(_labeled(rows, "workers", "speedup_vs_serial"))
        if rows:
            metrics["headline"] = float(rows[-1]["speedup_vs_serial"])
        disk = report.get("disk_cache") or []
        if disk:
            metrics["disk_warm_speedup"] = float(disk[-1]["speedup"])
    elif bench == "join_topk":
        metrics.update(_labeled(rows, "rows", "speedup"))
        if rows:
            metrics["headline"] = float(rows[-1]["speedup"])
        for row in rows:
            ratio = row.get("topk_cost_ratio")
            if isinstance(ratio, (int, float)):
                metrics[f"topk_cost_ratio[rows={row['rows']}]"] = float(ratio)
    elif bench == "kernels":
        metrics.update(_labeled(rows, "config", "speedup"))
        short = [
            row
            for row in rows
            if row.get("regime") == "short"
            and row.get("backend") == "bitparallel"
        ]
        if short:
            metrics["headline"] = float(short[0]["speedup"])
        elif rows:
            metrics["headline"] = float(rows[-1]["speedup"])
        encode = report.get("encode") or {}
        if isinstance(encode.get("speedup"), (int, float)):
            metrics["encode_speedup"] = float(encode["speedup"])
    elif bench == "serve":
        metrics.update(_labeled(rows, "clients", "speedup_vs_serial"))
        if rows:
            metrics["headline"] = float(rows[-1]["speedup_vs_serial"])
        warm = report.get("warm_cache") or {}
        if "speedup" in warm:
            metrics["warm_cache_speedup"] = float(warm["speedup"])
        multi = report.get("multiprocess") or []
        metrics.update(
            _labeled(multi, "serve_workers", "speedup_vs_inprocess")
        )
    return metrics


def bench_deltas(
    current: dict[str, float], committed: dict[str, float]
) -> dict:
    """Per-metric deltas between a fresh run and the committed artifact.

    Only keys present on both sides produce a delta; one-sided keys are
    listed so a sweep-shape change is visible instead of silently
    shrinking the comparison.
    """
    shared = sorted(current.keys() & committed.keys())
    deltas = {}
    for key in shared:
        new, old = current[key], committed[key]
        deltas[key] = {
            "current": new,
            "committed": old,
            "delta": round(new - old, 4),
            "ratio": round(new / old, 4) if old else None,
        }
    return {
        "metrics": deltas,
        "only_current": sorted(current.keys() - committed.keys()),
        "only_committed": sorted(committed.keys() - current.keys()),
    }


def manifest_trends(current: dict, previous: dict) -> dict:
    """Per-bench metric deltas between two runs' *fresh* measurements.

    Where :func:`bench_deltas` compares a fresh run against the
    committed artifacts (drift vs the recorded trajectory), this
    compares two manifests against each other — run-over-run trend
    history, e.g. today's CI run against yesterday's.  ``comparable``
    flags whether the two runs used the same mode (``smoke`` vs
    ``full``); cross-mode deltas compare different sweep scales and
    should be read as shape changes, not regressions.
    """
    current_benches = current.get("benches") or {}
    previous_benches = previous.get("benches") or {}
    benches: dict[str, dict] = {}
    for name in GATED_BENCHES:
        cur = (current_benches.get(name) or {}).get("metrics") or {}
        prev = (previous_benches.get(name) or {}).get("metrics") or {}
        if not cur and not prev:
            continue
        raw = bench_deltas(cur, prev)
        benches[name] = {
            # bench_deltas names its older side "committed"; in a
            # run-over-run trend that side is the previous manifest.
            "metrics": {
                key: {
                    "current": row["current"],
                    "previous": row["committed"],
                    "delta": row["delta"],
                    "ratio": row["ratio"],
                }
                for key, row in raw["metrics"].items()
            },
            "only_current": raw["only_current"],
            "only_previous": raw["only_committed"],
        }
    return {
        "against_run_id": previous.get("run_id"),
        "against_mode": previous.get("mode"),
        "comparable": current.get("mode") == previous.get("mode"),
        "benches": benches,
    }


def artifact_flags(bench: str, report: dict) -> list[str]:
    """Self-describing red flags derived from a report's provenance.

    The canonical case this exists for: ``BENCH_join_parallel.json``
    recorded on a host with fewer cores than its worker counts, whose
    "speedups" then measure shard locality, not parallelism.  CI uses
    the flag to skip parallel floors on starved runners instead of
    failing them, and readers see the caveat in the artifact itself.
    """
    flags: list[str] = []
    prov = report.get("provenance") or {}
    cores = prov.get("cpu_affinity") or prov.get("cpu_count")
    if cores is None:
        # Pre-manifest artifacts carried a bare top-level cpu_count.
        cores = report.get("cpu_count")
    if cores is None:
        flags.append("no_host_provenance")
        return flags
    if bench == "join_parallel":
        workers = [
            row["workers"]
            for row in report.get("rows") or []
            if "workers" in row
        ]
        if workers and cores < max(workers):
            flags.append(
                f"recorded_with_{cores}_cores_for_{max(workers)}_workers:"
                "_parallel_speedups_measure_shard_locality_only"
            )
    if bench == "serve":
        if cores < 2:
            flags.append(
                "recorded_on_single_core_host:_client_threads_share_one_core"
            )
        serve_workers = [
            row["serve_workers"]
            for row in report.get("multiprocess") or []
            if "serve_workers" in row
        ]
        if serve_workers and cores < max(serve_workers):
            flags.append(
                f"recorded_with_{cores}_cores_for_{max(serve_workers)}"
                "_serve_workers:_multiprocess_speedups_measure_"
                "dispatch_overhead_only"
            )
    return flags


def build_manifest(
    run_id: str,
    environment: dict,
    benches: dict[str, dict],
    eval_rows: list[dict] | None = None,
    mode: str = "full",
) -> dict:
    """Assemble the manifest and derive the overall verdict.

    Each value of ``benches`` is the per-bench block assembled by the
    reproduction driver: ``report`` presence, ``seed``, ``metrics``,
    ``committed`` (metrics + provenance + flags), ``deltas``,
    ``floors`` (``{"passed": bool, "detail": str}``).  The verdict
    fails on any missing bench, missing committed artifact, or failed
    floor — the three regression classes CI must catch.
    """
    failures: list[str] = []
    for name in GATED_BENCHES:
        block = benches.get(name)
        if block is None or not block.get("ran"):
            failures.append(f"bench {name}: did not run")
            continue
        if not block.get("committed_found"):
            failures.append(f"bench {name}: committed artifact missing")
        floors = block.get("floors") or {}
        if not floors.get("passed", False):
            failures.append(
                f"bench {name}: floor check failed"
                + (f" ({floors['detail']})" if floors.get("detail") else "")
            )
    return {
        "manifest_version": MANIFEST_VERSION,
        "run_id": run_id,
        "mode": mode,
        "environment": environment,
        "benches": benches,
        "eval": eval_rows or [],
        "verdict": {"passed": not failures, "failures": failures},
    }


def save_manifest(manifest: dict, path: str | os.PathLike[str]) -> None:
    """Write the manifest JSON (stable key order, trailing newline)."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=False) + "\n"
    )


def load_manifest(path: str | os.PathLike[str]) -> dict:
    """Read a manifest back; raises on version mismatch.

    A hard version check, not a warning: manifests are compared across
    runs, and silently mixing schema versions poisons every delta
    downstream.
    """
    manifest = json.loads(Path(path).read_text())
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"manifest {path} has version {version!r}, "
            f"expected {MANIFEST_VERSION}"
        )
    return manifest

"""Experiment harness: runs methods over benchmarks and renders tables."""

from repro.eval.runner import (
    DTTJoinerAdapter,
    evaluate_on_dataset,
    evaluate_on_table,
)
from repro.eval.tables import render_dataset_table

__all__ = [
    "DTTJoinerAdapter",
    "evaluate_on_table",
    "evaluate_on_dataset",
    "render_dataset_table",
]

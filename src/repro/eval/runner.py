"""Runs a join method over benchmark tables and scores it (paper §5.3).

The protocol follows the paper's setup: each table's rows are split into
two halves — an example pool ``S_e`` and a test set ``S_t`` — the method
joins the test sources into the **full** target column, and the metrics
of §5.4 are computed per table, then averaged per dataset.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import asdict

from repro.baselines.base import JoinOutput, TableJoiner
from repro.core.interface import SequenceModel
from repro.core.join_config import JoinConfig
from repro.core.joiner import EditDistanceJoiner
from repro.core.pipeline import DTTPipeline
from repro.datagen.benchmarks.noise import inject_example_noise
from repro.infer.engine import EngineStats
from repro.metrics.edit_metrics import score_edits
from repro.metrics.join_metrics import score_join
from repro.metrics.report import DatasetReport, TableReport, average_reports
from repro.types import ExamplePair, JoinResult, TablePair


class DTTJoinerAdapter:
    """Adapts a :class:`DTTPipeline` to the :class:`TableJoiner` protocol.

    Args:
        model: Model or list of models for the pipeline.
        context_size: Examples per sub-task context.
        n_trials: Trials per row per model.
        seed: Context-sampling seed.
        name: Report name; defaults to the pipeline's.
        joiner: Joiner instance or strategy name (``"brute"`` /
            ``"indexed"`` / ``"auto"``), forwarded to the pipeline.
        join_config: :class:`~repro.core.join_config.JoinConfig`
            forwarded to the pipeline's joiner construction.
        n_workers: Deprecated — pass
            ``join_config=JoinConfig(n_workers=...)`` instead.
    """

    def __init__(
        self,
        model: SequenceModel | Sequence[SequenceModel],
        context_size: int = 2,
        n_trials: int = 5,
        seed: int = 0,
        name: str | None = None,
        joiner: EditDistanceJoiner | str | None = None,
        join_config: JoinConfig | None = None,
        n_workers: int | None = None,
    ) -> None:
        self.pipeline = DTTPipeline(
            model,
            context_size=context_size,
            n_trials=n_trials,
            seed=seed,
            joiner=joiner,
            join_config=join_config,
            n_workers=n_workers,
        )
        self._name = name or self.pipeline.name

    @property
    def name(self) -> str:
        return self._name

    def join_table(
        self,
        sources: Sequence[str],
        targets: Sequence[str],
        examples: Sequence[ExamplePair],
    ) -> JoinOutput:
        predictions = self.pipeline.transform_column(sources, examples)
        results = self.pipeline.joiner.join(predictions, targets)
        # Execution counters ride along with the scores: the generation
        # engine's scheduling stats (totals across every model of the
        # ensemble, plus the per-model breakdown) and the join engine's
        # batch / parallel-shard / cache stats, all from this table's
        # run.
        per_model = self.pipeline._ensemble.last_run_stats
        engine_stats = (
            EngineStats.merged(per_model)
            if per_model
            else self.pipeline.engine.last_stats
        )
        stats: dict = {"engine": asdict(engine_stats)}
        if len(per_model) > 1:
            # A list, not a name-keyed dict: ensembling two instances
            # of one model class (e.g. differently seeded DTTs) is
            # legitimate, and duplicate names must not drop entries.
            stats["engine_per_model"] = [
                {"model": model.name, **asdict(model_stats)}
                for model, model_stats in zip(
                    self.pipeline.models, per_model, strict=True
                )
            ]
        join_stats = getattr(self.pipeline.joiner, "last_join_stats", None)
        if join_stats is not None:
            stats["join"] = join_stats.as_dict()
        return JoinOutput(
            matches=tuple(r.matched for r in results),
            predictions=tuple(p.value for p in predictions),
            stats=stats,
        )


def evaluate_on_table(
    joiner: TableJoiner,
    table: TablePair,
    split_fraction: float = 0.5,
    noise_ratio: float = 0.0,
    noise_seed: int = 0,
) -> TableReport:
    """Evaluate one method on one table pair.

    Args:
        joiner: The method under test.
        table: The benchmark table pair.
        split_fraction: Fraction of rows forming the example pool (§5.3
            uses equal halves).
        noise_ratio: Fraction of example targets replaced by random text
            (§5.10); test rows stay clean.
        noise_seed: Seed for the noise injection.
    """
    example_pool, test_rows = table.split(split_fraction)
    if noise_ratio > 0.0:
        example_pool = inject_example_noise(
            example_pool, noise_ratio, seed=noise_seed
        )
    sources = [row.source for row in test_rows]
    expected = [row.target for row in test_rows]
    # Passed through as the TablePair's own tuple: the blocked joiner's
    # process-level IndexCache keys on column *content*, so repeated
    # evaluations of the same table — across methods, noise settings,
    # or whole runner invocations — reuse one q-gram index, and the
    # tuple makes each cache lookup a zero-copy key build.
    targets = table.targets

    started = time.perf_counter()
    output = joiner.join_table(sources, targets, example_pool)
    elapsed = time.perf_counter() - started

    results = [
        JoinResult(
            source=source,
            predicted=(
                output.predictions[i] if output.predictions is not None else ""
            ),
            matched=output.matches[i],
            expected=expected[i],
        )
        for i, source in enumerate(sources)
    ]
    edits = (
        score_edits(list(output.predictions), expected)
        if output.predictions is not None
        else None
    )
    return TableReport(
        table=table.name,
        method=joiner.name,
        join=score_join(results),
        edits=edits,
        seconds=elapsed,
        stats=output.stats,
    )


def manifest_rows(reports: Sequence[DatasetReport]) -> list[dict]:
    """Flatten dataset reports into run-manifest eval rows.

    One JSON-friendly dict per dataset/method pair, scores rounded to
    four places so manifests diff cleanly across runs: score changes
    show up, float noise does not.
    """
    return [
        {
            "dataset": report.dataset,
            "method": report.method,
            "precision": round(report.precision, 4),
            "recall": round(report.recall, 4),
            "f1": round(report.f1, 4),
            "aed": round(report.aed, 4),
            "aned": round(report.aned, 4),
            "seconds": round(report.seconds, 4),
            "tables": report.tables,
        }
        for report in reports
    ]


def evaluate_on_dataset(
    joiner: TableJoiner,
    tables: Sequence[TablePair],
    split_fraction: float = 0.5,
    noise_ratio: float = 0.0,
    noise_seed: int = 0,
) -> DatasetReport:
    """Evaluate one method over a dataset; averages follow §5.4."""
    if not tables:
        raise ValueError("dataset has no tables")
    reports = [
        evaluate_on_table(
            joiner,
            table,
            split_fraction=split_fraction,
            noise_ratio=noise_ratio,
            noise_seed=noise_seed,
        )
        for table in tables
    ]
    return average_reports(tables[0].dataset or "dataset", joiner.name, reports)

"""Plain-text rendering of result tables in the paper's layout."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.metrics.report import DatasetReport


def render_dataset_table(
    rows: Mapping[str, Mapping[str, DatasetReport]],
    methods: Sequence[str],
    columns: Sequence[str] = ("P", "R", "F"),
    title: str = "",
) -> str:
    """Render ``rows[dataset][method]`` reports as an aligned text table.

    Args:
        rows: Dataset name -> method name -> report.
        methods: Column-group order.
        columns: Metrics per method; any of P, R, F, AED, ANED, s.
        title: Optional heading line.
    """
    getters = {
        "P": lambda r: f"{r.precision:.3f}",
        "R": lambda r: f"{r.recall:.3f}",
        "F": lambda r: f"{r.f1:.3f}",
        "AED": lambda r: f"{r.aed:.3f}",
        "ANED": lambda r: f"{r.aned:.3f}",
        "s": lambda r: f"{r.seconds:.1f}",
    }
    for column in columns:
        if column not in getters:
            raise ValueError(f"unknown column {column!r}")

    header = ["Dataset"]
    for method in methods:
        for column in columns:
            header.append(f"{method}:{column}")
    body: list[list[str]] = []
    for dataset, per_method in rows.items():
        line = [dataset]
        for method in methods:
            report = per_method.get(method)
            for column in columns:
                line.append(getters[column](report) if report else "-")
        body.append(line)

    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    out: list[str] = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
    out.append("  ".join("-" * w for w in widths))
    for line in body:
        out.append("  ".join(c.ljust(w) for c, w in zip(line, widths, strict=True)))
    return "\n".join(out)
